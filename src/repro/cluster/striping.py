"""File partitioning across disks (striping).

Paper section 7: "a file can be partitioned and therefore its contents
can reside on more than one disk.  Thus, the size of a file can be as
large as the total space available on all the disks."

A striped file is a set of ordinary per-volume *segment* files plus a
round-robin mapping: byte range ``[k*S, (k+1)*S)`` of the logical file
lives at stripe ``k`` in segment ``k % n_volumes``.  The stripe layout
is recorded in the naming service (attributes of the bound name), so a
striped file is recoverable from its name alone.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import FileServiceError, FileSizeError
from repro.common.ids import SystemName
from repro.common.units import BLOCK_SIZE
from repro.file_service.server import FileServer
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService

#: Default stripe unit: eight blocks, so each stripe is one contiguous
#: run a single disk reference can fetch.
DEFAULT_STRIPE_BYTES = 8 * BLOCK_SIZE


def _encode_segments(segments: List[SystemName]) -> str:
    return ",".join(
        f"{segment.volume_id}:{segment.fit_address}:{segment.generation}"
        for segment in segments
    )


def _decode_segments(encoded: str) -> List[SystemName]:
    segments = []
    for part in encoded.split(","):
        volume, fit, generation = part.split(":")
        segments.append(SystemName(int(volume), int(fit), int(generation)))
    return segments


class StripedFile:
    """A logical file partitioned round-robin across several volumes."""

    def __init__(
        self,
        servers: Dict[int, FileServer],
        segments: List[SystemName],
        stripe_bytes: int,
    ) -> None:
        if not segments:
            raise FileServiceError("a striped file needs at least one segment")
        if stripe_bytes <= 0:
            raise FileSizeError("stripe size must be positive")
        self.servers = servers
        self.segments = segments
        self.stripe_bytes = stripe_bytes

    # ------------------------------------------------------- factory

    @classmethod
    def create(
        cls,
        naming: NamingService,
        servers: Dict[int, FileServer],
        name: AttributedName,
        *,
        volumes: List[int] | None = None,
        stripe_bytes: int = DEFAULT_STRIPE_BYTES,
    ) -> "StripedFile":
        """Create segment files on each volume and bind the striped name."""
        volume_ids = volumes if volumes is not None else sorted(servers)
        if not volume_ids:
            raise FileServiceError("no volumes to stripe over")
        segments = [servers[volume].create() for volume in volume_ids]
        bound = name.with_attributes(
            stripe=str(stripe_bytes), segments=_encode_segments(segments)
        )
        naming.bind(bound, segments[0])
        return cls(servers, segments, stripe_bytes)

    @classmethod
    def open(
        cls,
        naming: NamingService,
        servers: Dict[int, FileServer],
        name: AttributedName,
    ) -> "StripedFile":
        """Reconstruct a striped file from its naming-service record."""
        for bound, _ in naming.lookup(name):
            encoded = bound.get("segments")
            stripe = bound.get("stripe")
            if encoded is None or stripe is None:
                continue
            return cls(servers, _decode_segments(encoded), int(stripe))
        raise FileServiceError(f"{name} is not a striped file")

    # ------------------------------------------------------------ io

    def _map(self, offset: int) -> Tuple[SystemName, int, int]:
        """(segment, offset-in-segment, bytes-until-stripe-end)."""
        stripe_index = offset // self.stripe_bytes
        within = offset - stripe_index * self.stripe_bytes
        n_segments = len(self.segments)
        segment = self.segments[stripe_index % n_segments]
        local_stripe = stripe_index // n_segments
        local_offset = local_stripe * self.stripe_bytes + within
        return segment, local_offset, self.stripe_bytes - within

    def write(self, offset: int, data: bytes) -> int:
        """Write across stripes; each stripe goes to its own volume."""
        if offset < 0:
            raise FileSizeError(f"bad write offset {offset}")
        cursor = offset
        view = memoryview(data)
        while view:
            segment, local_offset, room = self._map(cursor)
            chunk = min(room, len(view))
            self.servers[segment.volume_id].write(
                segment, local_offset, bytes(view[:chunk])
            )
            view = view[chunk:]
            cursor += chunk
        return len(data)

    def read(self, offset: int, n_bytes: int) -> bytes:
        """Read across stripes, assembling from each volume in turn.

        Stripes that were never written read as zeroes (sparse-file
        semantics), as long as some later stripe extends the logical
        file past them — mirroring what a single sparse file would do.
        """
        if offset < 0 or n_bytes < 0:
            raise FileSizeError(f"bad read range ({offset}, {n_bytes})")
        end = min(offset + n_bytes, self.size)
        if end <= offset:
            return b""
        pieces: List[bytes] = []
        cursor = offset
        while cursor < end:
            segment, local_offset, room = self._map(cursor)
            chunk = min(room, end - cursor)
            piece = self.servers[segment.volume_id].read(
                segment, local_offset, chunk
            )
            if len(piece) < chunk:
                piece = piece + bytes(chunk - len(piece))  # sparse hole
            pieces.append(piece)
            cursor += chunk
        return b"".join(pieces)

    @property
    def size(self) -> int:
        """Logical size: the last byte any segment maps back to.

        Segment k's local byte x corresponds to logical byte
        ``((x // S) * n + k) * S + (x % S)`` for stripe size S over n
        segments; the logical size is one past the largest such byte.
        """
        n_segments = len(self.segments)
        stripe = self.stripe_bytes
        logical = 0
        for k, segment in enumerate(self.segments):
            local = self.servers[segment.volume_id].get_attribute(
                segment
            ).file_size
            if local == 0:
                continue
            last = local - 1
            logical_last = (
                (last // stripe) * n_segments + k
            ) * stripe + (last % stripe)
            logical = max(logical, logical_last + 1)
        return logical

    def delete(self, naming: NamingService, name: AttributedName) -> None:
        for bound, _ in naming.lookup(name):
            if bound.get("segments") is not None:
                naming.unbind(bound)
                break
        for segment in self.segments:
            self.servers[segment.volume_id].delete(segment)
