"""The assembled RHODOS system.

``RhodosCluster(config)`` wires the full stack bottom-up: simulated
disks (each with a mirrored stable store), one disk server per disk,
one file server per volume, the naming service, the replication
service, the transaction coordinator, the optional RPC bus, and one
:class:`~repro.cluster.machine.Machine` (agents bundle) per client
machine — all sharing one clock and one metrics registry, so any
experiment can be expressed as "build a cluster, run a workload, read
the counters".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.agents.devices import DeviceAgent
from repro.agents.file_agent import FileAgent
from repro.agents.routing import (
    DirectRouter,
    FileServiceRouter,
    RpcRouter,
    expose_file_server,
)
from repro.agents.shard_routing import (
    direct_shard_caller,
    expose_naming_shard,
    rpc_shard_caller,
    shard_address,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Machine
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.trace import Tracer
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import make_scheduler
from repro.disk_service.server import DiskServer
from repro.file_service.server import FileServer
from repro.naming.directory import DirectoryService
from repro.naming.tdirectory import TransactionalDirectory
from repro.naming.shard import (
    NamingShard,
    PlacementPolicy,
    ShardedNamespace,
    ShardManager,
    shard_component,
)
from repro.recovery.health import HealthRegistry
from repro.replication.service import ReplicationService, volume_component
from repro.rpc.bus import MessageBus
from repro.rpc.endpoint import RpcClient, RpcServer
from repro.rpc.retry import CircuitBreaker
from repro.simdisk.disk import SimDisk
from repro.simdisk.raid import ArrayState, RaidRebuilder, StripedVolume
from repro.simdisk.stable import StableStore
from repro.simkernel.loop import EventLoop
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator


class _VolumeHealthFeed:
    """Relay circuit-breaker transitions into the health registry.

    The breaker speaks bus addresses (``file_server.N``,
    ``naming_shard.N``); the registry speaks components (``volume.N``,
    ``shard.N``).  Breaker-open means the detector should stop routing
    work at the component; breaker-close means a half-open probe
    reached a live server, which *is* a recovery signal — it fires the
    registry's repair hooks (replica resync, orphan sweep) without
    waiting for an administrative restart.
    """

    def __init__(self, health: HealthRegistry) -> None:
        self.health = health

    @staticmethod
    def _component(address: str) -> Optional[str]:
        for prefix, to_component in (
            ("file_server.", volume_component),
            ("naming_shard.", shard_component),
        ):
            if address.startswith(prefix) and address[len(prefix):].isdigit():
                return to_component(int(address[len(prefix):]))
        return None

    def on_breaker_open(self, address: str) -> None:
        component = self._component(address)
        if component is not None:
            self.health.mark_down(component)

    def on_breaker_close(self, address: str) -> None:
        component = self._component(address)
        if component is not None:
            self.health.note_recovered(component)


class RhodosCluster:
    """A complete simulated RHODOS distributed file facility."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.clock = SimClock()
        self.metrics = Metrics()
        self.tracer = Tracer(
            self.clock,
            capacity=self.config.trace_capacity,
            enabled=self.config.tracing,
        )
        self.loop = EventLoop(self.clock)

        #: Per-volume data "disk": a SimDisk, or a StripedVolume duck-
        #: typing the same surface when config.raid_level is set.
        self.disks: List[SimDisk | StripedVolume] = []
        #: volume id -> backing RAID array (empty unless config.raid_level).
        self.arrays: Dict[int, StripedVolume] = {}
        #: volume id -> in-flight background rebuild (see replace_member).
        self.rebuilders: Dict[int, RaidRebuilder] = {}
        self.disk_servers: Dict[int, DiskServer] = {}
        self.pipelines: Dict[int, DiskPipeline] = {}
        self.file_servers: Dict[int, FileServer] = {}
        for volume_id in range(self.config.n_disks):
            if self.config.raid_level is not None:
                members = [
                    SimDisk(
                        f"{volume_id}.m{index}",
                        self.config.geometry,
                        self.clock,
                        self.metrics,
                        timing=self.config.timing,
                        tracer=self.tracer,
                    )
                    for index in range(self.config.raid_members)
                ]
                disk = StripedVolume(
                    str(volume_id),
                    members,
                    level=self.config.raid_level,
                    chunk_sectors=self.config.raid_chunk_sectors,
                    metrics=self.metrics,
                )
                disk.on_state_change = (
                    lambda old, new, vid=volume_id:
                    self._on_array_state(vid, old, new)
                )
                self.arrays[volume_id] = disk
            else:
                disk = SimDisk(
                    str(volume_id),
                    self.config.geometry,
                    self.clock,
                    self.metrics,
                    timing=self.config.timing,
                    tracer=self.tracer,
                )
            stable = StableStore(
                SimDisk(
                    f"{volume_id}.stable_a",
                    self.config.stable_geometry,
                    self.clock,
                    self.metrics,
                    timing=self.config.timing,
                ),
                SimDisk(
                    f"{volume_id}.stable_b",
                    self.config.stable_geometry,
                    self.clock,
                    self.metrics,
                    timing=self.config.timing,
                ),
            )
            disk_server = DiskServer(
                disk,
                stable,
                self.clock,
                self.metrics,
                cache_tracks=self.config.disk_cache_tracks,
                readahead=self.config.disk_readahead,
                extent_rows=self.config.extent_rows,
                extent_columns=self.config.extent_columns,
                tracer=self.tracer,
            )
            file_server = FileServer(
                volume_id,
                disk_server,
                self.clock,
                self.metrics,
                data_cache_blocks=self.config.server_cache_blocks,
                write_policy=self.config.write_policy,
                tracer=self.tracer,
            )
            self.disks.append(disk)
            self.disk_servers[volume_id] = disk_server
            # Each disk drains its own queue on the one shared loop, so
            # requests overlap across disks but serialize per drive.
            self.pipelines[volume_id] = DiskPipeline(
                disk_server,
                self.loop,
                make_scheduler(
                    self.config.disk_scheduler,
                    aging_bound_us=self.config.scan_aging_bound_us,
                ),
            )
            self.file_servers[volume_id] = file_server

        self.health = HealthRegistry(
            self.metrics,
            transient_tolerance=self.config.health_transient_tolerance,
        )

        self.bus: Optional[MessageBus] = None
        self.breaker: Optional[CircuitBreaker] = None
        if self.config.fault_profile is not None:
            self.bus = MessageBus(
                self.clock,
                self.metrics,
                self.config.fault_profile,
                seed=self.config.seed,
                tracer=self.tracer,
            )
            addresses = {}
            for volume_id, file_server in self.file_servers.items():
                address = f"file_server.{volume_id}"
                expose_file_server(file_server, RpcServer(self.bus, address))
                addresses[volume_id] = address
            if self.config.rpc_breaker is not None:
                self.breaker = CircuitBreaker(
                    self.config.rpc_breaker,
                    self.clock,
                    self.metrics,
                    listener=_VolumeHealthFeed(self.health),
                    tracer=self.tracer,
                )
            # A generous retransmission budget: at 30% triple-fault rates
            # a call still succeeds with overwhelming probability, which
            # is the regime experiment E12 sweeps.
            self.router: FileServiceRouter = RpcRouter(
                RpcClient(
                    self.bus,
                    max_attempts=30,
                    backoff=self.config.rpc_backoff,
                    breaker=self.breaker,
                    seed=self.config.seed,
                ),
                addresses,
            )
        else:
            self.router = DirectRouter(self.file_servers)

        # ---------------------------------------------- sharded naming
        # The binding space partitions across n_shards shard servers;
        # n_shards == 1 is the flat namespace, same surface, same
        # behaviour.  With a bus, shard endpoints ride it — retries,
        # breakers, and fault profiles cover metadata traffic too.
        self.shards: Dict[int, NamingShard] = {
            shard_id: NamingShard(
                shard_id,
                self.clock,
                self.metrics,
                service_us=self.config.shard_service_us,
            )
            for shard_id in range(self.config.n_shards)
        }
        self.shard_manager = ShardManager(
            self.shards, n_slots=self.config.shard_slots, metrics=self.metrics
        )
        self._shard_client: Optional[RpcClient] = None
        if self.bus is not None:
            self._shard_client = RpcClient(
                self.bus,
                max_attempts=30,
                backoff=self.config.rpc_backoff,
                breaker=self.breaker,
                seed=self.config.seed + 1,
            )
        callers = {
            shard_id: self._make_shard_caller(shard)
            for shard_id, shard in self.shards.items()
        }
        self.naming = ShardedNamespace(
            callers,
            self.shard_manager.get_map,
            peer_of=self.shard_manager.peer_id_of,
            metrics=self.metrics,
            health=self.health,
            placement=PlacementPolicy(
                list(range(self.config.n_disks)),
                self.config.placement_policy,
                self.metrics,
            ),
        )

        self.coordinator = TransactionCoordinator(
            self.clock,
            self.metrics,
            policy=self.config.timeout_policy,
            technique=self.config.commit_technique,
            cross_level=self.config.cross_level_locking,
            tracer=self.tracer,
        )
        for file_server in self.file_servers.values():
            self.coordinator.register_volume(file_server)

        self.directories = DirectoryService(
            self.naming, self.router, self.metrics, root_volume=0
        )

        self.replication = ReplicationService(
            self.naming,
            self.file_servers,
            self.clock,
            self.metrics,
            default_degree=min(self.config.replication_degree, self.config.n_disks),
            health=self.health,
        )

        self.machines: List[Machine] = []
        for index in range(self.config.n_machines):
            machine_id = f"m{index}"
            device_agent = DeviceAgent(machine_id, self.naming, self.metrics)
            file_agent = FileAgent(
                machine_id,
                self.naming,
                self.router,
                self.clock,
                self.metrics,
                cache_blocks=self.config.client_cache_blocks,
                tracer=self.tracer,
                placement=self.naming.place_volume,
            )
            transaction_host = TransactionAgentHost(
                machine_id,
                self.naming,
                self.coordinator,
                self.clock,
                self.metrics,
            )
            self.machines.append(
                Machine(machine_id, device_agent, file_agent, transaction_host)
            )

    # ------------------------------------------------- shard lifecycle

    def _make_shard_caller(self, shard: NamingShard):
        """The transport for one shard: RPC when a bus exists, direct otherwise."""
        if self.bus is not None:
            address = shard_address(shard.shard_id)
            expose_naming_shard(shard, RpcServer(self.bus, address))
            assert self._shard_client is not None
            return rpc_shard_caller(self._shard_client, address)
        return direct_shard_caller(shard)

    def add_shard(self) -> int:
        """Register a spare shard server (owns no slots until a rebalance).

        The ``split_shard`` entry point: follow with
        ``shard_manager.begin_rebalance(new_id)`` and pump
        ``step_rebalance`` from workload idle points.  Returns the new
        shard's id.
        """
        shard_id = max(self.shards) + 1
        shard = NamingShard(
            shard_id,
            self.clock,
            self.metrics,
            service_us=self.config.shard_service_us,
        )
        self.shards[shard_id] = shard
        self.shard_manager.add_shard(shard)
        self.naming.add_caller(shard_id, self._make_shard_caller(shard))
        self.metrics.add("cluster.shards_added")
        return shard_id

    def fail_shard(self, shard_id: int) -> None:
        """Kill one shard server mid-workload.

        Volatile state (its binding tables) dies with the process; the
        bus endpoint stops answering so clients time out and the
        breaker eventually opens — detection is left to the failure
        path, exactly as :meth:`fail_volume` leaves it.
        """
        self.shards[shard_id].crash()
        if self.bus is not None:
            self.bus.set_down(shard_address(shard_id))
        self.metrics.add("cluster.shard_failures")

    def restart_shard(self, shard_id: int) -> None:
        """Bring a dead shard back: resync from its replica peer, announce.

        The shard manager streams the primary table back from the
        peer's replica copy and rebuilds the restarted shard's own
        replica from its predecessor; the recovery event fires the
        registry's repair hooks.  An open breaker is *not* reset — its
        cooldown is modelled detection lag, charged to unavailability.
        """
        self.shard_manager.restart_shard(shard_id)
        if self.bus is not None:
            self.bus.set_down(shard_address(shard_id), False)
        self.metrics.add("cluster.shard_restarts")
        self.health.note_recovered(shard_component(shard_id))

    # --------------------------------------------------- conveniences

    def transactional_directories(self, machine_index: int = 0) -> TransactionalDirectory:
        """Directory mutations with transaction semantics, via one
        machine's transaction agent (atomic multi-entry updates)."""
        return TransactionalDirectory(
            self.directories, self.machines[machine_index].transactions
        )

    @property
    def machine(self) -> Machine:
        """The first machine (single-machine examples and tests)."""
        return self.machines[0]

    def run_concurrent(self, op, *, n_clients: int, ops_per_client: int):
        """Run a closed-loop contention workload; returns a DriverReport.

        ``op(cluster, client_index, op_index)`` is issued by each of
        ``n_clients`` concurrent clients, each starting its next
        operation the moment the previous one's modelled service
        completes (see :mod:`repro.cluster.driver`).
        """
        from repro.cluster.driver import ConcurrentDriver

        return ConcurrentDriver(
            self, op, n_clients=n_clients, ops_per_client=ops_per_client
        ).run()

    def flush_all(self) -> None:
        """Flush every agent cache and every file server."""
        for machine in self.machines:
            machine.file_agent.flush()
        for file_server in self.file_servers.values():
            file_server.flush()

    def crash_volume(self, volume_id: int) -> None:
        """Crash one volume's data disk (stable mirrors stay up)."""
        self.disks[volume_id].crash()

    def recover_volume(self, volume_id: int) -> None:
        """Repair and recover one volume (disk, caches, transactions)."""
        self.disks[volume_id].repair()
        self.coordinator.recover_volume(volume_id)

    # ------------------------------------------- crash/restart lifecycle

    def fail_volume(self, volume_id: int) -> None:
        """Take one volume's disk *and* file server down mid-workload.

        The bus endpoint stops answering (clients time out, the breaker
        eventually opens), the file server's caches are dropped with the
        crash, and every client machine invalidates its cached blocks
        from the volume — a cache must not serve reads the server could
        not.  Detection is deliberately left to the failure path: the
        health registry learns of the crash from replica errors or
        breaker transitions, exactly as a real deployment would.
        """
        self.file_servers[volume_id].crash()
        # The disk server rode the same machine: its volatile track
        # cache dies too (it must not serve reads the disk cannot).
        cache = self.disk_servers[volume_id].cache
        if cache is not None:
            cache.invalidate()
        if self.bus is not None:
            self.bus.set_down(f"file_server.{volume_id}")
        for machine in self.machines:
            machine.file_agent.invalidate_volume(volume_id)
        self.metrics.add("cluster.volume_failures")

    def restart_volume(self, volume_id: int) -> None:
        """Bring a failed volume back: repair, recover, announce.

        Runs the full transaction-service recovery (redo committed
        work, discard the rest), reopens the bus endpoint, and fires
        the health registry's recovery event — which triggers replica
        resync and orphan sweeps synchronously.  An open circuit
        breaker is *not* reset: its cooldown is part of the modelled
        detection lag and is charged to the unavailability window.
        """
        self.disks[volume_id].repair()
        self.coordinator.recover_volume(volume_id)
        if self.bus is not None:
            self.bus.set_down(f"file_server.{volume_id}", False)
        self.metrics.add("cluster.volume_restarts")
        self.health.note_recovered(volume_component(volume_id))

    # ------------------------------------------------- RAID lifecycle

    def _on_array_state(self, volume_id: int, old: ArrayState, new: ArrayState) -> None:
        """Route an array's state transition into the health registry.

        FAILED is a volume-down verdict; DEGRADED and REBUILDING are
        transient evidence (the volume still serves, redundancy is
        reduced); a return to OPTIMAL clears suspicion — firing the
        registry's repair hooks only if the volume had actually been
        marked down.
        """
        component = volume_component(volume_id)
        if new is ArrayState.FAILED:
            self.health.mark_down(component)
        elif new is ArrayState.OPTIMAL:
            if self.health.is_down(component):
                self.health.note_recovered(component)
            else:
                self.health.note_ok(component)
        else:
            self.health.note_error(component, permanent=False)

    def fail_member(self, volume_id: int, member_index: int) -> None:
        """Kill one member drive of a RAID-backed volume."""
        self.arrays[volume_id].fail_member(member_index)
        self.metrics.add("cluster.member_failures")

    def replace_member(
        self, volume_id: int, member_index: int, *, blank: bool = True
    ) -> RaidRebuilder:
        """Swap a failed member and start its background rebuild.

        The rebuilder is idle-gated on the volume's disk pipeline —
        reconstruction only proceeds from slots where no foreground
        request is queued, the same discipline the scrubber follows.
        Pump it with :meth:`step_rebuilds` (or force completion via the
        returned rebuilder's ``run_cycle``).
        """
        array = self.arrays[volume_id]
        array.replace_member(member_index, blank=blank)
        pipeline = self.pipelines[volume_id]
        rebuilder = RaidRebuilder(
            array,
            chunks_per_step=self.config.raid_rebuild_chunks,
            idle_gate=lambda p=pipeline: p.busy,
        )
        self.rebuilders[volume_id] = rebuilder
        self.metrics.add("cluster.member_replacements")
        return rebuilder

    def step_rebuilds(self, *, force: bool = False) -> int:
        """Grant every in-flight rebuild one idle slot; returns chunks built.

        Finished (or cancelled) rebuilders are retired from
        :attr:`rebuilders`; call from workload idle points, as the
        availability campaign does between operations.
        """
        built = 0
        for volume_id in sorted(self.rebuilders):
            rebuilder = self.rebuilders[volume_id]
            built += rebuilder.step(force=force)
            if rebuilder.done:
                del self.rebuilders[volume_id]
        return built

    def total_disk_references(self) -> int:
        """Data-disk references only (stable mirrors excluded).

        For RAID-backed volumes the member drives are the data disks:
        their reference counters are the quantity the paper's argument
        bounds (the array itself issues no references of its own).
        """
        if self.config.raid_level is not None:
            return sum(
                self.metrics.get(f"disk.{volume_id}.m{index}.references")
                for volume_id in range(self.config.n_disks)
                for index in range(self.config.raid_members)
            )
        return sum(
            self.metrics.get(f"disk.{volume_id}.references")
            for volume_id in range(self.config.n_disks)
        )

    def __repr__(self) -> str:
        return (
            f"RhodosCluster(machines={self.config.n_machines}, "
            f"disks={self.config.n_disks}, now_ms={self.clock.now_ms:.1f})"
        )
