"""The assembled RHODOS system.

``RhodosCluster(config)`` wires the full stack bottom-up: simulated
disks (each with a mirrored stable store), one disk server per disk,
one file server per volume, the naming service, the replication
service, the transaction coordinator, the optional RPC bus, and one
:class:`~repro.cluster.machine.Machine` (agents bundle) per client
machine — all sharing one clock and one metrics registry, so any
experiment can be expressed as "build a cluster, run a workload, read
the counters".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.agents.devices import DeviceAgent
from repro.agents.file_agent import FileAgent
from repro.agents.routing import (
    DirectRouter,
    FileServiceRouter,
    RpcRouter,
    expose_file_server,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Machine
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.trace import Tracer
from repro.disk_service.server import DiskServer
from repro.file_service.server import FileServer
from repro.naming.directory import DirectoryService
from repro.naming.tdirectory import TransactionalDirectory
from repro.naming.service import NamingService
from repro.replication.service import ReplicationService
from repro.rpc.bus import MessageBus
from repro.rpc.endpoint import RpcClient, RpcServer
from repro.simdisk.disk import SimDisk
from repro.simdisk.stable import StableStore
from repro.simkernel.loop import EventLoop
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator


class RhodosCluster:
    """A complete simulated RHODOS distributed file facility."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.clock = SimClock()
        self.metrics = Metrics()
        self.tracer = Tracer(
            self.clock,
            capacity=self.config.trace_capacity,
            enabled=self.config.tracing,
        )
        self.loop = EventLoop(self.clock)
        self.naming = NamingService(self.metrics)

        self.disks: List[SimDisk] = []
        self.disk_servers: Dict[int, DiskServer] = {}
        self.file_servers: Dict[int, FileServer] = {}
        for volume_id in range(self.config.n_disks):
            disk = SimDisk(
                str(volume_id),
                self.config.geometry,
                self.clock,
                self.metrics,
                timing=self.config.timing,
                tracer=self.tracer,
            )
            stable = StableStore(
                SimDisk(
                    f"{volume_id}.stable_a",
                    self.config.stable_geometry,
                    self.clock,
                    self.metrics,
                    timing=self.config.timing,
                ),
                SimDisk(
                    f"{volume_id}.stable_b",
                    self.config.stable_geometry,
                    self.clock,
                    self.metrics,
                    timing=self.config.timing,
                ),
            )
            disk_server = DiskServer(
                disk,
                stable,
                self.clock,
                self.metrics,
                cache_tracks=self.config.disk_cache_tracks,
                readahead=self.config.disk_readahead,
                extent_rows=self.config.extent_rows,
                extent_columns=self.config.extent_columns,
                tracer=self.tracer,
            )
            file_server = FileServer(
                volume_id,
                disk_server,
                self.clock,
                self.metrics,
                data_cache_blocks=self.config.server_cache_blocks,
                write_policy=self.config.write_policy,
                tracer=self.tracer,
            )
            self.disks.append(disk)
            self.disk_servers[volume_id] = disk_server
            self.file_servers[volume_id] = file_server

        self.bus: Optional[MessageBus] = None
        if self.config.fault_profile is not None:
            self.bus = MessageBus(
                self.clock,
                self.metrics,
                self.config.fault_profile,
                seed=self.config.seed,
                tracer=self.tracer,
            )
            addresses = {}
            for volume_id, file_server in self.file_servers.items():
                address = f"file_server.{volume_id}"
                expose_file_server(file_server, RpcServer(self.bus, address))
                addresses[volume_id] = address
            # A generous retransmission budget: at 30% triple-fault rates
            # a call still succeeds with overwhelming probability, which
            # is the regime experiment E12 sweeps.
            self.router: FileServiceRouter = RpcRouter(
                RpcClient(self.bus, max_attempts=30), addresses
            )
        else:
            self.router = DirectRouter(self.file_servers)

        self.coordinator = TransactionCoordinator(
            self.clock,
            self.metrics,
            policy=self.config.timeout_policy,
            technique=self.config.commit_technique,
            cross_level=self.config.cross_level_locking,
            tracer=self.tracer,
        )
        for file_server in self.file_servers.values():
            self.coordinator.register_volume(file_server)

        self.directories = DirectoryService(
            self.naming, self.router, self.metrics, root_volume=0
        )

        self.replication = ReplicationService(
            self.naming,
            self.file_servers,
            self.clock,
            self.metrics,
            default_degree=min(self.config.replication_degree, self.config.n_disks),
        )

        self.machines: List[Machine] = []
        for index in range(self.config.n_machines):
            machine_id = f"m{index}"
            device_agent = DeviceAgent(machine_id, self.naming, self.metrics)
            file_agent = FileAgent(
                machine_id,
                self.naming,
                self.router,
                self.clock,
                self.metrics,
                cache_blocks=self.config.client_cache_blocks,
                tracer=self.tracer,
            )
            transaction_host = TransactionAgentHost(
                machine_id,
                self.naming,
                self.coordinator,
                self.clock,
                self.metrics,
            )
            self.machines.append(
                Machine(machine_id, device_agent, file_agent, transaction_host)
            )

    # --------------------------------------------------- conveniences

    def transactional_directories(self, machine_index: int = 0) -> TransactionalDirectory:
        """Directory mutations with transaction semantics, via one
        machine's transaction agent (atomic multi-entry updates)."""
        return TransactionalDirectory(
            self.directories, self.machines[machine_index].transactions
        )

    @property
    def machine(self) -> Machine:
        """The first machine (single-machine examples and tests)."""
        return self.machines[0]

    def flush_all(self) -> None:
        """Flush every agent cache and every file server."""
        for machine in self.machines:
            machine.file_agent.flush()
        for file_server in self.file_servers.values():
            file_server.flush()

    def crash_volume(self, volume_id: int) -> None:
        """Crash one volume's data disk (stable mirrors stay up)."""
        self.disks[volume_id].crash()

    def recover_volume(self, volume_id: int) -> None:
        """Repair and recover one volume (disk, caches, transactions)."""
        self.disks[volume_id].repair()
        self.coordinator.recover_volume(volume_id)

    def total_disk_references(self) -> int:
        """Data-disk references only (stable mirrors excluded)."""
        return sum(
            self.metrics.get(f"disk.{volume_id}.references")
            for volume_id in range(self.config.n_disks)
        )

    def __repr__(self) -> str:
        return (
            f"RhodosCluster(machines={self.config.n_machines}, "
            f"disks={self.config.n_disks}, now_ms={self.clock.now_ms:.1f})"
        )
