"""Whole-system assembly: machines, volumes, the RHODOS cluster.

The paper's design "does not take into account the physical location"
of the naming, file and disk services — "these services can either
co-exist on the same machine or be located separately" (section 2.2) —
and promises "practically no limitation on the number of disks", with
files partitionable across disks so that "the size of a file can be as
large as the total space available on all the disks" (section 7).

:class:`RhodosCluster` builds a complete simulated system — disks with
stable-storage mirrors, one disk server per disk, file servers,
naming, replication, the transaction coordinator, and per-machine
agent bundles — from one configuration object.  :class:`StripedFile`
implements the cross-disk partitioning.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Machine
from repro.cluster.system import RhodosCluster
from repro.cluster.striping import StripedFile

__all__ = ["ClusterConfig", "Machine", "RhodosCluster", "StripedFile"]
