"""Closed-loop multi-client driver over the assembled cluster.

The paper measures its facility under *contention*: many client
machines issuing operations at once, each starting its next operation
the moment the previous one completes (a closed loop).  The serialized
pre-pipeline harness could not express that — every agent call advanced
the one global clock inline, so N clients degenerated into one client
doing N times the work.

:class:`ConcurrentDriver` fixes the time model.  Each operation runs
inside a deferred-time :func:`~repro.simdisk.timeline.service_frame`:
the data plane executes synchronously (all caches, bitmaps, and file
state mutate immediately, in issue order), while the time plane accrues
on the frame cursor as each touched disk charges its own timeline.  The
operation's completion time is the frame cursor; the client's next
operation is scheduled on the shared event loop at that time.  Two
clients whose operations land on *different* disks therefore overlap —
aggregate time is the max of the disks' busy periods, not the sum —
while operations queueing on the *same* disk serialize through that
disk's ``busy_until``, exactly as a real drive would arbitrate them.

Determinism: clients are issued in index order at equal times (the
loop breaks ties by scheduling sequence), operations never consult wall
clock, and all latency accounting uses the simulated clock, so a run is
a pure function of (config, workload, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.simdisk.timeline import service_frame

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.cluster.system import RhodosCluster

#: One client operation: ``op(cluster, client_index, op_index)``.  Runs
#: synchronously inside a service frame; its disk charges are deferred.
#: It may return an operation-class label (e.g. ``"metadata"`` or
#: ``"data"``, lower-case ``[a-z0-9_]``) to have its latency recorded
#: per class as well as in the aggregate.
ClientOp = Callable[["RhodosCluster", int, int], Optional[str]]


@dataclass(slots=True)
class DriverReport:
    """What one closed-loop run measured (all times simulated).

    Attributes:
        n_clients: concurrent closed-loop clients.
        ops_completed: operations finished across all clients.
        elapsed_us: simulated span from first issue to last completion.
        op_latencies_us: per-operation latencies in completion order.
        latencies_by_class: the same latencies keyed by the class label
            the operation returned (operations returning None appear in
            the aggregate only) — how E20 prices name-resolution cost
            separately from data traffic.
    """

    n_clients: int
    ops_completed: int
    elapsed_us: int
    op_latencies_us: List[int]
    latencies_by_class: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def throughput_ops_per_s(self) -> float:
        """Aggregate completed operations per simulated second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.ops_completed * 1_000_000 / self.elapsed_us

    @property
    def mean_latency_us(self) -> float:
        if not self.op_latencies_us:
            return 0.0
        return sum(self.op_latencies_us) / len(self.op_latencies_us)

    def class_ops(self, label: str) -> int:
        return len(self.latencies_by_class.get(label, []))

    def class_mean_latency_us(self, label: str) -> float:
        latencies = self.latencies_by_class.get(label)
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def class_throughput_ops_per_s(self, label: str) -> float:
        """One class's completions per simulated second of the whole run."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.class_ops(label) * 1_000_000 / self.elapsed_us


class ConcurrentDriver:
    """Run ``n_clients`` closed loops of ``ops_per_client`` operations.

    Args:
        cluster: the assembled system under test.
        op: the operation body each client repeats.
        n_clients: concurrent clients (each a closed loop).
        ops_per_client: operations each client issues in sequence.
    """

    def __init__(
        self,
        cluster: "RhodosCluster",
        op: ClientOp,
        *,
        n_clients: int,
        ops_per_client: int,
    ) -> None:
        if n_clients < 1:
            raise ValueError("need at least one client")
        if ops_per_client < 1:
            raise ValueError("each client must issue at least one operation")
        self.cluster = cluster
        self.op = op
        self.n_clients = n_clients
        self.ops_per_client = ops_per_client
        self._latencies: List[int] = []
        self._by_class: Dict[str, List[int]] = {}

    def run(self) -> DriverReport:
        """Issue every client's loop and run the event loop to idle."""
        clock = self.cluster.clock
        loop = self.cluster.loop
        start_us = clock.now_us
        self._latencies = []
        self._by_class = {}
        for client in range(self.n_clients):
            self._schedule(client, 0, at_us=start_us)
        loop.run_until_idle()
        return DriverReport(
            n_clients=self.n_clients,
            ops_completed=len(self._latencies),
            elapsed_us=clock.now_us - start_us,
            op_latencies_us=self._latencies,
            latencies_by_class=self._by_class,
        )

    # ------------------------------------------------------- internal

    def _schedule(self, client: int, op_index: int, *, at_us: int) -> None:
        self.cluster.loop.call_at(
            at_us, lambda: self._issue(client, op_index)
        )

    def _issue(self, client: int, op_index: int) -> None:
        clock = self.cluster.clock
        begin_us = clock.now_us
        with service_frame(clock) as frame:
            label = self.op(self.cluster, client, op_index)
            end_us = max(frame.cursor_us, begin_us)
        latency_us = end_us - begin_us
        self._latencies.append(latency_us)
        self.cluster.metrics.observe("cluster.op_us", latency_us)
        self.cluster.metrics.add("cluster.ops_completed")
        if label is not None:
            self._by_class.setdefault(label, []).append(latency_us)
            self.cluster.metrics.observe(f"cluster.{label}_op_us", latency_us)
        if op_index + 1 < self.ops_per_client:
            # The closed loop: the next operation issues the instant
            # this one's modelled service completes.
            self._schedule(client, op_index + 1, at_us=end_us)

    def __repr__(self) -> str:
        return (
            f"ConcurrentDriver(clients={self.n_clients}, "
            f"ops_per_client={self.ops_per_client})"
        )
