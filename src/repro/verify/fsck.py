"""fsck for a RHODOS volume.

The checker works the way a real fsck must: it takes nothing on faith
from the in-memory file server.  It scans every allocated fragment for
file index tables (the FIT magic plus structural sanity checks), walks
each FIT's direct and indirect block maps, and reconciles the result
against the allocation bitmap:

* **cross-linked blocks** — two files claiming the same disk block;
* **lost blocks** — referenced by a FIT but free in the bitmap;
* **orphaned fragments** — allocated in the bitmap but referenced by
  no FIT (space leaks);
* **stale contiguity counts** — a stored count field disagreeing with
  the actual layout (would make reads fetch wrong runs);
* **size anomalies** — a recorded file size beyond the mapped blocks;
* **latent corruption** (optional pass, ``verify_media=True``) — every
  recorded fragment checksum recomputed against the raw sectors; a
  mismatch or unreadable sector is *reported, never repaired* — repair
  is the scrubber's job (:mod:`repro.disk_service.scrub`).

The report distinguishes *errors* (integrity broken) from *warnings*
(suboptimal but safe).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import FileSizeError, MediaError
from repro.common.units import BLOCK_SIZE, FRAGMENTS_PER_BLOCK
from repro.disk_service.server import DiskServer
from repro.disk_service.addresses import Extent
from repro.file_service.fit import (
    DIRECT_DESCRIPTORS,
    BlockDescriptor,
    FileIndexTable,
    decode_indirect_block,
    recompute_counts,
)
from repro.file_service.server import FileServer
from repro.replication.service import ReplicationService


@dataclass
class FsckReport:
    """Everything the checker found on one volume."""

    volume_id: int
    files_found: int = 0
    blocks_referenced: int = 0
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    orphaned_fragments: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.errors)} ERROR(S)"
        return (
            f"volume {self.volume_id}: {status} — {self.files_found} files, "
            f"{self.blocks_referenced} data blocks, "
            f"{self.orphaned_fragments} orphaned fragments, "
            f"{len(self.warnings)} warning(s)"
        )


def _plausible_fit(fit: FileIndexTable, n_fragments: int) -> bool:
    """Weed out data blocks that merely contain FIT-like bytes."""
    attrs = fit.attributes
    if attrs.generation <= 0:
        return False
    if attrs.file_size > n_fragments * 2048:
        return False
    for desc in fit.direct:
        if desc is not None and desc.address >= n_fragments:
            return False
    for address in fit.single_indirect + fit.double_indirect:
        if address is not None and address >= n_fragments:
            return False
    return True


def fsck_volume(server: FileServer, *, verify_media: bool = False) -> FsckReport:
    """Check one volume; purely read-only (uses raw disk reads).

    With ``verify_media=True`` a fourth pass recomputes every recorded
    fragment checksum from the raw sectors and reports mismatches as
    errors (see :func:`verify_checksums`).
    """
    disk = server.disk
    report = FsckReport(volume_id=server.volume_id)
    n_fragments = disk.n_fragments
    bitmap = disk.bitmap

    # Pass 1: find the FITs by scanning allocated fragments.
    fits: Dict[int, FileIndexTable] = {}
    for fragment in range(n_fragments):
        if bitmap.is_free(fragment):
            continue
        try:
            blob = disk.get(Extent(fragment, 1))
        except MediaError as exc:
            # An unreadable or rotten fragment cannot hold a live FIT
            # candidate; the media pass (or the scrubber) names it.
            report.warnings.append(f"fragment {fragment}: unreadable ({exc})")
            continue
        if blob[:4] != b"RFIT":
            continue
        try:
            fit = FileIndexTable.decode(blob)
        except (FileSizeError, ValueError, struct.error):
            # The concrete decode taxonomy: structural corruption
            # (FileSizeError), malformed field values (ValueError), or
            # a truncated layout (struct.error).  Anything else is a
            # checker bug and must surface, not be swallowed.
            report.warnings.append(
                f"fragment {fragment}: FIT magic but undecodable (torn write?)"
            )
            continue
        if _plausible_fit(fit, n_fragments):
            fits[fragment] = fit
    report.files_found = len(fits)

    # Pass 2: walk each FIT's block map.
    owner_of: Dict[int, int] = {}  # block start fragment -> owning FIT
    referenced: Set[int] = set(fits)  # fragments accounted for
    for fit_address, fit in fits.items():
        from repro.file_service.fit import DESCRIPTORS_PER_INDIRECT

        block_map: List[BlockDescriptor | None] = list(fit.direct)
        for slot, address in enumerate(fit.single_indirect):
            if address is None:
                block_map.extend([None] * DESCRIPTORS_PER_INDIRECT)
                continue
            referenced.update(range(address, address + FRAGMENTS_PER_BLOCK))
            if bitmap.is_free(address):
                report.errors.append(
                    f"FIT {fit_address}: indirect block {address} is free"
                )
                block_map.extend([None] * DESCRIPTORS_PER_INDIRECT)
                continue
            try:
                block_map.extend(
                    decode_indirect_block(
                        disk.get(Extent.for_block_run(address, 1))
                    )
                )
            except MediaError as exc:
                report.errors.append(
                    f"FIT {fit_address}: indirect block {address} "
                    f"unreadable ({exc})"
                )
                block_map.extend([None] * DESCRIPTORS_PER_INDIRECT)
        for address in fit.double_indirect:
            if address is None:
                block_map.extend(
                    [None] * (DESCRIPTORS_PER_INDIRECT * DESCRIPTORS_PER_INDIRECT)
                )
                continue
            referenced.update(range(address, address + FRAGMENTS_PER_BLOCK))
            if bitmap.is_free(address):
                report.errors.append(
                    f"FIT {fit_address}: double-indirect pointer block "
                    f"{address} is free"
                )
                continue
            try:
                pointers = decode_indirect_block(
                    disk.get(Extent.for_block_run(address, 1))
                )
            except MediaError as exc:
                report.errors.append(
                    f"FIT {fit_address}: double-indirect pointer block "
                    f"{address} unreadable ({exc})"
                )
                continue
            for pointer in pointers:
                if pointer is None:
                    block_map.extend([None] * DESCRIPTORS_PER_INDIRECT)
                    continue
                referenced.update(
                    range(pointer.address, pointer.address + FRAGMENTS_PER_BLOCK)
                )
                if bitmap.is_free(pointer.address):
                    report.errors.append(
                        f"FIT {fit_address}: inner indirect block "
                        f"{pointer.address} is free"
                    )
                    block_map.extend([None] * DESCRIPTORS_PER_INDIRECT)
                    continue
                try:
                    block_map.extend(
                        decode_indirect_block(
                            disk.get(Extent.for_block_run(pointer.address, 1))
                        )
                    )
                except MediaError as exc:
                    report.errors.append(
                        f"FIT {fit_address}: inner indirect block "
                        f"{pointer.address} unreadable ({exc})"
                    )
                    block_map.extend([None] * DESCRIPTORS_PER_INDIRECT)
        while block_map and block_map[-1] is None:
            block_map.pop()
        mapped = 0
        for index, desc in enumerate(block_map):
            if desc is None:
                continue
            mapped += 1
            report.blocks_referenced += 1
            block_fragments = range(
                desc.address, desc.address + FRAGMENTS_PER_BLOCK
            )
            referenced.update(block_fragments)
            if any(bitmap.is_free(f) for f in block_fragments):
                report.errors.append(
                    f"FIT {fit_address}: block {index} at {desc.address} "
                    f"overlaps free space (lost block)"
                )
            previous_owner = owner_of.get(desc.address)
            if previous_owner is not None and previous_owner != fit_address:
                report.errors.append(
                    f"block at {desc.address} cross-linked between FITs "
                    f"{previous_owner} and {fit_address}"
                )
            owner_of[desc.address] = fit_address
        # Contiguity counts must match the layout.
        expected = recompute_counts(block_map)
        for index, (stored, fresh) in enumerate(zip(block_map, expected)):
            if stored is not None and fresh is not None and stored.count != fresh.count:
                report.warnings.append(
                    f"FIT {fit_address}: block {index} count {stored.count} "
                    f"should be {fresh.count} (stale contiguity count)"
                )
        # Size within the mapped area (holes allowed; beyond-map is not).
        size = fit.attributes.file_size
        highest = -1
        for index, desc in enumerate(block_map):
            if desc is not None:
                highest = index
        if size > (highest + 1) * BLOCK_SIZE:
            report.errors.append(
                f"FIT {fit_address}: recorded size {size} exceeds the "
                f"mapped area ({(highest + 1) * BLOCK_SIZE} bytes)"
            )

    # Pass 3: orphaned space (allocated, but referenced by nothing).
    for fragment in range(n_fragments):
        if not bitmap.is_free(fragment) and fragment not in referenced:
            report.orphaned_fragments += 1
    if report.orphaned_fragments:
        report.warnings.append(
            f"{report.orphaned_fragments} allocated fragments are referenced "
            f"by no FIT (leaked space — or non-file data such as scratch "
            f"extents of in-flight transactions)"
        )

    # Pass 4 (optional): recompute fragment checksums against raw sectors.
    if verify_media:
        report.errors.extend(verify_checksums(disk))
    return report


def verify_checksums(disk: DiskServer) -> List[str]:
    """Recompute every recorded fragment checksum from raw sectors.

    Purely a *reporting* pass: sectors are read below the track cache
    and below the server's verify-on-read path, so nothing is
    reconciled, read-repaired, or cached as a side effect — a finding
    here is latent corruption an administrator (or the scrubber) still
    has to act on.  Unreconciled checksums — entries reloaded from the
    last checkpoint that no read or write has confirmed since a crash —
    are skipped: their recorded CRC may simply lag an in-flux write, so
    a raw recompute cannot call a mismatch rot yet.
    """
    findings: List[str] = []
    for fragment in disk.checksummed_fragments():
        if disk.is_unreconciled(fragment):
            continue
        expected = disk.recorded_checksum(fragment)
        extent = Extent(fragment, 1)
        try:
            blob = disk.disk.read_sectors(extent.first_sector, extent.n_sectors)
        except MediaError as exc:
            findings.append(f"fragment {fragment}: unreadable ({exc})")
            continue
        actual = zlib.crc32(blob)
        if actual != expected:
            findings.append(
                f"fragment {fragment}: checksum mismatch (recorded "
                f"0x{expected:08x}, computed 0x{actual:08x} — latent rot)"
            )
    return findings


def sweep_replication_orphans(
    replication: ReplicationService, *, volume_id: Optional[int] = None
) -> Tuple[int, int]:
    """Reclaim replicas leaked by failed replicated deletes.

    A replicated delete unbinds the name even when a replica's volume
    is unreachable; the unreachable replica is recorded by the
    replication service instead of being silently leaked.  The service
    sweeps these automatically when the volume's recovery event fires;
    this is the administrative entry point for the same sweep (an fsck
    run over volumes that never emitted a recovery event).  Returns
    ``(swept, still_orphaned)``.
    """
    swept = replication.sweep_orphans(volume_id)
    return swept, len(replication.orphans())
