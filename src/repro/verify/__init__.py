"""Offline integrity verification for RHODOS volumes.

Home of :mod:`repro.verify.fsck`, the read-only volume checker.  The
implementation lives *below* the operator-tooling and chaos layers on
purpose: both ``repro.tools`` (the ``fsck`` CLI surface) and
``repro.chaos`` (post-crash admissibility invariants) consume it, and
the layer DAG forbids ``chaos`` → ``tools``.  ``repro.tools.fsck``
re-exports everything here, so operator-facing imports are unchanged.
"""

from repro.verify.fsck import (
    FsckReport,
    fsck_volume,
    sweep_replication_orphans,
    verify_checksums,
)

__all__ = [
    "FsckReport",
    "fsck_volume",
    "sweep_replication_orphans",
    "verify_checksums",
]
