"""The paper's 64x64 free-extent array."""

import pytest

from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap
from repro.disk_service.extent_table import FreeExtentTable


@pytest.fixture
def bitmap():
    return FragmentBitmap(1024)


@pytest.fixture
def table():
    return FreeExtentTable()


class TestShape:
    def test_default_is_64_by_64(self, table):
        """Paper section 4: 'of the order of 64 rows and 64 columns'."""
        assert table.rows == 64
        assert table.columns == 64

    def test_row_semantics(self, table):
        """Row r indexes runs of exactly r fragments (1-based)."""
        assert table._row_index(1) == 0
        assert table._row_index(2) == 1
        assert table._row_index(64) == 63
        assert table._row_index(1000) == 63  # last row: >= rows

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            FreeExtentTable(rows=0)


class TestInsertRemove:
    def test_insert_and_take(self, table, bitmap):
        bitmap.mark_allocated(Extent(0, 1024))
        bitmap.mark_free(Extent(100, 5))
        table.insert_run(100, 5)
        run = table.take_run(5, bitmap)
        assert run == Extent(100, 5)
        assert table.entry_count() == 0

    def test_row_capacity_bounded(self):
        table = FreeExtentTable(rows=4, columns=2)
        assert table.insert_run(0, 1)
        assert table.insert_run(10, 1)
        assert not table.insert_run(20, 1)  # column overflow: not indexed
        assert table.entry_count() == 2

    def test_reinsert_moves_rows(self, table):
        table.insert_run(50, 3)
        table.insert_run(50, 7)  # run grew (coalesced)
        assert table.row_sizes()[2] == 0
        assert table.row_sizes()[6] == 1

    def test_remove(self, table):
        table.insert_run(5, 2)
        assert table.remove_run(5)
        assert not table.remove_run(5)
        assert table.entry_count() == 0


class TestAllocationPolicy:
    def test_exact_fit_preferred(self, table, bitmap):
        bitmap.mark_allocated(Extent(0, 1024))
        for start, length in [(0, 8), (100, 4), (200, 16)]:
            bitmap.mark_free(Extent(start, length))
            table.insert_run(start, length)
        run = table.take_run(4, bitmap)
        assert run == Extent(100, 4)

    def test_smallest_adequate_when_no_exact_fit(self, table, bitmap):
        bitmap.mark_allocated(Extent(0, 1024))
        for start, length in [(0, 8), (200, 16)]:
            bitmap.mark_free(Extent(start, length))
            table.insert_run(start, length)
        run = table.take_run(5, bitmap)
        assert run == Extent(0, 8)

    def test_oversize_requests_use_last_row(self, bitmap):
        table = FreeExtentTable(rows=8, columns=8)
        bitmap.mark_allocated(Extent(0, 1024))
        bitmap.mark_free(Extent(0, 100))
        bitmap.mark_free(Extent(500, 300))
        table.insert_run(0, 100)
        table.insert_run(500, 300)
        run = table.take_run(200, bitmap)
        assert run == Extent(500, 300)

    def test_none_when_no_adequate_run(self, table, bitmap):
        bitmap.mark_allocated(Extent(0, 1024))
        bitmap.mark_free(Extent(0, 3))
        table.insert_run(0, 3)
        assert table.take_run(10, bitmap) is None

    def test_has_run_quick_check(self, table):
        """The array's stated objective: 'to check quickly whether a
        requested number of contiguous fragments ... are available'."""
        table.insert_run(0, 10)
        assert table.has_run(10)
        assert table.has_run(1)
        assert not table.has_run(11)

    def test_take_largest(self, table, bitmap):
        bitmap.mark_allocated(Extent(0, 1024))
        for start, length in [(0, 4), (100, 32), (300, 9)]:
            bitmap.mark_free(Extent(start, length))
            table.insert_run(start, length)
        assert table.take_largest(bitmap) == Extent(100, 32)


class TestRefill:
    def test_refill_scans_bitmap(self, table, bitmap):
        """Paper: initialisation and updating are done by scanning the
        bitmap."""
        bitmap.mark_allocated(Extent(0, 1024))
        bitmap.mark_free(Extent(10, 4))
        bitmap.mark_free(Extent(50, 6))
        indexed = table.refill(bitmap)
        assert indexed == 2
        table.check_against(bitmap)

    def test_check_against_catches_stale_entries(self, table, bitmap):
        bitmap.mark_allocated(Extent(0, 1024))
        bitmap.mark_free(Extent(10, 4))
        table.insert_run(10, 4)
        bitmap.mark_allocated(Extent(10, 4))  # table now stale
        with pytest.raises(AssertionError):
            table.check_against(bitmap)
