"""The disk server: allocation, the five service functions, stability."""

import pytest

from repro.common.errors import BadAddressError, DiskFullError
from repro.disk_service.addresses import Extent
from repro.disk_service.server import DiskServer, Source, Stability, SyncMode
from tests.conftest import build_disk_server

from repro.common.clock import SimClock
from repro.common.metrics import Metrics


@pytest.fixture
def server():
    return build_disk_server(SimClock(), Metrics())


def payload(extent: Extent, fill: int = 0xAB) -> bytes:
    return bytes([fill]) * extent.byte_size


class TestAllocation:
    def test_contiguous_allocation(self, server):
        extent = server.allocate(5)
        assert isinstance(extent, Extent)
        assert extent.length == 5
        assert server.bitmap.is_allocated_run(extent)

    def test_allocate_block_is_four_fragments(self, server):
        extent = server.allocate_block()
        assert extent.length == 4
        assert server.allocate_block(3).length == 12

    def test_allocations_do_not_overlap(self, server):
        extents = [server.allocate(3) for _ in range(50)]
        for i, a in enumerate(extents):
            for b in extents[i + 1 :]:
                assert not a.overlaps(b)

    def test_free_and_reuse(self, server):
        extent = server.allocate(10)
        server.free(extent)
        assert server.free_fragments == server.n_fragments
        again = server.allocate(10)
        assert again == extent  # best-fit finds the same hole

    def test_free_coalesces_neighbours(self, server):
        a = server.allocate(4)
        b = server.allocate(4)
        c = server.allocate(4)
        assert b.start == a.end and c.start == b.end
        server.free(a)
        server.free(c)
        server.free(b)  # merges with both sides
        server.extent_table.check_against(server.bitmap)
        run = server.bitmap.run_containing(a.start)
        assert run is not None and run.length >= 12

    def test_disk_full(self, server):
        server.allocate(server.n_fragments)
        with pytest.raises(DiskFullError):
            server.allocate(1)

    def test_fragmented_contiguous_request_fails(self):
        server = build_disk_server(SimClock(), Metrics())
        # Allocate everything, then free every other fragment.
        whole = server.allocate(server.n_fragments)
        for fragment in range(0, server.n_fragments, 2):
            server.free(Extent(fragment, 1))
        with pytest.raises(DiskFullError):
            server.allocate(2)

    def test_gather_allocation_spans_fragmented_space(self):
        server = build_disk_server(SimClock(), Metrics())
        server.allocate(server.n_fragments)
        for fragment in range(0, 40, 2):
            server.free(Extent(fragment, 1))
        pieces = server.allocate(10, contiguous=False)
        assert sum(piece.length for piece in pieces) == 10

    def test_gather_insufficient_space(self, server):
        server.allocate(server.n_fragments - 2)
        with pytest.raises(DiskFullError):
            server.allocate(5, contiguous=False)

    def test_try_allocate_at(self, server):
        first = server.allocate(4)
        extension = server.try_allocate_at(first.end, 4)
        assert extension == Extent(first.end, 4)
        # Now taken: a second attempt must fail politely.
        assert server.try_allocate_at(first.end, 4) is None
        server.extent_table.check_against(server.bitmap)

    def test_try_allocate_at_out_of_range(self, server):
        assert server.try_allocate_at(server.n_fragments - 1, 5) is None

    def test_zero_fragment_request_rejected(self, server):
        with pytest.raises(BadAddressError):
            server.allocate(0)


class TestGetPut:
    def test_round_trip(self, server):
        extent = server.allocate(3)
        server.put(extent, payload(extent))
        assert server.get(extent) == payload(extent)

    def test_contiguous_get_is_one_disk_reference(self, server):
        """Paper section 4: any operation on a set of contiguous
        blocks/fragments is one single reference to the disk."""
        extent = server.allocate(16)  # 4 blocks
        server.put(extent, payload(extent))
        before = server.metrics.get("disk.0.references")
        server.get(extent, use_cache=False)
        assert server.metrics.get("disk.0.references") == before + 1

    def test_put_length_must_match(self, server):
        extent = server.allocate(2)
        with pytest.raises(BadAddressError):
            server.put(extent, b"short")

    def test_out_of_range_extent(self, server):
        with pytest.raises(BadAddressError):
            server.get(Extent(server.n_fragments, 1))


class TestStability:
    def test_both_saves_original_and_stable(self, server):
        extent = server.allocate(1)
        server.put(extent, payload(extent), stability=Stability.BOTH)
        assert server.get(extent) == payload(extent)
        assert server.get(extent, source=Source.STABLE) == payload(extent)

    def test_stable_only_is_a_shadow(self, server):
        """Shadow pages go exclusively to stable storage: the original
        location is untouched."""
        extent = server.allocate(1)
        server.put(extent, payload(extent, 0x11))
        server.put(extent, payload(extent, 0x22), stability=Stability.STABLE_ONLY)
        assert server.get(extent, use_cache=False) == payload(extent, 0x11)
        assert server.get(extent, source=Source.STABLE) == payload(extent, 0x22)

    def test_deferred_stable_write(self, server):
        """sync=BEFORE_STABLE returns before the stable save; the save
        happens at the next flush."""
        extent = server.allocate(1)
        server.put(
            extent,
            payload(extent),
            stability=Stability.BOTH,
            sync=SyncMode.BEFORE_STABLE,
        )
        assert server.pending_stable_writes == 1
        server.flush()
        assert server.pending_stable_writes == 0
        assert server.get(extent, source=Source.STABLE) == payload(extent)

    def test_deferred_write_drained_by_stable_read(self, server):
        extent = server.allocate(1)
        server.put(
            extent,
            payload(extent),
            stability=Stability.BOTH,
            sync=SyncMode.BEFORE_STABLE,
        )
        assert server.get(extent, source=Source.STABLE) == payload(extent)

    def test_release_stable(self, server):
        extent = server.allocate(1)
        server.put(extent, payload(extent), stability=Stability.STABLE_ONLY)
        server.release_stable(extent)
        with pytest.raises(KeyError):
            server.get(extent, source=Source.STABLE)


class TestRecovery:
    def test_bitmap_survives_via_checkpoint(self, server):
        extents = [server.allocate(4) for _ in range(5)]
        server.checkpoint_free_space()
        free_before = server.free_fragments
        server.recover()
        assert server.free_fragments == free_before
        for extent in extents:
            assert server.bitmap.is_allocated_run(extent)
        server.extent_table.check_against(server.bitmap)

    def test_recover_without_checkpoint_resets(self, server):
        server.allocate(4)
        server.recover()  # no checkpoint was taken
        assert server.free_fragments == server.n_fragments

    def test_recover_drops_pending_stable_writes(self, server):
        extent = server.allocate(1)
        server.put(
            extent,
            payload(extent),
            stability=Stability.STABLE_ONLY,
            sync=SyncMode.BEFORE_STABLE,
        )
        server.recover()
        assert server.pending_stable_writes == 0


class TestChecksums:
    """PR 6: every put seals a per-fragment CRC; every get verifies it."""

    def test_put_records_a_checksum_per_fragment(self, server):
        extent = server.allocate(3)
        server.put(extent, payload(extent))
        assert server.checksummed_fragments() == list(
            range(extent.start, extent.end)
        )
        for fragment in range(extent.start, extent.end):
            assert server.has_checksum(fragment)
            assert server.recorded_checksum(fragment) is not None
            assert not server.is_unreconciled(fragment)

    def test_rot_raises_checksum_error_with_both_crcs(self, server):
        from repro.common.errors import ChecksumError

        extent = server.allocate(1)
        server.put(extent, payload(extent))
        recorded = server.recorded_checksum(extent.start)
        server.disk.corrupt_at(extent.first_sector, 0, 0x80)
        with pytest.raises(ChecksumError) as excinfo:
            server.get(extent, use_cache=False)
        assert f"0x{recorded:08x}" in str(excinfo.value)
        assert server.metrics.get("disk_server.0.checksum_failures") == 1

    def test_rot_in_a_wide_read_names_the_rotten_fragment(self, server):
        from repro.common.errors import ChecksumError

        extent = server.allocate(4)
        server.put(extent, payload(extent))
        rotten = extent.start + 2
        server.disk.corrupt_at(Extent(rotten, 1).first_sector, 5, 0x01)
        with pytest.raises(ChecksumError) as excinfo:
            server.get(extent, use_cache=False)
        assert f"fragment {rotten}" in str(excinfo.value)

    def test_stable_source_reads_are_not_checksum_verified(self, server):
        """The stable copy has its own duplex protection; only main
        reads go through the CRC path."""
        extent = server.allocate(1)
        server.put(extent, payload(extent), stability=Stability.BOTH)
        server.disk.corrupt_at(extent.first_sector, 0, 0xFF)
        assert server.get(extent, source=Source.STABLE) == payload(extent)


class TestChecksumReconciliation:
    """Post-crash arbitration of stale checkpointed checksums."""

    def test_flush_checkpoints_and_recover_reloads_checksums(self, server):
        extent = server.allocate(2)
        server.put(extent, payload(extent))
        recorded = [
            server.recorded_checksum(f) for f in range(extent.start, extent.end)
        ]
        server.flush()
        server.recover()
        assert [
            server.recorded_checksum(f) for f in range(extent.start, extent.end)
        ] == recorded
        assert all(
            server.is_unreconciled(f) for f in range(extent.start, extent.end)
        )

    def test_clean_read_reconciles(self, server):
        extent = server.allocate(1)
        server.put(extent, payload(extent))
        server.flush()
        server.recover()
        assert server.get(extent, use_cache=False) == payload(extent)
        assert not server.is_unreconciled(extent.start)

    def test_post_checkpoint_rewrite_drops_stale_entry(self, server):
        """A fragment legitimately rewritten after the checkpoint must
        not read as rot: the basic service makes no content promise for
        in-flux data, so the stale entry is dropped, not raised."""
        extent = server.allocate(1)
        server.put(extent, payload(extent, 0x01))
        server.flush()
        server.put(extent, payload(extent, 0x02))  # after the checkpoint
        server.recover()
        assert server.get(extent, use_cache=False) == payload(extent, 0x02)
        assert server.metrics.get("disk_server.0.checksums_reconciled") == 1
        assert server.metrics.get("disk_server.0.checksum_failures") == 0
        assert not server.has_checksum(extent.start)  # no promise left

    def test_torn_mirrored_write_is_read_repaired_from_stable(self, server):
        """Mirrored fragments arbitrate the crash window against their
        stable copy: main diverging from stable means the BOTH put tore
        between its two writes, and the extent rolls back in place."""
        extent = server.allocate(1)
        server.put(extent, payload(extent, 0x01), stability=Stability.BOTH)
        server.flush()
        # Tear: main rewritten below the put path, stable left behind.
        server.disk.write_sectors(
            extent.first_sector, payload(extent, 0x02)
        )
        server.recover()
        assert server.get(extent, use_cache=False) == payload(extent, 0x01)
        assert server.metrics.get("disk_server.0.read_repairs") == 1
        # The repair re-sealed everything: reads are clean and settled.
        assert server.get(extent, use_cache=False) == payload(extent, 0x01)
        assert not server.is_unreconciled(extent.start)

    def test_repair_from_stable_restores_and_reseals(self, server):
        extent = server.allocate(2)
        server.put(extent, payload(extent, 0x07), stability=Stability.BOTH)
        server.disk.corrupt_sectors(extent.first_sector, 2)
        assert server.repair_from_stable(extent) == payload(extent, 0x07)
        assert server.get(extent, use_cache=False) == payload(extent, 0x07)
        assert server.metrics.get("disk_server.0.stable_repairs") == 1
        assert server.is_mirrored_fragment(extent.start)
