"""The overlapped request pipeline: submit, schedule, coalesce, settle."""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DiskCrashedError
from repro.common.metrics import Metrics
from repro.common.trace import Tracer
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import CoalescingScheduler, FcfsScheduler
from repro.simkernel.future import wait, wait_all
from repro.simkernel.loop import EventLoop
from tests.conftest import build_disk_server


def build(scheduler=None, *, tracer=None, disk_id="0"):
    clock, metrics = SimClock(), Metrics()
    server = build_disk_server(clock, metrics, disk_id=disk_id)
    if tracer is not None:
        server.tracer = tracer
    loop = EventLoop(clock)
    pipeline = DiskPipeline(server, loop, scheduler)
    return server, loop, pipeline


def payload(extent, fill=0xAB):
    return bytes([fill]) * extent.byte_size


class TestSubmitAndWait:
    def test_put_then_get_roundtrip(self):
        server, loop, _ = build()
        extent = server.allocate(4)
        data = payload(extent)
        wait(loop, server.submit_put(extent, data))
        assert wait(loop, server.submit_get(extent)) == data

    def test_submit_advances_simulated_time_only_at_completion(self):
        server, loop, _ = build()
        extent = server.allocate(4)
        completion = server.submit_put(extent, payload(extent))
        assert server.clock.now_us == 0  # charged to the disk, not the clock
        wait(loop, completion)
        assert server.clock.now_us > 0
        assert completion.done

    def test_submitted_time_matches_blocking_time(self):
        """One queued request costs exactly what the blocking call does."""
        blocking_server, _, _ = build()
        extent = blocking_server.allocate(4)
        blocking_server.put(extent, payload(extent))
        blocking_cost = blocking_server.clock.now_us

        queued_server, loop, _ = build()
        extent = queued_server.allocate(4)
        wait(loop, queued_server.submit_put(extent, payload(extent)))
        assert queued_server.clock.now_us == blocking_cost

    def test_submit_without_pipeline_is_an_error(self):
        clock, metrics = SimClock(), Metrics()
        server = build_disk_server(clock, metrics)
        with pytest.raises(Exception, match="no request pipeline"):
            server.submit_get(server.allocate(1))


class TestOverlap:
    def test_two_disks_cost_the_max_not_the_sum(self):
        # serial baseline: one disk, one put
        solo_server, solo_loop, _ = build()
        extent = solo_server.allocate(4)
        wait(solo_loop, solo_server.submit_put(extent, payload(extent)))
        one_disk_cost = solo_server.clock.now_us
        assert one_disk_cost > 0

        # two identical disks share a clock and loop: same two puts overlap
        clock, metrics = SimClock(), Metrics()
        server_a = build_disk_server(clock, metrics, disk_id="a")
        server_b = build_disk_server(clock, metrics, disk_id="b")
        loop = EventLoop(clock)
        DiskPipeline(server_a, loop)
        DiskPipeline(server_b, loop)
        extent_a = server_a.allocate(4)
        extent_b = server_b.allocate(4)
        first = server_a.submit_put(extent_a, payload(extent_a))
        second = server_b.submit_put(extent_b, payload(extent_b))
        wait_all(loop, [first, second])
        assert clock.now_us == one_disk_cost  # max of two equal costs

    def test_same_disk_requests_serialize(self):
        server, loop, pipeline = build()
        extent_a = server.allocate(4)
        extent_b = server.allocate(4)
        first = server.submit_put(extent_a, payload(extent_a))
        second = server.submit_put(extent_b, payload(extent_b))
        assert pipeline.depth == 1  # one in service, one queued
        wait_all(loop, [first, second])
        assert pipeline.depth == 0


class TestCoalescing:
    def test_adjacent_queued_puts_become_one_reference(self):
        from repro.disk_service.addresses import Extent

        server, loop, _ = build(CoalescingScheduler(FcfsScheduler()))
        busy = server.allocate(4)
        run = server.allocate(12)  # three adjacent 4-fragment extents
        parts = [Extent(run.start + 4 * i, 4) for i in range(3)]
        # first submission services immediately; the rest queue behind it
        leader = server.submit_put(busy, payload(busy))
        riders = [server.submit_put(part, payload(part, i)) for i, part in enumerate(parts)]
        before = server.metrics.get("disk.0.references")
        wait_all(loop, [leader, *riders])
        merged_references = server.metrics.get("disk.0.references") - before
        assert merged_references == 1  # three queued puts, one reference
        assert server.metrics.get("disk_server.0.coalesced_requests") == 2
        for i, part in enumerate(parts):
            assert server.get(part) == payload(part, i)

    def test_adjacent_queued_gets_slice_from_one_blob(self):
        from repro.disk_service.addresses import Extent

        server, loop, _ = build(CoalescingScheduler(FcfsScheduler()))
        busy = server.allocate(4)
        run = server.allocate(8)
        parts = [Extent(run.start + 4 * i, 4) for i in range(2)]
        for i, part in enumerate(parts):
            server.put(part, payload(part, i))
        leader = server.submit_get(busy)
        riders = [server.submit_get(part) for part in parts]
        results = wait_all(loop, [leader, *riders])
        assert results[1] == payload(parts[0], 0)
        assert results[2] == payload(parts[1], 1)


class TestFailure:
    def test_crash_fails_every_rider_of_the_batch(self):
        from repro.disk_service.addresses import Extent

        server, loop, _ = build(CoalescingScheduler(FcfsScheduler()))
        busy = server.allocate(4)
        run = server.allocate(8)
        parts = [Extent(run.start + 4 * i, 4) for i in range(2)]
        leader = server.submit_put(busy, payload(busy))
        riders = [server.submit_put(part, payload(part)) for part in parts]
        server.disk.crash()  # the queued batch meets a dead drive
        loop.run_until(lambda: all(r.done for r in riders))
        assert not leader.failed  # already on the platter before the crash
        for rider in riders:
            assert rider.failed
            assert isinstance(rider.exception(), DiskCrashedError)

    def test_pipeline_keeps_serving_after_a_failed_batch(self):
        server, loop, _ = build()
        extent = server.allocate(4)
        doomed = server.submit_put(extent, payload(extent))
        server.disk.crash()
        # the submission already serviced (data plane is instant); its
        # completion is pending but the write beat the crash
        wait(loop, doomed)
        server.disk.repair()
        later = server.allocate(4)
        assert wait(loop, server.submit_put(later, payload(later))) is None


class TestTelemetry:
    def test_queue_depth_gauge_and_wait_histogram(self):
        server, loop, pipeline = build()
        metrics = server.metrics
        extent_a = server.allocate(4)
        extent_b = server.allocate(4)
        first = server.submit_put(extent_a, payload(extent_a))
        second = server.submit_put(extent_b, payload(extent_b))
        assert metrics.get_gauge("disk.0.queue_depth") == 1
        wait_all(loop, [first, second])
        assert metrics.get_gauge("disk.0.queue_depth") == 0
        waits = metrics.histogram_samples("disk_service.queue_wait_us")
        assert len(waits) == 2
        assert waits[0] == 0  # went straight into service
        assert waits[1] > 0  # queued behind the first
        assert metrics.get("disk_server.0.submissions") == 2

    def test_queue_span_covers_the_wait(self):
        clock_probe = SimClock()
        tracer = Tracer(clock_probe, enabled=True)
        server, loop, _ = build(tracer=tracer)
        tracer.clock = server.clock  # trace in the server's timebase
        extent_a = server.allocate(4)
        extent_b = server.allocate(4)
        first = server.submit_put(extent_a, payload(extent_a))
        second = server.submit_put(extent_b, payload(extent_b))
        wait_all(loop, [first, second])
        queue_spans = [s for s in tracer.spans() if s.layer == "queue"]
        assert len(queue_spans) == 2
        assert queue_spans[1].start_us == 0  # retro-dated to enqueue time
        assert queue_spans[1].end_us > queue_spans[1].start_us


class TestDeterminism:
    def test_double_run_is_byte_identical(self):
        def run():
            server, loop, _ = build(CoalescingScheduler())
            extents = [server.allocate(4) for _ in range(6)]
            completions = [
                server.submit_put(extent, payload(extent, i))
                for i, extent in enumerate(extents)
            ]
            wait_all(loop, completions)
            reads = wait_all(
                loop, [server.submit_get(extent) for extent in extents]
            )
            return (
                server.clock.now_us,
                server.metrics.snapshot(),
                server.metrics.histogram_samples("disk_service.queue_wait_us"),
                [bytes(r) for r in reads],
            )

        assert run() == run()
