"""Property-based tests: bitmap/extent-table agreement under churn."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import DiskFullError
from repro.common.metrics import Metrics
from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap
from tests.conftest import build_disk_server


@st.composite
def operations(draw):
    """A churn schedule: allocate sizes / free earlier allocations."""
    n_ops = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            ops.append(("alloc", draw(st.integers(min_value=1, max_value=70))))
        else:
            ops.append(("free", draw(st.integers(min_value=0, max_value=1000))))
    return ops


class TestAllocatorProperties:
    @given(operations())
    @settings(max_examples=60, deadline=None)
    def test_extent_table_always_agrees_with_bitmap(self, ops):
        server = build_disk_server(SimClock(), Metrics())
        live = []
        for op, value in ops:
            if op == "alloc":
                try:
                    live.append(server.allocate(value))
                except DiskFullError:
                    pass
            elif live:
                extent = live.pop(value % len(live))
                server.free(extent)
        server.extent_table.check_against(server.bitmap)
        # Conservation: free + live == total.
        assert server.free_fragments + sum(e.length for e in live) == (
            server.n_fragments
        )

    @given(operations())
    @settings(max_examples=40, deadline=None)
    def test_live_extents_never_overlap(self, ops):
        server = build_disk_server(SimClock(), Metrics())
        live = []
        for op, value in ops:
            if op == "alloc":
                try:
                    live.append(server.allocate(value))
                except DiskFullError:
                    pass
            elif live:
                server.free(live.pop(value % len(live)))
        for i, a in enumerate(live):
            for b in live[i + 1 :]:
                assert not a.overlaps(b)

    @given(
        st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=40)
    )
    @settings(max_examples=40, deadline=None)
    def test_free_everything_returns_to_pristine(self, sizes):
        server = build_disk_server(SimClock(), Metrics())
        extents = []
        for size in sizes:
            try:
                extents.append(server.allocate(size))
            except DiskFullError:
                break
        for extent in extents:
            server.free(extent)
        assert server.free_fragments == server.n_fragments
        runs = list(server.bitmap.free_runs())
        assert runs == [Extent(0, server.n_fragments)]


class TestBitmapProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=499),
                st.integers(min_value=1, max_value=40),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_serialisation_round_trip(self, n_fragments, allocations):
        bitmap = FragmentBitmap(n_fragments)
        for start, length in allocations:
            extent = Extent(start % n_fragments, min(length, n_fragments))
            if extent.end <= n_fragments and bitmap.is_free_run(extent):
                bitmap.mark_allocated(extent)
        restored = FragmentBitmap.from_bytes(bitmap.to_bytes(), n_fragments)
        assert restored.free_count == bitmap.free_count
        assert list(restored.free_runs()) == list(bitmap.free_runs())

    @given(st.integers(min_value=2, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_free_runs_partition_free_space(self, n_fragments):
        bitmap = FragmentBitmap(n_fragments)
        bitmap.mark_allocated(Extent(n_fragments // 2, 1))
        runs = list(bitmap.free_runs())
        assert sum(run.length for run in runs) == bitmap.free_count
        for a, b in zip(runs, runs[1:]):
            assert a.end < b.start  # maximal runs are separated
