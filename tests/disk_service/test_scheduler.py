"""Disk-scheduling policies: FCFS, SCAN with aging, coalescing.

The SCAN no-starvation property is the headline: a pure elevator can
park a far-away request forever behind a hot cylinder, and the aging
bound is the contract that it cannot.  A hypothesis test drives the
scheduler with adversarial hot-cylinder streams and asserts no request
ever waits past ``aging_bound_us`` plus one in-flight service.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.disk_service.addresses import SECTORS_PER_FRAGMENT, Extent
from repro.disk_service.queue import DiskRequest, RequestQueue
from repro.disk_service.scheduler import (
    CoalescingScheduler,
    FcfsScheduler,
    ScanScheduler,
    make_scheduler,
)
from repro.disk_service.server import Source, Stability


def cylinder_of(sector: int) -> int:
    # One fragment per cylinder: a request at fragment f sits on
    # cylinder f, which keeps seek geometry legible in the tests.
    return sector // SECTORS_PER_FRAGMENT


def request(seq: int, fragment: int, *, at_us: int = 0, kind: str = "get",
            length: int = 1, **kwargs) -> DiskRequest:
    return DiskRequest(
        seq=seq,
        kind=kind,
        extent=Extent(fragment, length),
        enqueued_at_us=at_us,
        **kwargs,
    )


def take(scheduler, queue, *, head: int = 0, now: int = 0):
    return scheduler.take(
        queue, head_cylinder=head, now_us=now, cylinder_of=cylinder_of
    )


def fill(queue: RequestQueue, *requests: DiskRequest) -> None:
    for item in requests:
        queue.push(item)


class TestFcfs:
    def test_serves_in_arrival_order_regardless_of_position(self):
        queue = RequestQueue()
        fill(queue, request(1, 900), request(2, 0), request(3, 450))
        scheduler = FcfsScheduler()
        order = [take(scheduler, queue, head=0)[0].seq for _ in range(3)]
        assert order == [1, 2, 3]

    def test_batches_are_singletons(self):
        queue = RequestQueue()
        fill(queue, request(1, 0), request(2, 1))  # adjacent, still separate
        assert len(take(FcfsScheduler(), queue)) == 1


class TestScan:
    def test_serves_nearest_in_sweep_direction(self):
        queue = RequestQueue()
        fill(queue, request(1, 90), request(2, 10), request(3, 50))
        scheduler = ScanScheduler()
        # head at 40 sweeping up: 50, then 90; only then reverse to 10
        order = [take(scheduler, queue, head=40)[0].seq for _ in range(3)]
        assert order == [3, 1, 2]

    def test_reverses_when_nothing_ahead(self):
        queue = RequestQueue()
        fill(queue, request(1, 10), request(2, 30))
        scheduler = ScanScheduler()
        assert take(scheduler, queue, head=50)[0].seq == 2
        assert take(scheduler, queue, head=30)[0].seq == 1

    def test_equidistant_tie_breaks_by_seq(self):
        queue = RequestQueue()
        fill(queue, request(2, 60), request(1, 60))
        assert take(ScanScheduler(), queue, head=60)[0].seq == 1

    def test_aged_request_preempts_the_sweep(self):
        bound = 1_000
        queue = RequestQueue()
        fill(
            queue,
            request(1, 500, at_us=0),       # far away, but past the bound
            request(2, 10, at_us=bound),    # right under the head, fresh
        )
        scheduler = ScanScheduler(aging_bound_us=bound)
        assert take(scheduler, queue, head=10, now=bound)[0].seq == 1

    def test_oldest_aged_request_wins_among_several(self):
        bound = 100
        queue = RequestQueue()
        fill(queue, request(3, 5, at_us=0), request(1, 900, at_us=0))
        scheduler = ScanScheduler(aging_bound_us=bound)
        assert take(scheduler, queue, head=5, now=bound)[0].seq == 1

    def test_negative_aging_bound_rejected(self):
        with pytest.raises(ValueError):
            ScanScheduler(aging_bound_us=-1)


class TestScanNoStarvation:
    """The aging bound is a hard latency contract, not a heuristic."""

    @settings(max_examples=60, deadline=None)
    @given(
        bound=st.integers(min_value=100, max_value=5_000),
        service_us=st.integers(min_value=10, max_value=400),
        hot_cylinders=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=4
        ),
        far_fragment=st.integers(min_value=500, max_value=1_000),
        data=st.data(),
    )
    def test_wait_is_bounded_under_hot_cylinder_pressure(
        self, bound, service_us, hot_cylinders, far_fragment, data
    ):
        """An endless stream of hot-cylinder arrivals cannot starve any
        request.  Aging is only observed at service-selection time and
        the valve drains oldest-first, so the hard ceiling is the bound
        plus one service per request that can be queued ahead — with
        queue capacity Q, ``bound + Q * service``.  A pure elevator has
        no ceiling at all here: the far request would wait forever.
        """
        scheduler = ScanScheduler(aging_bound_us=bound)
        queue = RequestQueue()
        queue.push(request(0, far_fragment, at_us=0))
        capacity = 1 + len(hot_cylinders)
        ceiling = bound + capacity * service_us
        now, head, seq = 0, 0, 0
        # enough service slots for the far request to age and drain
        slots = ceiling // service_us + capacity + 2
        for _ in range(slots):
            # refill the hot set: new work arrives every service slot
            while len(queue) < capacity:
                seq += 1
                hot = data.draw(st.sampled_from(hot_cylinders))
                queue.push(request(seq, hot, at_us=now))
            batch = take(scheduler, queue, head=head, now=now)
            (served,) = batch
            assert served.wait_us(now) <= ceiling, (
                f"request {served.seq} starved: waited "
                f"{served.wait_us(now)}us against a {bound}us bound"
            )
            if served.seq == 0:
                return  # the far request got served within its ceiling
            head = cylinder_of(served.extent.first_sector)
            now += service_us
        raise AssertionError(f"far request never served in {slots} services")

    @settings(max_examples=100, deadline=None)
    @given(
        bound=st.integers(min_value=1, max_value=10_000),
        positions=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1_000),   # fragment
                st.integers(min_value=0, max_value=20_000),  # enqueue time
            ),
            min_size=1,
            max_size=8,
        ),
        head=st.integers(min_value=0, max_value=1_000),
        now=st.integers(min_value=0, max_value=40_000),
    )
    def test_any_aged_request_preempts_the_sweep(
        self, bound, positions, head, now
    ):
        """The valve mechanism itself: whenever *any* pending request
        has aged past the bound, selection ignores seek distance and
        returns the oldest aged request (minimum seq)."""
        pending = tuple(
            request(seq, fragment, at_us=min(at, now))
            for seq, (fragment, at) in enumerate(positions)
        )
        scheduler = ScanScheduler(aging_bound_us=bound)
        chosen = scheduler.select(
            pending, head_cylinder=head, now_us=now, cylinder_of=cylinder_of
        )
        aged = [r for r in pending if r.wait_us(now) >= bound]
        if aged:
            assert chosen.seq == min(r.seq for r in aged)

    def test_select_is_pure_with_respect_to_the_queue(self):
        queue = RequestQueue()
        fill(queue, request(1, 10), request(2, 20))
        scheduler = ScanScheduler()
        scheduler.select(
            queue.pending(), head_cylinder=0, now_us=0, cylinder_of=cylinder_of
        )
        assert len(queue) == 2


class TestCoalescing:
    def test_merges_adjacent_gets_into_one_batch(self):
        queue = RequestQueue()
        fill(queue, request(1, 10), request(2, 11), request(3, 12))
        batch = take(CoalescingScheduler(FcfsScheduler()), queue)
        assert [r.seq for r in batch] == [1, 2, 3]
        assert len(queue) == 0

    def test_extends_in_both_directions(self):
        queue = RequestQueue()
        fill(queue, request(1, 11), request(2, 12), request(3, 10))
        batch = take(CoalescingScheduler(FcfsScheduler()), queue)
        assert {r.seq for r in batch} == {1, 2, 3}

    def test_non_adjacent_requests_stay_queued(self):
        queue = RequestQueue()
        fill(queue, request(1, 10), request(2, 40))
        batch = take(CoalescingScheduler(FcfsScheduler()), queue)
        assert [r.seq for r in batch] == [1]
        assert len(queue) == 1

    def test_kinds_never_mix(self):
        queue = RequestQueue()
        fill(
            queue,
            request(1, 10, kind="put", data=b""),
            request(2, 11, kind="get"),
        )
        batch = take(CoalescingScheduler(FcfsScheduler()), queue)
        assert [r.seq for r in batch] == [1]

    def test_stable_bound_put_refuses_to_merge(self):
        queue = RequestQueue()
        fill(
            queue,
            request(1, 10, kind="put", data=b"", stability=Stability.ORIGINAL_ONLY),
            request(2, 11, kind="put", data=b"", stability=Stability.STABLE_ONLY),
        )
        batch = take(CoalescingScheduler(FcfsScheduler()), queue)
        assert [r.seq for r in batch] == [1]

    def test_stable_read_refuses_to_merge(self):
        queue = RequestQueue()
        fill(
            queue,
            request(1, 10, source=Source.STABLE),
            request(2, 11),
        )
        batch = take(CoalescingScheduler(FcfsScheduler()), queue)
        assert [r.seq for r in batch] == [1]

    def test_uncached_and_cached_gets_stay_apart(self):
        queue = RequestQueue()
        fill(queue, request(1, 10, use_cache=False), request(2, 11))
        batch = take(CoalescingScheduler(FcfsScheduler()), queue)
        assert [r.seq for r in batch] == [1]

    def test_batch_respects_max_batch(self):
        queue = RequestQueue()
        fill(queue, *(request(i, 10 + i - 1) for i in range(1, 9)))
        batch = take(CoalescingScheduler(FcfsScheduler(), max_batch=3), queue)
        assert len(batch) == 3

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError):
            CoalescingScheduler(max_batch=0)

    def test_name_reflects_the_inner_policy(self):
        assert CoalescingScheduler(ScanScheduler()).name == "scan+coalesce"


class TestFactory:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("fcfs", FcfsScheduler),
            ("scan", ScanScheduler),
            ("scan+coalesce", CoalescingScheduler),
        ],
    )
    def test_known_names(self, name, expected):
        scheduler = make_scheduler(name)
        assert isinstance(scheduler, expected)
        assert scheduler.name == name

    def test_aging_bound_reaches_the_elevator(self):
        scheduler = make_scheduler("scan+coalesce", aging_bound_us=123)
        assert scheduler.inner.aging_bound_us == 123

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown disk scheduler"):
            make_scheduler("sstf")
