"""Extents: the fragment-granularity addressing unit."""

import pytest

from repro.common.errors import BadAddressError
from repro.disk_service.addresses import Extent


class TestConstruction:
    def test_bounds(self):
        extent = Extent(10, 5)
        assert extent.end == 15
        assert extent.byte_size == 5 * 2048
        assert extent.first_sector == 40
        assert extent.n_sectors == 20

    def test_whole_blocks(self):
        assert Extent(0, 4).whole_blocks == 1
        assert Extent(0, 7).whole_blocks == 1
        assert Extent(0, 8).whole_blocks == 2
        assert Extent(0, 3).whole_blocks == 0

    def test_invalid_rejected(self):
        with pytest.raises(BadAddressError):
            Extent(-1, 1)
        with pytest.raises(BadAddressError):
            Extent(0, 0)

    def test_for_block_run(self):
        extent = Extent.for_block_run(12, 3)
        assert extent.start == 12
        assert extent.length == 12
        assert extent.whole_blocks == 3

    def test_ordering(self):
        assert Extent(1, 2) < Extent(2, 1)


class TestRelations:
    def test_contains(self):
        assert Extent(0, 10).contains(Extent(2, 3))
        assert Extent(0, 10).contains(Extent(0, 10))
        assert not Extent(0, 10).contains(Extent(8, 5))

    def test_overlaps(self):
        assert Extent(0, 5).overlaps(Extent(4, 5))
        assert not Extent(0, 5).overlaps(Extent(5, 5))

    def test_adjacent(self):
        assert Extent(0, 5).adjacent_to(Extent(5, 2))
        assert Extent(5, 2).adjacent_to(Extent(0, 5))
        assert not Extent(0, 5).adjacent_to(Extent(6, 2))


class TestSubdivision:
    def test_split(self):
        prefix, rest = Extent(10, 6).split(2)
        assert prefix == Extent(10, 2)
        assert rest == Extent(12, 4)

    def test_split_bounds(self):
        with pytest.raises(BadAddressError):
            Extent(0, 4).split(4)
        with pytest.raises(BadAddressError):
            Extent(0, 4).split(0)

    def test_take(self):
        assert Extent(7, 5).take(3) == Extent(7, 3)
        assert Extent(7, 5).take(5) == Extent(7, 5)
        with pytest.raises(BadAddressError):
            Extent(7, 5).take(6)

    def test_merge(self):
        assert Extent(0, 3).merge(Extent(3, 2)) == Extent(0, 5)
        assert Extent(3, 2).merge(Extent(0, 3)) == Extent(0, 5)
        with pytest.raises(BadAddressError):
            Extent(0, 3).merge(Extent(4, 2))

    def test_slice_bytes(self):
        outer = Extent(10, 4)
        data = bytes(range(256)) * 32  # 8192 bytes
        inner = Extent(11, 2)
        assert outer.slice_bytes(data, inner) == data[2048 : 3 * 2048]
        with pytest.raises(BadAddressError):
            outer.slice_bytes(data, Extent(9, 1))

    def test_fragments_iteration(self):
        assert list(Extent(3, 3).fragments()) == [3, 4, 5]
