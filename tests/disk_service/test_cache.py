"""The track cache: rest-of-track readahead, LRU, write-through."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import SectorAlignmentError
from repro.common.metrics import Metrics
from repro.disk_service.cache import TrackCache
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry


def build(readahead=True, capacity_tracks=4):
    clock = SimClock()
    metrics = Metrics()
    disk = SimDisk("t", DiskGeometry(cylinders=8, heads=2, sectors_per_track=16),
                   clock, metrics)
    cache = TrackCache(
        disk, metrics, capacity_tracks=capacity_tracks, readahead=readahead,
        name="cache",
    )
    return cache, disk, metrics


class TestReadPath:
    def test_miss_then_hit(self):
        cache, disk, metrics = build()
        disk.write_sectors(0, b"\x01" * 512 * 2)
        assert cache.read(0, 2) == b"\x01" * 1024
        refs = metrics.get("disk.t.references")
        assert cache.read(0, 2) == b"\x01" * 1024  # hit: no new reference
        assert metrics.get("disk.t.references") == refs
        assert metrics.get("cache.hits") == 1
        assert metrics.get("cache.misses") == 1

    def test_readahead_caches_rest_of_track(self):
        """Paper section 4: the disk service caches the rest of the data
        from the same track to satisfy subsequent requests."""
        cache, disk, metrics = build()
        disk.write_sectors(0, bytes(range(16)) * 512)
        cache.read(0, 2)  # miss: sectors 0-1 read, 2-15 cached in passing
        refs = metrics.get("disk.t.references")
        cache.read(4, 4)  # same track: must be a hit
        assert metrics.get("disk.t.references") == refs
        assert metrics.get("cache.hits") == 1

    def test_no_readahead_means_next_sectors_miss(self):
        cache, disk, metrics = build(readahead=False)
        cache.read(0, 2)
        refs = metrics.get("disk.t.references")
        cache.read(4, 4)
        assert metrics.get("disk.t.references") == refs + 1

    def test_request_at_track_end_has_nothing_to_readahead(self):
        cache, disk, metrics = build()
        cache.read(14, 2)  # last two sectors of track 0
        assert metrics.get("disk.t.readahead_sectors") == 0

    def test_cross_track_read(self):
        cache, disk, _ = build()
        disk.write_sectors(14, b"\x05" * 512 * 4)  # spans track 0 -> 1
        assert cache.read(14, 4) == b"\x05" * 2048

    def test_partial_hit_fetches_only_missing(self):
        cache, disk, metrics = build(readahead=False)
        cache.read(0, 2)
        refs = metrics.get("disk.t.references")
        cache.read(0, 4)  # sectors 0-1 cached, 2-3 not: one more reference
        assert metrics.get("disk.t.references") == refs + 1


class TestWritePath:
    def test_write_through_updates_disk_and_cache(self):
        cache, disk, metrics = build()
        cache.read(0, 2)
        cache.write_through(0, b"\x09" * 512)
        assert disk.read_sectors(0, 1) == b"\x09" * 512
        refs = metrics.get("disk.t.references")
        assert cache.read(0, 1) == b"\x09" * 512  # cached copy refreshed
        assert metrics.get("disk.t.references") == refs

    def test_misaligned_write_is_rejected(self):
        """Regression: a non-sector-multiple payload used to have its
        tail silently dropped by the disk while the cache kept the full
        buffer — later reads returned bytes that were never on disk."""
        cache, disk, metrics = build()
        with pytest.raises(SectorAlignmentError):
            cache.write_through(0, b"\x07" * 700)

    def test_misaligned_write_leaves_disk_and_cache_untouched(self):
        cache, disk, metrics = build()
        disk.write_sectors(0, b"\x01" * 512)
        cache.read(0, 1)
        with pytest.raises(SectorAlignmentError):
            cache.write_through(0, b"\x07" * (512 + 9))
        assert disk.read_sectors(0, 1) == b"\x01" * 512
        assert cache.read(0, 1) == b"\x01" * 512  # no stale suffix cached

    def test_empty_write_is_rejected(self):
        cache, disk, metrics = build()
        with pytest.raises(SectorAlignmentError):
            cache.write_through(0, b"")

    def test_aligned_write_still_accepted(self):
        cache, disk, metrics = build()
        cache.write_through(2, b"\x08" * 1024)
        assert disk.read_sectors(2, 2) == b"\x08" * 1024


class TestEviction:
    def test_lru_eviction_by_track(self):
        cache, disk, metrics = build(readahead=False, capacity_tracks=2)
        cache.read(0, 1)  # track 0
        cache.read(16, 1)  # track 1
        cache.read(32, 1)  # track 2: evicts track 0
        assert metrics.get("cache.evictions") == 1
        refs = metrics.get("disk.t.references")
        cache.read(0, 1)  # track 0 must miss again
        assert metrics.get("disk.t.references") == refs + 1

    def test_touch_refreshes_lru(self):
        cache, disk, metrics = build(readahead=False, capacity_tracks=2)
        cache.read(0, 1)
        cache.read(16, 1)
        cache.read(0, 1)  # touch track 0
        cache.read(32, 1)  # evicts track 1, not 0
        refs = metrics.get("disk.t.references")
        cache.read(0, 1)
        assert metrics.get("disk.t.references") == refs  # still cached

    def test_invalidate(self):
        cache, disk, metrics = build()
        cache.read(0, 2)
        cache.invalidate()
        assert cache.cached_sector_count() == 0
        refs = metrics.get("disk.t.references")
        cache.read(0, 2)
        assert metrics.get("disk.t.references") == refs + 1
