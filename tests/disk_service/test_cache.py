"""The track cache: rest-of-track readahead, LRU, write-through."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ChecksumError, SectorAlignmentError
from repro.common.metrics import Metrics
from repro.disk_service.cache import TrackCache
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from tests.conftest import build_disk_server


def build(readahead=True, capacity_tracks=4):
    clock = SimClock()
    metrics = Metrics()
    disk = SimDisk("t", DiskGeometry(cylinders=8, heads=2, sectors_per_track=16),
                   clock, metrics)
    cache = TrackCache(
        disk, metrics, capacity_tracks=capacity_tracks, readahead=readahead,
        name="cache",
    )
    return cache, disk, metrics


class TestReadPath:
    def test_miss_then_hit(self):
        cache, disk, metrics = build()
        disk.write_sectors(0, b"\x01" * 512 * 2)
        assert cache.read(0, 2) == b"\x01" * 1024
        refs = metrics.get("disk.t.references")
        assert cache.read(0, 2) == b"\x01" * 1024  # hit: no new reference
        assert metrics.get("disk.t.references") == refs
        assert metrics.get("cache.hits") == 1
        assert metrics.get("cache.misses") == 1

    def test_readahead_caches_rest_of_track(self):
        """Paper section 4: the disk service caches the rest of the data
        from the same track to satisfy subsequent requests."""
        cache, disk, metrics = build()
        disk.write_sectors(0, bytes(range(16)) * 512)
        cache.read(0, 2)  # miss: sectors 0-1 read, 2-15 cached in passing
        refs = metrics.get("disk.t.references")
        cache.read(4, 4)  # same track: must be a hit
        assert metrics.get("disk.t.references") == refs
        assert metrics.get("cache.hits") == 1

    def test_no_readahead_means_next_sectors_miss(self):
        cache, disk, metrics = build(readahead=False)
        cache.read(0, 2)
        refs = metrics.get("disk.t.references")
        cache.read(4, 4)
        assert metrics.get("disk.t.references") == refs + 1

    def test_request_at_track_end_has_nothing_to_readahead(self):
        cache, disk, metrics = build()
        cache.read(14, 2)  # last two sectors of track 0
        assert metrics.get("disk.t.readahead_sectors") == 0

    def test_cross_track_read(self):
        cache, disk, _ = build()
        disk.write_sectors(14, b"\x05" * 512 * 4)  # spans track 0 -> 1
        assert cache.read(14, 4) == b"\x05" * 2048

    def test_partial_hit_fetches_only_missing(self):
        cache, disk, metrics = build(readahead=False)
        cache.read(0, 2)
        refs = metrics.get("disk.t.references")
        cache.read(0, 4)  # sectors 0-1 cached, 2-3 not: one more reference
        assert metrics.get("disk.t.references") == refs + 1


class TestWritePath:
    def test_write_through_updates_disk_and_cache(self):
        cache, disk, metrics = build()
        cache.read(0, 2)
        cache.write_through(0, b"\x09" * 512)
        assert disk.read_sectors(0, 1) == b"\x09" * 512
        refs = metrics.get("disk.t.references")
        assert cache.read(0, 1) == b"\x09" * 512  # cached copy refreshed
        assert metrics.get("disk.t.references") == refs

    def test_misaligned_write_is_rejected(self):
        """Regression: a non-sector-multiple payload used to have its
        tail silently dropped by the disk while the cache kept the full
        buffer — later reads returned bytes that were never on disk."""
        cache, disk, metrics = build()
        with pytest.raises(SectorAlignmentError):
            cache.write_through(0, b"\x07" * 700)

    def test_misaligned_write_leaves_disk_and_cache_untouched(self):
        cache, disk, metrics = build()
        disk.write_sectors(0, b"\x01" * 512)
        cache.read(0, 1)
        with pytest.raises(SectorAlignmentError):
            cache.write_through(0, b"\x07" * (512 + 9))
        assert disk.read_sectors(0, 1) == b"\x01" * 512
        assert cache.read(0, 1) == b"\x01" * 512  # no stale suffix cached

    def test_empty_write_is_rejected(self):
        cache, disk, metrics = build()
        with pytest.raises(SectorAlignmentError):
            cache.write_through(0, b"")

    def test_aligned_write_still_accepted(self):
        cache, disk, metrics = build()
        cache.write_through(2, b"\x08" * 1024)
        assert disk.read_sectors(2, 2) == b"\x08" * 1024


class TestEviction:
    def test_lru_eviction_by_track(self):
        cache, disk, metrics = build(readahead=False, capacity_tracks=2)
        cache.read(0, 1)  # track 0
        cache.read(16, 1)  # track 1
        cache.read(32, 1)  # track 2: evicts track 0
        assert metrics.get("cache.evictions") == 1
        refs = metrics.get("disk.t.references")
        cache.read(0, 1)  # track 0 must miss again
        assert metrics.get("disk.t.references") == refs + 1

    def test_touch_refreshes_lru(self):
        cache, disk, metrics = build(readahead=False, capacity_tracks=2)
        cache.read(0, 1)
        cache.read(16, 1)
        cache.read(0, 1)  # touch track 0
        cache.read(32, 1)  # evicts track 1, not 0
        refs = metrics.get("disk.t.references")
        cache.read(0, 1)
        assert metrics.get("disk.t.references") == refs  # still cached

    def test_invalidate(self):
        cache, disk, metrics = build()
        cache.read(0, 2)
        cache.invalidate()
        assert cache.cached_sector_count() == 0
        refs = metrics.get("disk.t.references")
        cache.read(0, 2)
        assert metrics.get("disk.t.references") == refs + 1


class TestVerificationDrops:
    """PR 6: a checksum-failed block must never live in (or be served
    from) the track cache — companion to the alignment regressions
    above, which defend the same invariant for the write path."""

    def _rotten_server(self):
        metrics = Metrics()
        server = build_disk_server(SimClock(), metrics)
        extent = server.allocate(1)
        server.put(extent, b"\xaa" * extent.byte_size)
        server.cache.invalidate()  # force the next read to hit the platter
        server.disk.corrupt_at(extent.first_sector, 100, 0x0F)
        return server, extent, metrics

    def test_failed_read_does_not_leave_corrupt_sectors_cached(self):
        server, extent, metrics = self._rotten_server()
        with pytest.raises(ChecksumError):
            server.get(extent)  # cached-path read: misses, fetches rot
        # The miss stored the rotten track before verification could
        # run; the failure path must have dropped those sectors again.
        cache_name = f"disk_cache.{server.disk.disk_id}"
        assert metrics.get(f"{cache_name}.verification_drops") >= extent.n_sectors
        with pytest.raises(ChecksumError):
            server.get(extent)
        # Two loud failures, zero serves from cache: each attempt had
        # to re-read the platter (a miss), never a poisoned hit.
        assert metrics.get(f"{cache_name}.hits") == 0

    def test_repair_after_failure_serves_clean_bytes_from_cache(self):
        server, extent, metrics = self._rotten_server()
        with pytest.raises(ChecksumError):
            server.get(extent)
        fresh = b"\xbb" * extent.byte_size
        server.put(extent, fresh)  # rewrite re-seals the checksum
        assert server.get(extent) == fresh  # miss: dropped sectors re-read
        refs = metrics.get(f"disk.{server.disk.disk_id}.references")
        assert server.get(extent) == fresh  # now a clean cache hit
        assert metrics.get(f"disk.{server.disk.disk_id}.references") == refs

    def test_bypass_read_also_drops_poisoned_cache_entries(self):
        """A ``use_cache=False`` read (the scrubber's) that fails its
        checksum must still evict any stale copy the cache holds."""
        server, extent, metrics = self._rotten_server()
        cache = server.cache
        # Simulate an earlier miss having cached the rotten sectors.
        cache.read(extent.first_sector, extent.n_sectors)
        assert cache.cached_sector_count() > 0
        with pytest.raises(ChecksumError):
            server.get(extent, use_cache=False)
        probe = cache._all_cached(extent.first_sector, extent.n_sectors)
        assert not probe
