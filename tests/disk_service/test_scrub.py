"""The background scrubber: detection, local repair, and the idle gate."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ChecksumError
from repro.common.metrics import Metrics
from repro.disk_service.addresses import Extent
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scrub import Scrubber
from repro.disk_service.server import Stability
from repro.simkernel.loop import EventLoop
from tests.conftest import build_disk_server


@pytest.fixture
def server(clock, metrics):
    return build_disk_server(clock, metrics)


def fill(server, n_fragments=4, *, stability=Stability.ORIGINAL_ONLY):
    extent = server.allocate(n_fragments)
    payload = bytes(
        (index * 29 + 11) % 251 + 1 for index in range(extent.byte_size)
    )
    server.put(extent, payload, stability=stability)
    return extent, payload


class TestCleanWalk:
    def test_clean_cycle_finds_nothing(self, server, metrics):
        extent, _ = fill(server)
        scrubber = Scrubber(server)
        assert scrubber.run_cycle() == []
        assert scrubber.cycles_completed == 1
        assert metrics.get("scrub.0.fragments_verified") == extent.length
        assert metrics.get("scrub.0.cycles") == 1

    def test_cursor_wraps_for_repeated_cycles(self, server):
        fill(server)
        scrubber = Scrubber(server, fragments_per_step=1000)
        scrubber.run_cycle()
        scrubber.run_cycle()
        assert scrubber.cycles_completed == 2

    def test_free_and_unchecksummed_fragments_are_skipped(self, server, metrics):
        extent, _ = fill(server)
        server.free(extent)
        Scrubber(server).run_cycle()
        assert metrics.get("scrub.0.fragments_verified") == 0


class TestDetection:
    def test_rot_on_plain_fragment_is_reported_not_repaired(self, server):
        extent, _ = fill(server)
        server.disk.corrupt_sectors(extent.first_sector, 1)
        reported = []
        scrubber = Scrubber(server, on_corruption=reported.append)
        [finding] = scrubber.run_cycle()
        assert finding.kind == "checksum"
        assert finding.extent == Extent(extent.start, 1)
        assert not finding.repaired
        assert reported == [finding]
        # No redundancy to repair from: the fragment stays loud.
        with pytest.raises(ChecksumError):
            server.get(Extent(extent.start, 1), use_cache=False)

    def test_latent_media_error_is_reported(self, server):
        extent, _ = fill(server)
        server.disk.faults.schedule_media_error(extent.first_sector)
        reported = []
        [finding] = Scrubber(server, on_corruption=reported.append).run_cycle()
        assert finding.kind == "media"
        assert not finding.repaired
        assert reported == [finding]

    def test_report_only_mode_never_writes(self, server, metrics):
        extent, _ = fill(server, stability=Stability.BOTH)
        server.disk.corrupt_sectors(extent.first_sector, 1)
        findings = Scrubber(server, repair=False).run_cycle()
        assert findings and not any(finding.repaired for finding in findings)
        assert metrics.get("disk_server.0.stable_repairs") == 0


class TestMirroredRepair:
    def test_diverged_mirror_is_repaired_from_stable(self, server, metrics):
        extent, payload = fill(server, stability=Stability.BOTH)
        server.disk.corrupt_sectors(extent.first_sector, 1)
        findings = Scrubber(server).run_cycle()
        assert any(
            finding.kind == "mirror-divergence" and finding.repaired
            for finding in findings
        )
        assert metrics.get("scrub.0.repairs") >= 1
        assert metrics.get("disk_server.0.stable_repairs") == 1
        assert server.get(extent, use_cache=False) == payload

    def test_unreadable_mirror_is_rewritten_and_healed(self, server):
        """A latent media error under a mirrored extent heals because
        the repair is a rewrite — the drive remaps the sector."""
        extent, payload = fill(server, stability=Stability.BOTH)
        server.disk.faults.schedule_media_error(extent.first_sector + 1)
        findings = Scrubber(server).run_cycle()
        assert any(finding.repaired for finding in findings)
        assert server.disk.faults.latent_media_errors == 0
        assert server.get(extent, use_cache=False) == payload

    def test_repaired_fault_not_routed_to_callback(self, server):
        """Locally repairable faults stay local: the replication hook
        only hears about corruption the volume cannot fix itself."""
        extent, _ = fill(server, stability=Stability.BOTH)
        server.disk.corrupt_sectors(extent.first_sector, 1)
        reported = []
        Scrubber(server, on_corruption=reported.append).run_cycle()
        assert reported == []


class TestIdleGate:
    def _pipelined(self, clock, metrics):
        server = build_disk_server(clock, metrics)
        extent, payload = fill(server)
        loop = EventLoop(clock)
        DiskPipeline(server, loop, None)
        return server, extent, loop

    def test_step_yields_while_foreground_pending(self, clock, metrics):
        server, extent, loop = self._pipelined(clock, metrics)
        completion = server.submit_get(Extent(extent.start, 1), use_cache=False)
        scrubber = Scrubber(server)
        assert scrubber.step() == []
        assert metrics.get("scrub.0.steps_yielded") == 1
        assert metrics.get("scrub.0.fragments_verified") == 0
        loop.run_until(lambda: completion.done)
        scrubber.step()
        assert metrics.get("scrub.0.fragments_verified") >= 1

    def test_force_overrides_the_gate(self, clock, metrics):
        server, extent, loop = self._pipelined(clock, metrics)
        completion = server.submit_get(Extent(extent.start, 1), use_cache=False)
        Scrubber(server, fragments_per_step=server.n_fragments).step(force=True)
        assert metrics.get("scrub.0.fragments_verified") == extent.length
        assert completion.done  # waiting on scrub reads drained the queue

    def test_pipelined_scrub_reads_go_through_the_queue(self, clock, metrics):
        server, extent, loop = self._pipelined(clock, metrics)
        before = metrics.get("disk_server.0.submissions")
        Scrubber(server, fragments_per_step=server.n_fragments).run_cycle()
        assert metrics.get("disk_server.0.submissions") >= before + extent.length

    def test_step_budget_bounds_one_burst(self, clock, metrics):
        server = build_disk_server(clock, metrics)
        fill(server, n_fragments=8)
        scrubber = Scrubber(server, fragments_per_step=3)
        scrubber.step(force=True)
        assert metrics.get("scrub.0.fragments_verified") == 3

    def test_budget_validation(self, server):
        with pytest.raises(ValueError):
            Scrubber(server, fragments_per_step=0)
