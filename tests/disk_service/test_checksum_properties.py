"""Property-based tests: checksums make corruption loud, never silent.

The PR 6 contract (DESIGN.md §11): for any payload and any schedule of
at-rest byte flips, ``get`` either returns the exact original bytes or
raises :class:`~repro.common.errors.ChecksumError` — it never hands a
caller silently wrong data.  Hypothesis drives arbitrary payloads and
flip schedules; note the flips themselves are XOR, so a schedule may
legitimately cancel itself out (same offset, same mask, twice), which
is exactly why the property is "right bytes or an error", not "always
an error".
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import ChecksumError
from repro.common.metrics import Metrics
from tests.conftest import build_disk_server

_FRAGMENT = 2048  # Extent(0, 1).byte_size
_SECTOR = 512


def _tile(pattern: bytes, size: int) -> bytes:
    """Expand a short generated pattern to an exact payload size.

    Keeping the *generated* example small (a seed pattern, not 2 KB of
    raw bytes) is what lets Hypothesis shrink failures usefully.
    """
    return (pattern * (size // len(pattern) + 1))[:size]


def _payloads(max_size: int = 32):
    return st.binary(min_size=1, max_size=max_size)


@st.composite
def payload_and_flips(draw):
    """An extent payload plus an at-rest bit-flip schedule over it."""
    n_fragments = draw(st.integers(min_value=1, max_value=3))
    payload = _tile(draw(_payloads()), n_fragments * _FRAGMENT)
    flips = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_fragments * _FRAGMENT - 1),
                st.integers(min_value=1, max_value=0xFF),
            ),
            max_size=6,
        )
    )
    return n_fragments, payload, flips


class TestChecksumProperties:
    @given(payload_and_flips())
    @settings(max_examples=60, deadline=None)
    def test_get_returns_original_bytes_or_raises(self, case):
        n_fragments, payload, flips = case
        server = build_disk_server(SimClock(), Metrics())
        extent = server.allocate(n_fragments)
        server.put(extent, payload)
        for byte_index, mask in flips:
            server.disk.corrupt_at(
                extent.first_sector + byte_index // _SECTOR,
                byte_index % _SECTOR,
                mask,
            )
        try:
            result = server.get(extent, use_cache=False)
        except ChecksumError:
            return  # loud failure: the acceptable outcome
        assert result == payload  # the only acceptable silent outcome

    @given(
        _payloads(),
        st.integers(min_value=0, max_value=_FRAGMENT - 1),
        st.integers(min_value=1, max_value=0xFF),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_flip_is_always_detected(self, pattern, byte_index, mask):
        """One real bit flip can never slip past CRC-32."""
        payload = _tile(pattern, _FRAGMENT)
        server = build_disk_server(SimClock(), Metrics())
        extent = server.allocate(1)
        server.put(extent, payload)
        server.disk.corrupt_at(
            extent.first_sector + byte_index // _SECTOR, byte_index % _SECTOR, mask
        )
        try:
            result = server.get(extent, use_cache=False)
        except ChecksumError:
            return
        raise AssertionError(
            f"silently served {'wrong' if result != payload else 'stale'} bytes "
            f"after flipping byte {byte_index} with mask 0x{mask:02x}"
        )

    @given(
        _payloads(),
        _payloads(),
        st.integers(min_value=0, max_value=_FRAGMENT - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_rewrite_heals_rotten_fragment(self, first, second, byte_index):
        """Overwriting rot re-seals the checksum at the new bytes."""
        before, after = _tile(first, _FRAGMENT), _tile(second, _FRAGMENT)
        server = build_disk_server(SimClock(), Metrics())
        extent = server.allocate(1)
        server.put(extent, before)
        server.disk.corrupt_at(
            extent.first_sector + byte_index // _SECTOR, byte_index % _SECTOR, 0x5A
        )
        server.put(extent, after)
        assert server.get(extent, use_cache=False) == after
