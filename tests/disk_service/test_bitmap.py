"""The fragment bitmap: the authoritative free-space record."""

import pytest

from repro.common.errors import BadAddressError
from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap


class TestBasics:
    def test_starts_all_free(self):
        bitmap = FragmentBitmap(100)
        assert bitmap.free_count == 100
        assert bitmap.is_free(0)
        assert bitmap.is_free(99)

    def test_starts_all_allocated(self):
        bitmap = FragmentBitmap(100, all_free=False)
        assert bitmap.free_count == 0

    def test_non_multiple_of_eight(self):
        bitmap = FragmentBitmap(13)
        assert bitmap.free_count == 13
        bitmap.mark_allocated(Extent(0, 13))
        assert bitmap.free_count == 0

    def test_allocate_and_free(self):
        bitmap = FragmentBitmap(64)
        bitmap.mark_allocated(Extent(10, 4))
        assert bitmap.free_count == 60
        assert not bitmap.is_free(10)
        assert not bitmap.is_free(13)
        assert bitmap.is_free(14)
        bitmap.mark_free(Extent(10, 4))
        assert bitmap.free_count == 64

    def test_double_allocate_rejected(self):
        bitmap = FragmentBitmap(32)
        bitmap.mark_allocated(Extent(0, 4))
        with pytest.raises(BadAddressError):
            bitmap.mark_allocated(Extent(2, 4))

    def test_double_free_rejected(self):
        bitmap = FragmentBitmap(32)
        with pytest.raises(BadAddressError):
            bitmap.mark_free(Extent(0, 1))

    def test_out_of_range(self):
        bitmap = FragmentBitmap(16)
        with pytest.raises(BadAddressError):
            bitmap.is_free(16)


class TestRuns:
    @pytest.fixture
    def holey(self):
        """free: [0,3) alloc [3,5) free [5,12) alloc [12,13) free [13,16)."""
        bitmap = FragmentBitmap(16)
        bitmap.mark_allocated(Extent(3, 2))
        bitmap.mark_allocated(Extent(12, 1))
        return bitmap

    def test_run_length_at(self, holey):
        assert holey.run_length_at(0) == 3
        assert holey.run_length_at(3) == 0
        assert holey.run_length_at(5) == 7
        assert holey.run_length_at(13) == 3

    def test_run_containing(self, holey):
        assert holey.run_containing(7) == Extent(5, 7)
        assert holey.run_containing(0) == Extent(0, 3)
        assert holey.run_containing(3) is None

    def test_free_runs_scan(self, holey):
        assert list(holey.free_runs()) == [Extent(0, 3), Extent(5, 7), Extent(13, 3)]

    def test_free_runs_full_disk(self):
        assert list(FragmentBitmap(8).free_runs()) == [Extent(0, 8)]

    def test_free_runs_empty_disk(self):
        assert list(FragmentBitmap(8, all_free=False).free_runs()) == []

    def test_find_free_run(self, holey):
        assert holey.find_free_run(4) == Extent(5, 7)
        assert holey.find_free_run(3) == Extent(0, 3)
        assert holey.find_free_run(8) is None

    def test_is_free_run(self, holey):
        assert holey.is_free_run(Extent(5, 7))
        assert not holey.is_free_run(Extent(2, 3))

    def test_is_allocated_run(self, holey):
        assert holey.is_allocated_run(Extent(3, 2))
        assert not holey.is_allocated_run(Extent(2, 3))


class TestPersistence:
    def test_round_trip(self):
        bitmap = FragmentBitmap(40)
        bitmap.mark_allocated(Extent(7, 9))
        restored = FragmentBitmap.from_bytes(bitmap.to_bytes(), 40)
        assert restored.free_count == bitmap.free_count
        assert list(restored.free_runs()) == list(bitmap.free_runs())

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FragmentBitmap.from_bytes(b"\xff", 40)
