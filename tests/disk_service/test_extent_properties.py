"""Property tests: free-space management vs a brute-force model.

The disk server's pairing of fragment bitmap and 64x64 free-extent
array is fuzzed with arbitrary allocate/free interleavings and checked
after every operation against a brute-force model (a plain set of
allocated fragment numbers):

* the bitmap agrees with the model fragment-for-fragment;
* every extent-array entry is a maximal free run of the bitmap
  (:meth:`FreeExtentTable.check_against`);
* allocations never overlap live extents, contiguous requests return
  contiguous runs, and ``DiskFullError`` is only raised when the model
  confirms no adequate contiguous run exists.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import DiskFullError
from repro.common.metrics import Metrics
from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap
from repro.disk_service.extent_table import FreeExtentTable
from repro.disk_service.server import DiskServer
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore

#: 8 cylinders x 2 heads x 64 sectors = 512 KB = 256 fragments: small
#: enough that the brute-force model is cheap to compare exhaustively.
_TINY = DiskGeometry(cylinders=8, heads=2, sectors_per_track=64)


def build_server() -> DiskServer:
    clock, metrics = SimClock(), Metrics()
    disk = SimDisk("fuzz", _TINY, clock, metrics)
    stable = StableStore(
        SimDisk("fuzz.stable_a", DiskGeometry.small(), clock, metrics),
        SimDisk("fuzz.stable_b", DiskGeometry.small(), clock, metrics),
    )
    return DiskServer(disk, stable, clock, metrics, cache_tracks=0)


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["alloc", "alloc", "alloc_scatter", "alloc_at", "free", "free"]
            )
        )
        size = draw(st.integers(min_value=1, max_value=48))
        start = draw(st.integers(min_value=0, max_value=255))
        victim = draw(st.integers(min_value=0, max_value=10**6))
        scratch = draw(st.booleans())
        ops.append((kind, size, start, victim, scratch))
    return ops


def _max_free_run(allocated: set[int], n_fragments: int) -> int:
    best = run = 0
    for fragment in range(n_fragments):
        run = 0 if fragment in allocated else run + 1
        best = max(best, run)
    return best


class TestFreeSpaceFuzz:
    @given(op_sequences())
    @settings(max_examples=80, deadline=None)
    def test_interleaved_allocate_free_matches_model(self, ops):
        server = build_server()
        n = server.n_fragments
        allocated: set[int] = set()  # the brute-force model
        live: list[Extent] = []
        for kind, size, start, victim, scratch in ops:
            if kind == "alloc":
                try:
                    extent = server.allocate(size, scratch=scratch)
                except DiskFullError:
                    assert _max_free_run(allocated, n) < size, (
                        f"DiskFullError for {size} fragments but the model "
                        f"has a run of {_max_free_run(allocated, n)}"
                    )
                    continue
                span = set(range(extent.start, extent.end))
                assert extent.length == size
                assert not span & allocated, "allocation overlaps live data"
                allocated |= span
                live.append(extent)
            elif kind == "alloc_scatter":
                try:
                    pieces = server.allocate(size, contiguous=False)
                except DiskFullError:
                    assert n - len(allocated) < size
                    continue
                total = 0
                for piece in pieces:
                    span = set(range(piece.start, piece.end))
                    assert not span & allocated
                    allocated |= span
                    live.append(piece)
                    total += piece.length
                assert total == size
            elif kind == "alloc_at":
                extent = server.try_allocate_at(start, size)
                range_free = start + size <= n and not (
                    set(range(start, start + size)) & allocated
                )
                assert (extent is not None) == range_free
                if extent is not None:
                    allocated |= set(range(extent.start, extent.end))
                    live.append(extent)
            else:  # free
                if not live:
                    continue
                extent = live.pop(victim % len(live))
                server.free(extent)
                allocated -= set(range(extent.start, extent.end))
            # The invariants, after every single operation.
            assert server.bitmap.free_count == n - len(allocated)
            server.extent_table.check_against(server.bitmap)
        # Full fragment-for-fragment reconciliation at the end.
        for fragment in range(n):
            assert server.bitmap.is_free(fragment) == (
                fragment not in allocated
            ), f"bitmap and model disagree at fragment {fragment}"

    @given(op_sequences())
    @settings(max_examples=40, deadline=None)
    def test_refill_reindexes_every_maximal_run(self, ops):
        """A refill from any reachable bitmap state indexes exactly the
        maximal free runs (up to row capacity)."""
        server = build_server()
        live: list[Extent] = []
        for kind, size, start, victim, scratch in ops:
            try:
                if kind in ("alloc", "alloc_scatter"):
                    result = server.allocate(
                        size, contiguous=(kind == "alloc"), scratch=scratch
                    )
                    live.extend([result] if isinstance(result, Extent) else result)
                elif kind == "alloc_at":
                    extent = server.try_allocate_at(start, size)
                    if extent is not None:
                        live.append(extent)
                elif live:
                    server.free(live.pop(victim % len(live)))
            except DiskFullError:
                continue
        table = FreeExtentTable(64, 64)
        table.refill(server.bitmap)
        table.check_against(server.bitmap)
        indexed = table.entry_count()
        true_runs = sum(1 for _ in server.bitmap.free_runs())
        assert indexed == min(true_runs, indexed)  # capacity may truncate
        if true_runs <= 64:  # no row can overflow with so few runs
            assert indexed == true_runs


class TestBitmapModel:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=250),
                st.integers(min_value=1, max_value=6),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mark_roundtrip_and_run_lengths(self, marks):
        bitmap = FragmentBitmap(256)
        model = set()
        for start, length, alloc in marks:
            length = min(length, 256 - start)
            if length <= 0:
                continue
            span = set(range(start, start + length))
            # The bitmap rejects double-allocate and double-free, so only
            # legal transitions are issued (matching real caller usage).
            if alloc and not (span & model):
                bitmap.mark_allocated(Extent(start, length))
                model |= span
            elif not alloc and span <= model:
                bitmap.mark_free(Extent(start, length))
                model -= span
        for fragment in range(256):
            assert bitmap.is_free(fragment) == (fragment not in model)
        for run in bitmap.free_runs():
            assert all(f not in model for f in range(run.start, run.end))
            assert run.start == 0 or (run.start - 1) in model
            assert run.end == 256 or run.end in model
