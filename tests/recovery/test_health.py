"""The failure detector: tolerance rule, recovery events, listeners."""

import pytest

from repro.common.metrics import Metrics
from repro.recovery.health import HealthRegistry, HealthState


def build(tolerance=3):
    metrics = Metrics()
    return HealthRegistry(metrics, transient_tolerance=tolerance), metrics


class TestStates:
    def test_unknown_component_is_up(self):
        health, _ = build()
        assert health.state("volume.0") is HealthState.UP
        assert not health.is_down("volume.0")

    def test_permanent_error_marks_down_immediately(self):
        health, metrics = build()
        verdict = health.note_error("volume.0", permanent=True)
        assert verdict is True
        assert health.is_down("volume.0")
        assert metrics.get("health.permanent_errors") == 1
        assert metrics.get("health.marked_down") == 1

    def test_transient_errors_absorbed_until_tolerance(self):
        health, metrics = build(tolerance=3)
        assert health.note_error("volume.0", permanent=False) is False
        assert health.state("volume.0") is HealthState.SUSPECT
        assert health.note_error("volume.0", permanent=False) is False
        # The third consecutive transient error escalates.
        assert health.note_error("volume.0", permanent=False) is True
        assert health.is_down("volume.0")
        assert metrics.get("health.transient_escalations") == 1
        assert metrics.get("health.transient_errors") == 2

    def test_success_resets_the_transient_count(self):
        health, _ = build(tolerance=2)
        health.note_error("volume.0", permanent=False)
        health.note_ok("volume.0")
        assert health.state("volume.0") is HealthState.UP
        # The counter restarted: one more transient does not escalate.
        assert health.note_error("volume.0", permanent=False) is False

    def test_down_component_gets_no_benefit_of_the_doubt(self):
        health, _ = build()
        health.mark_down("volume.0")
        # Even a "transient" error on a down component stays a failure.
        assert health.note_error("volume.0", permanent=False) is True

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            HealthRegistry(Metrics(), transient_tolerance=0)


class TestRecovery:
    def test_note_recovered_marks_up_and_fires_listeners(self):
        health, metrics = build()
        seen = []
        health.on_recovery(seen.append)
        health.on_recovery(lambda c: seen.append(c + "/second"))
        health.mark_down("volume.1")
        health.note_recovered("volume.1")
        assert health.state("volume.1") is HealthState.UP
        # Listeners run synchronously, in registration order.
        assert seen == ["volume.1", "volume.1/second"]
        assert metrics.get("health.recoveries") == 1

    def test_note_ok_clears_down_without_firing_listeners(self):
        health, _ = build()
        fired = []
        health.on_recovery(fired.append)
        health.mark_down("volume.0")
        health.note_ok("volume.0")
        assert health.state("volume.0") is HealthState.UP
        assert fired == []

    def test_components_sorted(self):
        health, _ = build()
        health.mark_down("volume.2")
        health.note_error("volume.0", permanent=False)
        assert health.components() == ["volume.0", "volume.2"]
