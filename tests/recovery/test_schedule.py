"""Failure schedules: ordering, overlap rejection, poll/run_out."""

import pytest

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.recovery.schedule import (
    FailureEvent,
    FailureSchedule,
    MemberFailureEvent,
    ShardFailureEvent,
)


class _Host:
    """Records the lifecycle calls a schedule makes, in order."""

    def __init__(self):
        self.calls = []

    def fail_volume(self, volume_id):
        self.calls.append(("fail", volume_id))

    def restart_volume(self, volume_id):
        self.calls.append(("restart", volume_id))

    def fail_member(self, volume_id, member_index):
        self.calls.append(("kill", volume_id, member_index))

    def replace_member(self, volume_id, member_index):
        self.calls.append(("replace", volume_id, member_index))

    def fail_shard(self, shard_id):
        self.calls.append(("shard_kill", shard_id))

    def restart_shard(self, shard_id):
        self.calls.append(("shard_restart", shard_id))


def build(events):
    clock = SimClock()
    return FailureSchedule(events, clock, metrics=Metrics()), clock, _Host()


class TestEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(at_us=-1, volume_id=0, down_us=10)
        with pytest.raises(ValueError):
            FailureEvent(at_us=0, volume_id=0, down_us=0)

    def test_restart_time(self):
        event = FailureEvent(at_us=100, volume_id=0, down_us=50)
        assert event.restart_at_us == 150

    def test_overlapping_windows_same_volume_rejected(self):
        with pytest.raises(ValueError):
            FailureSchedule(
                [
                    FailureEvent(at_us=0, volume_id=0, down_us=100),
                    FailureEvent(at_us=50, volume_id=0, down_us=100),
                ],
                SimClock(),
            )

    def test_overlapping_windows_distinct_volumes_allowed(self):
        schedule, _, _ = build(
            [
                FailureEvent(at_us=0, volume_id=0, down_us=100),
                FailureEvent(at_us=50, volume_id=1, down_us=100),
            ]
        )
        assert len(schedule.events) == 2


class TestPoll:
    def test_nothing_fires_before_its_time(self):
        schedule, clock, host = build(
            [FailureEvent(at_us=100, volume_id=0, down_us=50)]
        )
        assert schedule.poll(host) == []
        assert host.calls == []
        assert schedule.next_event_us() == 100

    def test_crash_then_restart(self):
        schedule, clock, host = build(
            [FailureEvent(at_us=100, volume_id=0, down_us=50)]
        )
        clock.advance_to(100)
        schedule.poll(host)
        assert host.calls == [("fail", 0)]
        clock.advance_to(150)
        schedule.poll(host)
        assert host.calls == [("fail", 0), ("restart", 0)]
        assert schedule.done()
        assert schedule.downtime_windows() == [(0, 100, 150)]

    def test_clock_jump_fires_actions_in_script_order(self):
        """A big jump past crash AND restart still restarts after the
        crash — and a restart due at the same instant as another
        volume's crash fires first."""
        schedule, clock, host = build(
            [
                FailureEvent(at_us=100, volume_id=0, down_us=100),
                FailureEvent(at_us=200, volume_id=1, down_us=100),
            ]
        )
        clock.advance_to(400)
        schedule.poll(host)
        assert host.calls == [
            ("fail", 0),
            ("restart", 0),
            ("fail", 1),
            ("restart", 1),
        ]

    def test_run_out_advances_to_each_action(self):
        schedule, clock, host = build(
            [FailureEvent(at_us=300, volume_id=2, down_us=100)]
        )
        actions = schedule.run_out(host)
        assert [call for call in host.calls] == [("fail", 2), ("restart", 2)]
        assert clock.now_us == 400
        assert len(actions) == 2
        assert schedule.done()

    def test_metrics_counted(self):
        metrics = Metrics()
        clock = SimClock()
        schedule = FailureSchedule(
            [FailureEvent(at_us=10, volume_id=0, down_us=10)],
            clock,
            metrics=metrics,
        )
        schedule.run_out(_Host())
        assert metrics.get("recovery.crashes_injected") == 1
        assert metrics.get("recovery.restarts_injected") == 1


class TestMemberEvents:
    """PR 9: scripted RAID member kill/replace pairs."""

    def test_validation(self):
        with pytest.raises(ValueError):
            MemberFailureEvent(at_us=-1, volume_id=0, member_index=0, down_us=10)
        with pytest.raises(ValueError):
            MemberFailureEvent(at_us=0, volume_id=0, member_index=0, down_us=0)
        with pytest.raises(ValueError):
            MemberFailureEvent(at_us=0, volume_id=0, member_index=-1, down_us=10)
        event = MemberFailureEvent(
            at_us=100, volume_id=1, member_index=2, down_us=40
        )
        assert event.replace_at_us == 140

    def test_kill_then_replace_with_windows(self):
        schedule, clock, host = build(
            [MemberFailureEvent(at_us=100, volume_id=0, member_index=2, down_us=50)]
        )
        clock.advance_to(100)
        schedule.poll(host)
        assert host.calls == [("kill", 0, 2)]
        clock.advance_to(150)
        schedule.poll(host)
        assert host.calls == [("kill", 0, 2), ("replace", 0, 2)]
        assert schedule.done()
        assert schedule.member_windows() == [(0, 2, 100, 150)]

    def test_same_member_overlap_rejected(self):
        with pytest.raises(ValueError):
            FailureSchedule(
                [
                    MemberFailureEvent(
                        at_us=0, volume_id=0, member_index=1, down_us=100
                    ),
                    MemberFailureEvent(
                        at_us=50, volume_id=0, member_index=1, down_us=100
                    ),
                ],
                SimClock(),
            )

    def test_distinct_members_may_overlap(self):
        # The schedule does not police redundancy; whether two members
        # down at once is survivable is the array's verdict to deliver.
        schedule, _, _ = build(
            [
                MemberFailureEvent(
                    at_us=0, volume_id=0, member_index=0, down_us=100
                ),
                MemberFailureEvent(
                    at_us=50, volume_id=0, member_index=1, down_us=100
                ),
            ]
        )
        assert len(schedule.events) == 2

    def test_rekill_after_replace_allowed(self):
        """Losing the same slot again after its replacement is the
        rebuild-interrupted scenario — a legal script."""
        schedule, clock, host = build(
            [
                MemberFailureEvent(
                    at_us=0, volume_id=0, member_index=2, down_us=100
                ),
                MemberFailureEvent(
                    at_us=100, volume_id=0, member_index=2, down_us=100
                ),
            ]
        )
        schedule.run_out(host)
        # The same-instant replace fires before the second kill.
        assert host.calls == [
            ("kill", 0, 2),
            ("replace", 0, 2),
            ("kill", 0, 2),
            ("replace", 0, 2),
        ]
        assert schedule.member_windows() == [(0, 2, 0, 100), (0, 2, 100, 200)]

    def test_mixed_volume_and_member_script(self):
        metrics = Metrics()
        clock = SimClock()
        host = _Host()
        schedule = FailureSchedule(
            [
                FailureEvent(at_us=10, volume_id=1, down_us=30),
                MemberFailureEvent(
                    at_us=20, volume_id=0, member_index=3, down_us=30
                ),
            ],
            clock,
            metrics=metrics,
        )
        schedule.run_out(host)
        assert host.calls == [
            ("fail", 1),
            ("kill", 0, 3),
            ("restart", 1),
            ("replace", 0, 3),
        ]
        assert metrics.get("recovery.member_kills_injected") == 1
        assert metrics.get("recovery.member_replacements_injected") == 1


class TestShardEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardFailureEvent(at_us=-1, shard_id=0, down_us=10)
        with pytest.raises(ValueError):
            ShardFailureEvent(at_us=0, shard_id=0, down_us=0)
        with pytest.raises(ValueError):
            ShardFailureEvent(at_us=0, shard_id=-1, down_us=10)

    def test_kill_then_restart_with_windows(self):
        schedule, clock, host = build(
            [ShardFailureEvent(at_us=50, shard_id=2, down_us=100)]
        )
        clock.advance_to(50)
        schedule.poll(host)
        assert host.calls == [("shard_kill", 2)]
        clock.advance_to(150)
        schedule.poll(host)
        assert host.calls == [("shard_kill", 2), ("shard_restart", 2)]
        assert schedule.shard_windows() == [(2, 50, 150)]
        assert schedule.done()

    def test_same_shard_overlap_rejected(self):
        with pytest.raises(ValueError):
            build(
                [
                    ShardFailureEvent(at_us=0, shard_id=1, down_us=100),
                    ShardFailureEvent(at_us=50, shard_id=1, down_us=100),
                ]
            )

    def test_distinct_shards_may_overlap(self):
        schedule, _, host = build(
            [
                ShardFailureEvent(at_us=0, shard_id=0, down_us=100),
                ShardFailureEvent(at_us=50, shard_id=1, down_us=100),
            ]
        )
        schedule.run_out(host)
        assert schedule.shard_windows() == [(0, 0, 100), (1, 50, 150)]

    def test_shard_and_volume_windows_are_independent(self):
        metrics = Metrics()
        clock = SimClock()
        host = _Host()
        schedule = FailureSchedule(
            [
                FailureEvent(at_us=10, volume_id=1, down_us=50),
                ShardFailureEvent(at_us=10, shard_id=1, down_us=50),
            ],
            clock,
            metrics=metrics,
        )
        schedule.run_out(host)
        # same-instant firing order: all repairs precede all failures,
        # volume before shard within each class
        assert host.calls == [
            ("fail", 1),
            ("shard_kill", 1),
            ("restart", 1),
            ("shard_restart", 1),
        ]
        assert schedule.downtime_windows() == [(1, 10, 60)]
        assert schedule.shard_windows() == [(1, 10, 60)]
        assert metrics.get("recovery.shard_kills_injected") == 1
        assert metrics.get("recovery.shard_restarts_injected") == 1
