"""The file index table codec and contiguity counts."""

import pytest

from repro.common.errors import FileSizeError
from repro.common.units import BLOCK_SIZE, FRAGMENT_SIZE
from repro.file_service.attributes import FileAttributes, LockingLevel, ServiceType
from repro.file_service.fit import (
    DIRECT_COVERAGE_BYTES,
    DIRECT_DESCRIPTORS,
    MAX_FILE_BLOCKS,
    BlockDescriptor,
    FileIndexTable,
    contiguous_runs,
    decode_indirect_block,
    encode_indirect_block,
    recompute_counts,
)


class TestLayoutClaims:
    def test_direct_area_covers_half_a_megabyte(self):
        """Paper section 5/7: direct access to at least half a megabyte."""
        assert DIRECT_COVERAGE_BYTES == 512 * 1024
        assert DIRECT_DESCRIPTORS == 64

    def test_fit_fits_in_one_fragment(self):
        fit = FileIndexTable()
        for index in range(DIRECT_DESCRIPTORS):
            fit.direct[index] = BlockDescriptor(index * 4, 1)
        assert len(fit.encode()) == FRAGMENT_SIZE

    def test_max_file_blocks_is_large(self):
        """'Virtually no limitation on file size'."""
        assert MAX_FILE_BLOCKS * BLOCK_SIZE > 20 * 1024**3  # > 20 GB


class TestCodec:
    def test_empty_round_trip(self):
        fit = FileIndexTable()
        restored = FileIndexTable.decode(fit.encode())
        assert restored.direct == fit.direct
        assert restored.single_indirect == fit.single_indirect
        assert restored.double_indirect == fit.double_indirect

    def test_attributes_round_trip(self):
        fit = FileIndexTable(
            attributes=FileAttributes(
                file_size=123_456,
                created_us=111,
                last_read_us=222,
                last_write_us=333,
                ref_count=2,
                service_type=ServiceType.TRANSACTION,
                locking_level=LockingLevel.RECORD,
                extra_space=64,
                generation=77,
                open_count_total=9,
            )
        )
        attrs = FileIndexTable.decode(fit.encode()).attributes
        assert attrs.file_size == 123_456
        assert attrs.created_us == 111
        assert attrs.last_read_us == 222
        assert attrs.last_write_us == 333
        assert attrs.ref_count == 2
        assert attrs.service_type is ServiceType.TRANSACTION
        assert attrs.locking_level is LockingLevel.RECORD
        assert attrs.extra_space == 64
        assert attrs.generation == 77
        assert attrs.open_count_total == 9

    def test_descriptors_round_trip(self):
        fit = FileIndexTable()
        fit.direct[0] = BlockDescriptor(100, 3)
        fit.direct[5] = BlockDescriptor(400, 1)
        fit.single_indirect[2] = 9000
        fit.double_indirect[1] = 9004
        restored = FileIndexTable.decode(fit.encode())
        assert restored.direct[0] == BlockDescriptor(100, 3)
        assert restored.direct[1] is None
        assert restored.direct[5] == BlockDescriptor(400, 1)
        assert restored.single_indirect[2] == 9000
        assert restored.double_indirect[1] == 9004

    def test_bad_magic_rejected(self):
        with pytest.raises(FileSizeError):
            FileIndexTable.decode(bytes(FRAGMENT_SIZE))

    def test_truncated_rejected(self):
        with pytest.raises(FileSizeError):
            FileIndexTable.decode(b"RFIT")


class TestBlockDescriptor:
    def test_count_bounds(self):
        BlockDescriptor(0, 1)
        BlockDescriptor(0, 0xFFFF)
        with pytest.raises(FileSizeError):
            BlockDescriptor(0, 0)
        with pytest.raises(FileSizeError):
            BlockDescriptor(0, 0x10000)

    def test_address_bounds(self):
        with pytest.raises(FileSizeError):
            BlockDescriptor(-1, 1)
        with pytest.raises(FileSizeError):
            BlockDescriptor(0xFFFF_FFFF, 1)  # the NULL sentinel


class TestCounts:
    def test_fully_contiguous(self):
        """The paper's two-byte count: successive contiguous blocks."""
        descs = [BlockDescriptor(base, 1) for base in (100, 104, 108, 112)]
        counted = recompute_counts(descs)
        assert [d.count for d in counted] == [4, 3, 2, 1]

    def test_break_in_contiguity(self):
        descs = [
            BlockDescriptor(100, 1),
            BlockDescriptor(104, 1),
            BlockDescriptor(300, 1),  # jump
            BlockDescriptor(304, 1),
        ]
        counted = recompute_counts(descs)
        assert [d.count for d in counted] == [2, 1, 2, 1]

    def test_holes_break_runs(self):
        descs = [BlockDescriptor(100, 1), None, BlockDescriptor(108, 1)]
        counted = recompute_counts(descs)
        assert counted[0].count == 1
        assert counted[1] is None
        assert counted[2].count == 1

    def test_count_caps_at_two_bytes(self):
        descs = [BlockDescriptor(index * 4, 1) for index in range(70000)]
        counted = recompute_counts(descs)
        assert counted[0].count == 0xFFFF


class TestContiguousRuns:
    def test_single_run(self):
        descs = recompute_counts(
            [BlockDescriptor(100 + 4 * index, 1) for index in range(5)]
        )
        runs = list(contiguous_runs(descs, 0, 4))
        assert runs == [(0, 5, 100)]

    def test_runs_split_at_jumps(self):
        descs = recompute_counts(
            [
                BlockDescriptor(100, 1),
                BlockDescriptor(104, 1),
                BlockDescriptor(500, 1),
            ]
        )
        assert list(contiguous_runs(descs, 0, 2)) == [(0, 2, 100), (2, 1, 500)]

    def test_subrange(self):
        descs = recompute_counts(
            [BlockDescriptor(100 + 4 * index, 1) for index in range(8)]
        )
        assert list(contiguous_runs(descs, 2, 5)) == [(2, 4, 108)]

    def test_holes_reported(self):
        descs = [BlockDescriptor(100, 1), None, None, BlockDescriptor(200, 1)]
        runs = list(contiguous_runs(recompute_counts(descs), 0, 3))
        assert runs == [(0, 1, 100), (1, 2, -1), (3, 1, 200)]

    def test_range_past_map_end_is_a_hole(self):
        descs = [BlockDescriptor(100, 1)]
        runs = list(contiguous_runs(descs, 0, 2))
        assert runs == [(0, 1, 100), (1, 2, -1)]


class TestIndirectCodec:
    def test_round_trip(self):
        descs = [None] * 10
        descs[3] = BlockDescriptor(800, 2)
        blob = encode_indirect_block(descs)
        assert len(blob) == BLOCK_SIZE
        restored = decode_indirect_block(blob)
        assert restored[3] == BlockDescriptor(800, 2)
        assert restored[0] is None

    def test_wrong_size_rejected(self):
        with pytest.raises(FileSizeError):
            decode_indirect_block(b"x" * 100)
