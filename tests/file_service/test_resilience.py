"""File-service resilience: FIT restore from stable, size limits, raw IO."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import FileNotFoundError_
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.disk_service.addresses import Extent
from repro.file_service.fit import (
    DESCRIPTORS_PER_INDIRECT,
    DIRECT_DESCRIPTORS,
    SINGLE_INDIRECT_SLOTS,
)
from tests.conftest import build_file_server


@pytest.fixture
def server():
    return build_file_server(SimClock(), Metrics())


class TestFitRestoreFromStable:
    def test_torn_fit_healed_from_stable_copy(self, server):
        """Paper section 5: 'A copy of the file index table is always
        available in stable storage' — a corrupted main copy is healed.

        Since the checksum layer, the heal happens below the file
        service: the mirrored FIT fragment fails verification on the
        first post-recovery read and is rolled back to its stable copy
        in place (read repair) before the FIT decoder ever sees the
        corrupt bytes.
        """
        name = server.create()
        server.write(name, 0, b"important" * 100)
        server.flush()
        # Corrupt the main FIT copy directly on disk.
        server.disk.disk.write_sectors(
            name.fit_address * 4, b"\xde\xad\xbe\xef" * 512
        )
        server.recover()  # drop the cached FIT
        assert server.read(name, 0, 9) == b"important"
        assert server.metrics.get("disk_server.0.read_repairs") == 1
        assert server.metrics.get("file_server.0.fit_restores") == 0

    def test_unrecoverable_fit_raises_not_found(self, server):
        """Garbage where no file ever was stays an error."""
        extent = server.disk.allocate(1)
        server.disk.put(extent, b"\x00" * extent.byte_size)
        from repro.common.ids import SystemName

        with pytest.raises(FileNotFoundError_):
            server.read(SystemName(0, extent.start, 1), 0, 1)

    def test_healed_fit_repairs_the_main_copy(self, server):
        name = server.create()
        server.write(name, 0, b"data")
        server.flush()
        server.disk.disk.write_sectors(name.fit_address * 4, b"\xff" * 2048)
        server.recover()
        server.read(name, 0, 4)  # triggers the read repair
        server.recover()  # drop caches again: main copy must now be valid
        assert server.read(name, 0, 4) == b"data"
        assert server.metrics.get("disk_server.0.read_repairs") == 1


class TestSizeLimits:
    def test_write_into_double_indirect_range(self, server):
        """'Virtually no limitation on file size': past the single-
        indirect range (~85 MB), double indirection takes over."""
        boundary = (
            DIRECT_DESCRIPTORS + SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT
        )
        name = server.create()
        offset = boundary * BLOCK_SIZE + 123  # first double-indirect block
        server.write(name, offset, b"beyond the single range")
        assert server.read(name, offset, 23) == b"beyond the single range"
        assert server.get_attribute(name).file_size == offset + 23

    def test_double_indirect_survives_cache_drop(self, server):
        boundary = (
            DIRECT_DESCRIPTORS + SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT
        )
        name = server.create()
        offset = (boundary + 7) * BLOCK_SIZE
        server.write(name, offset, b"durable deep data")
        server.flush()
        server.recover()
        assert server.read(name, offset, 17) == b"durable deep data"

    def test_double_indirect_file_deletes_cleanly(self, server):
        pristine = server.disk.free_fragments
        boundary = (
            DIRECT_DESCRIPTORS + SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT
        )
        name = server.create()
        server.write(name, boundary * BLOCK_SIZE, b"x" * BLOCK_SIZE)
        server.flush()
        server.delete(name)
        assert server.disk.free_fragments == pristine

    def test_largest_supported_offset_works(self, server):
        name = server.create()
        offset = (DIRECT_DESCRIPTORS + 5) * BLOCK_SIZE  # into indirection
        server.write(name, offset, b"deep")
        assert server.read(name, offset, 4) == b"deep"


class TestRawBlockIO:
    def test_read_write_block(self, server):
        extent = server.disk.allocate_block(2)
        payload = bytes(range(256)) * 64  # 16 KB
        server.write_block(extent.start, payload)
        assert server.read_block(extent.start, 2) == payload

    def test_write_block_requires_whole_blocks(self, server):
        extent = server.disk.allocate_block(1)
        from repro.common.errors import BadAddressError

        with pytest.raises(BadAddressError):
            server.write_block(extent.start, b"partial")


class TestGrowthPreallocation:
    def test_interleaved_appenders_stay_mostly_contiguous(self):
        from repro.file_service.fit import contiguous_runs

        clock, metrics = SimClock(), Metrics()
        server = build_file_server(clock, metrics, growth_batch_blocks=8)
        file_a = server.create()
        file_b = server.create()
        for index in range(16):
            server.write(file_a, index * BLOCK_SIZE, bytes([1]) * BLOCK_SIZE)
            server.write(file_b, index * BLOCK_SIZE, bytes([2]) * BLOCK_SIZE)
        for name in (file_a, file_b):
            fit = server.load_fit(name)
            runs = [
                run
                for run in contiguous_runs(fit.direct, 0, DIRECT_DESCRIPTORS - 1)
                if run[2] >= 0
            ]
            # 16 interleaved appends collapse into a handful of runs.
            assert len(runs) <= 6

    def test_preallocated_blocks_freed_on_delete(self, server):
        pristine = server.disk.free_fragments
        name = server.create()
        server.write(name, BLOCK_SIZE, b"x")  # triggers growth + prealloc
        server.flush()
        server.delete(name)
        assert server.disk.free_fragments == pristine

    def test_batch_one_disables_preallocation(self):
        clock, metrics = SimClock(), Metrics()
        server = build_file_server(clock, metrics, growth_batch_blocks=1)
        name = server.create()
        server.write(name, BLOCK_SIZE, b"x")  # block 1
        fit = server.load_fit(name)
        mapped = sum(1 for d in fit.direct if d is not None)
        assert mapped == 2  # exactly blocks 0 and 1, nothing reserved
