"""The file-attribute block (the paper's section-5 attribute list)."""

from repro.file_service.attributes import (
    FileAttributes,
    LockingLevel,
    ServiceType,
)


class TestPaperAttributeList:
    """Section 5 enumerates the FIT's file-specific attributes; each
    must exist and default sensibly."""

    def test_all_paper_attributes_present(self):
        attrs = FileAttributes()
        assert attrs.file_size == 0  # "file size"
        assert attrs.created_us == 0  # "date and time of file creation"
        assert attrs.last_read_us == 0  # "last read access"
        assert attrs.ref_count == 0  # "reference count ... opened simultaneously"
        assert attrs.service_type is ServiceType.BASIC  # "service type"
        assert attrs.locking_level is LockingLevel.DEFAULT  # "locking level"
        assert attrs.extra_space == 0  # "space ... for the file-specific attributes"

    def test_service_types_match_paper_classification(self):
        """Section 2.2: a file is a basic file or a transaction file."""
        assert {t.name for t in ServiceType} == {"BASIC", "TRANSACTION"}

    def test_locking_levels_match_paper(self):
        """Section 6.1: record, page, or complete file locking."""
        assert {l.name for l in LockingLevel} == {
            "RECORD",
            "PAGE",
            "FILE",
            "DEFAULT",
        }


class TestCopySemantics:
    def test_copy_is_independent(self):
        attrs = FileAttributes(file_size=100, ref_count=2)
        clone = attrs.copy()
        clone.file_size = 999
        clone.ref_count = 0
        assert attrs.file_size == 100
        assert attrs.ref_count == 2

    def test_copy_preserves_every_field(self):
        attrs = FileAttributes(
            file_size=5,
            created_us=1,
            last_read_us=2,
            last_write_us=3,
            ref_count=4,
            service_type=ServiceType.TRANSACTION,
            locking_level=LockingLevel.RECORD,
            extra_space=6,
            generation=7,
            open_count_total=8,
        )
        clone = attrs.copy()
        for field in (
            "file_size",
            "created_us",
            "last_read_us",
            "last_write_us",
            "ref_count",
            "service_type",
            "locking_level",
            "extra_space",
            "generation",
            "open_count_total",
        ):
            assert getattr(clone, field) == getattr(attrs, field)
