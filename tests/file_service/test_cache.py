"""Buffer pools: LRU, dirty tracking, writeback."""

import pytest

from repro.common.metrics import Metrics
from repro.file_service.cache import BufferPool, WritePolicy


def build(capacity=3):
    metrics = Metrics()
    written = []
    pool = BufferPool(
        "pool", metrics, capacity, writeback=lambda key, data: written.append((key, data))
    )
    return pool, written, metrics


class TestLookup:
    def test_miss_returns_none(self):
        pool, _, metrics = build()
        assert pool.get("a") is None
        assert metrics.get("pool.misses") == 1

    def test_hit(self):
        pool, _, metrics = build()
        pool.put("a", b"1")
        assert pool.get("a") == b"1"
        assert metrics.get("pool.hits") == 1

    def test_contains_does_not_count(self):
        pool, _, metrics = build()
        pool.put("a", b"1")
        assert pool.contains("a")
        assert not pool.contains("b")
        assert metrics.get("pool.hits") == 0
        assert metrics.get("pool.misses") == 0

    def test_update_replaces(self):
        pool, _, _ = build()
        pool.put("a", b"1")
        pool.put("a", b"2")
        assert pool.get("a") == b"2"
        assert len(pool) == 1


class TestEvictionAndDirt:
    def test_lru_eviction(self):
        pool, written, metrics = build(capacity=2)
        pool.put("a", b"1")
        pool.put("b", b"2")
        pool.get("a")  # refresh a
        pool.put("c", b"3")  # evicts b
        assert pool.get("b") is None
        assert pool.get("a") == b"1"
        assert metrics.get("pool.evictions") == 1

    def test_dirty_eviction_writes_back(self):
        pool, written, _ = build(capacity=1)
        pool.put("a", b"1", dirty=True)
        pool.put("b", b"2")
        assert written == [("a", b"1")]

    def test_clean_eviction_is_silent(self):
        pool, written, _ = build(capacity=1)
        pool.put("a", b"1")
        pool.put("b", b"2")
        assert written == []

    def test_dirty_eviction_without_writeback_is_an_error(self):
        pool = BufferPool("p", Metrics(), 1)
        pool.put("a", b"1", dirty=True)
        with pytest.raises(RuntimeError):
            pool.put("b", b"2")

    def test_dirtiness_is_sticky_across_updates(self):
        pool, written, _ = build()
        pool.put("a", b"1", dirty=True)
        pool.put("a", b"2")  # update without dirty flag: stays dirty
        assert pool.flush() == 1
        assert written == [("a", b"2")]


class TestFlush:
    def test_flush_writes_all_dirty(self):
        pool, written, _ = build()
        pool.put("a", b"1", dirty=True)
        pool.put("b", b"2")
        pool.put("c", b"3", dirty=True)
        assert pool.flush() == 2
        assert sorted(written) == [("a", b"1"), ("c", b"3")]
        assert pool.dirty_count() == 0

    def test_flush_matching(self):
        pool, written, _ = build()
        pool.put(("f1", 0), b"1", dirty=True)
        pool.put(("f2", 0), b"2", dirty=True)
        assert pool.flush_matching(lambda key: key[0] == "f1") == 1
        assert written == [(("f1", 0), b"1")]
        assert pool.dirty_count() == 1

    def test_mark_clean(self):
        pool, written, _ = build()
        pool.put("a", b"1", dirty=True)
        pool.mark_clean("a")
        assert pool.flush() == 0

    def test_invalidate_discards_dirty_data(self):
        pool, written, _ = build()
        pool.put("a", b"1", dirty=True)
        pool.invalidate("a")
        assert pool.flush() == 0
        assert pool.get("a") is None

    def test_invalidate_all(self):
        pool, _, _ = build()
        pool.put("a", b"1")
        pool.put("b", b"2", dirty=True)
        pool.invalidate_all()
        assert len(pool) == 0
        assert pool.dirty_count() == 0


class TestWritePolicy:
    def test_policy_values(self):
        assert WritePolicy.DELAYED.value == "delayed"
        assert WritePolicy.WRITE_THROUGH.value == "write-through"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool("p", Metrics(), 0)
