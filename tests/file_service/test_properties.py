"""Property tests: the file server against a bytearray oracle."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.file_service.fit import (
    BlockDescriptor,
    FileIndexTable,
    recompute_counts,
)
from tests.conftest import build_file_server


@st.composite
def write_schedules(draw):
    """A list of (offset, payload) writes within a bounded file."""
    n_writes = draw(st.integers(min_value=1, max_value=12))
    schedule = []
    for _ in range(n_writes):
        offset = draw(st.integers(min_value=0, max_value=3 * BLOCK_SIZE))
        length = draw(st.integers(min_value=1, max_value=2 * BLOCK_SIZE))
        fill = draw(st.integers(min_value=1, max_value=255))
        schedule.append((offset, bytes([fill]) * length))
    return schedule


class TestFileServerOracle:
    @given(write_schedules())
    @settings(max_examples=40, deadline=None)
    def test_write_read_matches_bytearray_oracle(self, schedule):
        server = build_file_server(SimClock(), Metrics())
        name = server.create()
        oracle = bytearray()
        for offset, payload in schedule:
            server.write(name, offset, payload)
            if len(oracle) < offset + len(payload):
                oracle.extend(bytes(offset + len(payload) - len(oracle)))
            oracle[offset : offset + len(payload)] = payload
        assert server.get_attribute(name).file_size == len(oracle)
        assert server.read(name, 0, len(oracle) + 10) == bytes(oracle)

    @given(write_schedules())
    @settings(max_examples=20, deadline=None)
    def test_flush_recover_preserves_content(self, schedule):
        server = build_file_server(SimClock(), Metrics())
        name = server.create()
        oracle = bytearray()
        for offset, payload in schedule:
            server.write(name, offset, payload)
            if len(oracle) < offset + len(payload):
                oracle.extend(bytes(offset + len(payload) - len(oracle)))
            oracle[offset : offset + len(payload)] = payload
        server.flush()
        server.recover()
        assert server.read(name, 0, len(oracle)) == bytes(oracle)


class TestFitCodecProperties:
    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.tuples(
                    st.integers(min_value=0, max_value=2**31),
                    st.integers(min_value=1, max_value=0xFFFF),
                ),
            ),
            min_size=64,
            max_size=64,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_direct_descriptors_round_trip(self, raw):
        fit = FileIndexTable()
        fit.direct = [
            None if entry is None else BlockDescriptor(entry[0], entry[1])
            for entry in raw
        ]
        restored = FileIndexTable.decode(fit.encode())
        assert restored.direct == fit.direct

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**30)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_recompute_counts_invariant(self, addresses):
        descs = [
            None if address is None else BlockDescriptor(address, 1)
            for address in addresses
        ]
        counted = recompute_counts(descs)
        for index, desc in enumerate(counted):
            if desc is None:
                continue
            # Invariant: count = 1 + count of the next block iff it is
            # physically adjacent (capped at two bytes).
            nxt = counted[index + 1] if index + 1 < len(counted) else None
            if nxt is not None and nxt.address == desc.address + 4:
                assert desc.count == min(nxt.count + 1, 0xFFFF)
            else:
                assert desc.count == 1
