"""The file server: create/open/read/write/delete, paper claims E1/E2/E15."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import FileNotFoundError_, FileSizeError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import LockingLevel, ServiceType
from repro.file_service.cache import WritePolicy
from repro.file_service.fit import DIRECT_COVERAGE_BYTES
from tests.conftest import build_file_server


@pytest.fixture
def server():
    return build_file_server(SimClock(), Metrics())


def pattern(n: int, seed: int = 1) -> bytes:
    return bytes((seed * 37 + index) % 256 for index in range(n))


class TestCreate:
    def test_create_returns_system_name(self, server):
        name = server.create()
        assert name.volume_id == server.volume_id
        assert server.exists(name)

    def test_fit_and_first_block_contiguous(self, server):
        """Paper section 5: 'the file index table and at least the first
        data block are always contiguous'."""
        name = server.create()
        descriptor = server.block_descriptor(name, 0)
        assert descriptor is not None
        assert descriptor.address == name.fit_address + 1

    def test_generations_distinguish_recycled_names(self, server):
        first = server.create()
        server.delete(first)
        second = server.create()
        assert second.fit_address == first.fit_address  # fragment recycled
        assert second.generation != first.generation
        with pytest.raises(FileNotFoundError_):
            server.read(first, 0, 1)

    def test_attributes_initialised(self, server):
        clock_before = server.clock.now_us
        name = server.create(
            service_type=ServiceType.TRANSACTION,
            locking_level=LockingLevel.RECORD,
        )
        attrs = server.get_attribute(name)
        assert attrs.file_size == 0
        assert attrs.created_us >= clock_before
        assert attrs.service_type is ServiceType.TRANSACTION
        assert attrs.locking_level is LockingLevel.RECORD
        assert attrs.ref_count == 0


class TestOpenClose:
    def test_ref_count_tracks_opens(self, server):
        name = server.create()
        server.open(name)
        server.open(name)
        assert server.get_attribute(name).ref_count == 2
        server.close(name)
        assert server.get_attribute(name).ref_count == 1

    def test_open_count_total_accumulates(self, server):
        name = server.create()
        for _ in range(3):
            server.open(name)
            server.close(name)
        assert server.get_attribute(name).open_count_total == 3

    def test_stale_name_rejected(self, server):
        name = server.create()
        server.delete(name)
        with pytest.raises(FileNotFoundError_):
            server.open(name)

    def test_wrong_volume_rejected(self, server):
        bogus = SystemName(server.volume_id + 1, 0, 1)
        with pytest.raises(Exception):
            server.open(bogus)


class TestReadWrite:
    def test_round_trip(self, server):
        name = server.create()
        data = pattern(1000)
        assert server.write(name, 0, data) == 1000
        assert server.read(name, 0, 1000) == data

    def test_read_beyond_eof_is_short(self, server):
        name = server.create()
        server.write(name, 0, b"abc")
        assert server.read(name, 0, 100) == b"abc"
        assert server.read(name, 3, 10) == b""
        assert server.read(name, 100, 10) == b""

    def test_partial_overwrite(self, server):
        name = server.create()
        server.write(name, 0, b"a" * 100)
        server.write(name, 40, b"B" * 10)
        assert server.read(name, 0, 100) == b"a" * 40 + b"B" * 10 + b"a" * 50

    def test_cross_block_write(self, server):
        name = server.create()
        data = pattern(3 * BLOCK_SIZE + 17)
        server.write(name, BLOCK_SIZE - 5, data)
        assert server.read(name, BLOCK_SIZE - 5, len(data)) == data

    def test_sparse_hole_reads_zero(self, server):
        name = server.create()
        server.write(name, 10 * BLOCK_SIZE, b"tail")
        assert server.read(name, 5 * BLOCK_SIZE, 8) == bytes(8)
        assert server.get_attribute(name).file_size == 10 * BLOCK_SIZE + 4

    def test_updates_timestamps_and_size(self, server):
        name = server.create()
        server.write(name, 0, b"x")
        t_write = server.get_attribute(name).last_write_us
        server.read(name, 0, 1)
        attrs = server.get_attribute(name)
        assert attrs.last_read_us >= t_write
        assert attrs.file_size == 1

    def test_bad_ranges_rejected(self, server):
        name = server.create()
        with pytest.raises(FileSizeError):
            server.read(name, -1, 5)
        with pytest.raises(FileSizeError):
            server.write(name, -2, b"x")

    def test_empty_write_is_noop(self, server):
        name = server.create()
        assert server.write(name, 0, b"") == 0
        assert server.get_attribute(name).file_size == 0


class TestPaperClaimTwoReferences:
    def test_cold_read_of_half_megabyte_costs_two_references(self):
        """E1: 'for files up to half a megabyte, the maximum number of
        disk references is two: one for the file index table and the
        other for file data' (section 7)."""
        clock, metrics = SimClock(), Metrics()
        server = build_file_server(clock, metrics)
        name = server.create()
        server.write(name, 0, pattern(DIRECT_COVERAGE_BYTES))
        server.flush()
        server.recover()  # cold caches
        before = metrics.get("disk.0.references")
        server.read(name, 0, DIRECT_COVERAGE_BYTES)
        assert metrics.get("disk.0.references") - before == 2

    def test_contiguous_run_read_in_one_reference(self):
        """E2: count fields let k contiguous blocks cost one get_block."""
        clock, metrics = SimClock(), Metrics()
        server = build_file_server(clock, metrics)
        name = server.create()
        server.write(name, 0, pattern(8 * BLOCK_SIZE))
        server.flush()
        server.recover()
        server.read(name, 0, 1)  # loads the FIT + first run; warm the FIT only
        server.recover()
        before = metrics.get("disk.0.references")
        server.read(name, 0, 8 * BLOCK_SIZE)
        # 1 FIT + 1 data (all eight blocks contiguous)
        assert metrics.get("disk.0.references") - before == 2


class TestLargeFiles:
    def test_indirect_growth_and_readback(self, server):
        name = server.create()
        size = DIRECT_COVERAGE_BYTES + 5 * BLOCK_SIZE  # forces indirection
        data = pattern(size)
        server.write(name, 0, data)
        assert server.read(name, 0, size) == data
        assert server.load_fit(name).uses_indirection()

    def test_indirect_survives_cache_drop(self, server):
        name = server.create()
        size = DIRECT_COVERAGE_BYTES + 3 * BLOCK_SIZE
        data = pattern(size, seed=9)
        server.write(name, 0, data)
        server.flush()
        server.recover()
        assert server.read(name, 0, size) == data

    def test_multi_megabyte_file(self, server):
        name = server.create()
        size = 3 * 1024 * 1024
        data = pattern(size, seed=3)
        server.write(name, 0, data)
        assert server.read(name, size - 100, 100) == data[-100:]


class TestDelete:
    def test_delete_frees_all_space(self, server):
        pristine = server.disk.free_fragments
        name = server.create()
        server.write(name, 0, pattern(DIRECT_COVERAGE_BYTES + BLOCK_SIZE))
        server.flush()
        server.delete(name)
        assert server.disk.free_fragments == pristine

    def test_delete_small_file(self, server):
        pristine = server.disk.free_fragments
        name = server.create()
        server.write(name, 0, b"tiny")
        server.delete(name)
        assert server.disk.free_fragments == pristine


class TestWritePolicies:
    def test_delayed_write_defers_disk_writes(self):
        clock, metrics = SimClock(), Metrics()
        server = build_file_server(clock, metrics)
        name = server.create()
        snapshot = metrics.get("disk.0.writes")
        for index in range(16):
            server.write(name, 0, pattern(100, seed=index))  # same block
        deferred_writes = metrics.get("disk.0.writes") - snapshot
        server.flush()
        assert deferred_writes <= 1  # overwrites absorbed by the cache

    def test_write_through_hits_disk_every_time(self):
        clock, metrics = SimClock(), Metrics()
        server = build_file_server(
            clock, metrics, write_policy=WritePolicy.WRITE_THROUGH
        )
        name = server.create()
        snapshot = metrics.get("disk.0.writes")
        for index in range(4):
            server.write(name, 0, pattern(100, seed=index))
        assert metrics.get("disk.0.writes") - snapshot >= 4

    def test_transaction_files_write_through(self):
        """Paper section 5: write-through is adapted for the file
        service because it coordinates transactional access."""
        clock, metrics = SimClock(), Metrics()
        server = build_file_server(clock, metrics)  # delayed policy
        name = server.create(service_type=ServiceType.TRANSACTION)
        snapshot = metrics.get("disk.0.writes")
        server.write(name, 0, b"txn data")
        assert metrics.get("disk.0.writes") > snapshot

    def test_flush_then_recover_preserves_delayed_writes(self, server):
        name = server.create()
        server.write(name, 0, b"must survive")
        server.flush()
        server.recover()
        assert server.read(name, 0, 12) == b"must survive"


class TestDynamicFit:
    def test_fits_distributed_across_disk(self, server):
        """E15: dynamically created FITs 'do not accumulate in one place
        on the disk' — each sits next to its own file's data."""
        names = []
        for index in range(10):
            name = server.create()
            server.write(name, 0, pattern(BLOCK_SIZE, seed=index))
            names.append(name)
        addresses = [name.fit_address for name in names]
        spread = max(addresses) - min(addresses)
        assert spread >= 9 * 4  # interleaved with data, not clustered

    def test_replace_block_descriptor(self, server):
        name = server.create()
        server.write(name, 0, pattern(BLOCK_SIZE))
        shadow = server.disk.allocate_block(1)
        server.write_block(shadow.start, pattern(BLOCK_SIZE, seed=5))
        old = server.replace_block_descriptor(name, 0, shadow.start)
        assert old is not None
        assert server.read(name, 0, BLOCK_SIZE) == pattern(BLOCK_SIZE, seed=5)
