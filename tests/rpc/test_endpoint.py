"""RPC endpoints: dispatch, error propagation, retransmission."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import FileSizeError, RpcError, RpcTimeoutError
from repro.common.metrics import Metrics
from repro.rpc.bus import FaultProfile, MessageBus
from repro.rpc.endpoint import RpcClient, RpcServer


def build(profile=None, seed=0, **client_kwargs):
    clock, metrics = SimClock(), Metrics()
    bus = MessageBus(clock, metrics, profile, seed=seed)
    server = RpcServer(bus, "srv")
    client = RpcClient(bus, **client_kwargs)
    return server, client, metrics, clock


class TestDispatch:
    def test_call_round_trip(self):
        server, client, _, _ = build()
        server.expose("add", lambda payload: payload[0] + payload[1])
        assert client.call("srv", "add", (2, 3)) == 5

    def test_unknown_op(self):
        server, client, _, _ = build()
        with pytest.raises(RpcError, match="unknown op"):
            client.call("srv", "nope", None)

    def test_duplicate_op_rejected(self):
        server, _, _, _ = build()
        server.expose("x", lambda payload: None)
        with pytest.raises(RpcError):
            server.expose("x", lambda payload: None)

    def test_remote_errors_propagate_as_answers(self):
        """A handler error is a reply, not a transport failure."""
        server, client, metrics, _ = build()

        def failing(payload):
            raise FileSizeError("bad offset")

        server.expose("fail", failing)
        with pytest.raises(FileSizeError, match="bad offset"):
            client.call("srv", "fail", None)
        assert metrics.get("rpc.retransmissions") == 0

    def test_expose_object(self):
        class Thing:
            def ping(self, payload):
                return ("pong", payload)

        server, client, _, _ = build()
        server.expose_object(Thing(), {"ping": "ping"})
        assert client.call("srv", "ping", 1) == ("pong", 1)


class TestRetransmission:
    def test_lossy_request_retransmitted_until_success(self):
        server, client, metrics, _ = build(
            FaultProfile(request_loss=0.5), seed=2, max_attempts=50
        )
        server.expose("op", lambda payload: "done")
        for _ in range(20):
            assert client.call("srv", "op", None) == "done"
        assert metrics.get("rpc.retransmissions") >= 1

    def test_reply_loss_causes_reexecution(self):
        """Retransmission after reply loss re-executes the handler —
        safe only because RHODOS operations are idempotent."""
        server, client, metrics, _ = build(
            FaultProfile(reply_loss=0.4), seed=9, max_attempts=50
        )
        executions = []
        server.expose("op", lambda payload: executions.append(1) or "ok")
        for _ in range(10):
            client.call("srv", "op", None)
        assert len(executions) > 10  # some were executed more than once

    def test_exhausted_attempts_raise_timeout(self):
        server, client, _, _ = build(
            FaultProfile(request_loss=0.99), seed=1, max_attempts=3
        )
        server.expose("op", lambda payload: None)
        with pytest.raises(RpcTimeoutError):
            client.call("srv", "op", None)

    def test_timeout_charges_simulated_time(self):
        server, client, _, clock = build(
            FaultProfile(request_loss=0.99, latency_us=100),
            seed=1,
            max_attempts=3,
            timeout_us=5000,
        )
        server.expose("op", lambda payload: None)
        with pytest.raises(RpcTimeoutError):
            client.call("srv", "op", None)
        assert clock.now_us >= 3 * 5000

    def test_attempt_budget_validated(self):
        clock, metrics = SimClock(), Metrics()
        bus = MessageBus(clock, metrics)
        with pytest.raises(ValueError):
            RpcClient(bus, max_attempts=0)
