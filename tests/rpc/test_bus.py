"""The message bus: latency, loss, duplication, downed endpoints."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import RpcError
from repro.common.metrics import Metrics
from repro.rpc.bus import FaultProfile, MessageBus


def build(profile=None, seed=0):
    clock, metrics = SimClock(), Metrics()
    bus = MessageBus(clock, metrics, profile, seed=seed)
    return bus, clock, metrics


class TestFaultProfile:
    def test_reliable_default(self):
        profile = FaultProfile.reliable()
        assert profile.request_loss == 0.0
        assert profile.duplication == 0.0

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultProfile(request_loss=1.5)
        with pytest.raises(ValueError):
            FaultProfile(latency_us=-1)


class TestTransmit:
    def test_round_trip_charges_two_latencies(self):
        bus, clock, _ = build(FaultProfile(latency_us=300))
        bus.register("srv", lambda op, payload: payload * 2)
        arrived, reply = bus.transmit("srv", "double", 21)
        assert arrived and reply == 42
        assert clock.now_us == 600

    def test_unknown_endpoint(self):
        bus, _, _ = build()
        with pytest.raises(RpcError):
            bus.transmit("ghost", "op", None)

    def test_duplicate_registration_rejected(self):
        bus, _, _ = build()
        bus.register("srv", lambda op, payload: None)
        with pytest.raises(RpcError):
            bus.register("srv", lambda op, payload: None)

    def test_down_endpoint_loses_requests(self):
        bus, _, metrics = build()
        executed = []
        bus.register("srv", lambda op, payload: executed.append(payload))
        bus.set_down("srv")
        arrived, _ = bus.transmit("srv", "op", 1)
        assert not arrived
        assert executed == []
        bus.set_down("srv", False)
        arrived, _ = bus.transmit("srv", "op", 2)
        assert arrived
        assert executed == [2]


class TestFaults:
    def test_request_loss_prevents_execution(self):
        bus, _, metrics = build(FaultProfile(request_loss=0.999), seed=7)
        executed = []
        bus.register("srv", lambda op, payload: executed.append(1))
        arrived, _ = bus.transmit("srv", "op", None)
        assert not arrived
        assert executed == []
        assert metrics.get("rpc.requests_lost") == 1

    def test_reply_loss_still_executes(self):
        """The dangerous case: the server executed, the client never
        hears — exactly what idempotency must absorb."""
        bus, _, metrics = build(FaultProfile(reply_loss=0.999), seed=3)
        executed = []
        bus.register("srv", lambda op, payload: executed.append(1))
        arrived, _ = bus.transmit("srv", "op", None)
        assert not arrived
        assert executed == [1]
        assert metrics.get("rpc.replies_lost") == 1

    def test_duplication_executes_twice(self):
        bus, _, metrics = build(FaultProfile(duplication=0.999), seed=5)
        executed = []
        bus.register("srv", lambda op, payload: executed.append(1))
        arrived, _ = bus.transmit("srv", "op", None)
        assert arrived
        assert executed == [1, 1]
        assert metrics.get("rpc.duplicated_executions") == 1

    def test_reorder_parks_request_and_times_out_sender(self):
        bus, _, metrics = build(FaultProfile(reorder=0.999), seed=2)
        executed = []
        bus.register("srv", lambda op, payload: executed.append(payload))
        arrived, _ = bus.transmit("srv", "put", "a")
        assert not arrived
        assert executed == []
        assert bus.pending_delayed() == 1
        assert metrics.get("rpc.requests_delayed") == 1

    def test_parked_request_executes_after_a_later_handler(self):
        """The whole point of reorder injection: the delayed request
        really lands *after* an operation issued after it."""
        # Under seed 1 the first transmit is parked, the second delivers.
        bus, _, metrics = build(FaultProfile(reorder=0.5), seed=1)
        executed = []
        bus.register("srv", lambda op, payload: executed.append(payload))
        arrived, _ = bus.transmit("srv", "put", "first")
        assert not arrived
        arrived, _ = bus.transmit("srv", "put", "second")
        assert arrived
        # The drain ran inside the second transmit, after its handler:
        # true out-of-order execution, no explicit drain call needed.
        assert executed == ["second", "first"]
        assert bus.pending_delayed() == 0
        assert metrics.get("rpc.reordered_executions") == 1

    def test_drain_delayed_drops_requests_for_down_endpoints(self):
        bus, _, metrics = build(FaultProfile(reorder=0.999), seed=2)
        bus.register("srv", lambda op, payload: None)
        bus.transmit("srv", "put", "a")
        assert bus.pending_delayed() == 1
        bus.set_down("srv")
        assert bus.drain_delayed() == 0
        assert bus.pending_delayed() == 0
        assert metrics.get("rpc.requests_lost") == 1
        assert metrics.get("rpc.reordered_executions") == 0

    def test_seeded_runs_are_deterministic(self):
        outcomes = []
        for _ in range(2):
            bus, _, _ = build(FaultProfile(request_loss=0.5), seed=11)
            bus.register("srv", lambda op, payload: None)
            outcomes.append(
                [bus.transmit("srv", "op", None)[0] for _ in range(20)]
            )
        assert outcomes[0] == outcomes[1]
