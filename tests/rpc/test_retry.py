"""Backoff and circuit breaking: policy math, state machine, client."""

import random

import pytest

from repro.common.clock import SimClock
from repro.common.errors import CircuitOpenError
from repro.common.metrics import Metrics
from repro.rpc.bus import MessageBus
from repro.rpc.endpoint import RpcClient
from repro.rpc.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BackoffPolicy,
    BreakerPolicy,
    CircuitBreaker,
)


class TestBackoffPolicy:
    def test_deterministic_schedule_without_jitter(self):
        policy = BackoffPolicy(base_us=1000, multiplier=2.0, max_us=8000, jitter=0.0)
        rng = random.Random(0)
        assert [policy.delay_us(n, rng) for n in (1, 2, 3, 4, 5)] == [
            1000,
            2000,
            4000,
            8000,
            8000,  # capped at max_us
        ]

    def test_jitter_only_ever_shrinks_the_delay(self):
        policy = BackoffPolicy(base_us=1000, multiplier=2.0, max_us=64000, jitter=0.5)
        rng = random.Random(42)
        for failures in range(1, 10):
            ceiling = min(64000, 1000 * 2 ** (failures - 1))
            delay = policy.delay_us(failures, rng)
            # max_us stays a hard bound usable in availability budgets.
            assert ceiling * 0.5 <= delay <= ceiling

    def test_seeded_jitter_is_reproducible(self):
        policy = BackoffPolicy()
        a = [policy.delay_us(n, random.Random(9)) for n in (1, 2, 3)]
        b = [policy.delay_us(n, random.Random(9)) for n in (1, 2, 3)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_us=100, max_us=50)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BreakerPolicy(threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_us=-1)


class _Listener:
    def __init__(self):
        self.events = []

    def on_breaker_open(self, destination):
        self.events.append(("open", destination))

    def on_breaker_close(self, destination):
        self.events.append(("close", destination))


def build_breaker(threshold=3, cooldown_us=1000):
    clock, metrics, listener = SimClock(), Metrics(), _Listener()
    breaker = CircuitBreaker(
        BreakerPolicy(threshold=threshold, cooldown_us=cooldown_us),
        clock,
        metrics,
        listener=listener,
    )
    return breaker, clock, metrics, listener


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _, metrics, listener = build_breaker(threshold=3)
        breaker.record_failure("srv")
        breaker.record_failure("srv")
        assert breaker.state("srv") == CLOSED
        breaker.record_failure("srv")
        assert breaker.state("srv") == OPEN
        assert breaker.is_open("srv")
        assert metrics.get("rpc.breaker_opens") == 1
        assert listener.events == [("open", "srv")]

    def test_success_resets_the_failure_count(self):
        breaker, _, _, _ = build_breaker(threshold=2)
        breaker.record_failure("srv")
        breaker.record_success("srv")
        breaker.record_failure("srv")
        assert breaker.state("srv") == CLOSED

    def test_open_circuit_rejects_until_cooldown(self):
        breaker, clock, metrics, _ = build_breaker(threshold=1, cooldown_us=1000)
        breaker.record_failure("srv")
        assert not breaker.allow("srv")
        assert metrics.get("rpc.breaker_rejections") == 1
        clock.advance_us(999)
        assert not breaker.allow("srv")
        # Cooldown elapsed: exactly one half-open probe gets through.
        clock.advance_us(1)
        assert breaker.allow("srv")
        assert breaker.state("srv") == HALF_OPEN
        assert metrics.get("rpc.breaker_probes") == 1

    def test_successful_probe_closes_and_notifies(self):
        breaker, clock, metrics, listener = build_breaker(
            threshold=1, cooldown_us=100
        )
        breaker.record_failure("srv")
        clock.advance_us(100)
        assert breaker.allow("srv")
        breaker.record_success("srv")
        assert breaker.state("srv") == CLOSED
        assert metrics.get("rpc.breaker_closes") == 1
        assert listener.events == [("open", "srv"), ("close", "srv")]

    def test_failed_probe_reopens_immediately(self):
        breaker, clock, metrics, _ = build_breaker(threshold=3, cooldown_us=100)
        for _ in range(3):
            breaker.record_failure("srv")
        clock.advance_us(100)
        assert breaker.allow("srv")
        # One failure suffices in HALF_OPEN — no fresh threshold count.
        breaker.record_failure("srv")
        assert breaker.state("srv") == OPEN
        assert metrics.get("rpc.breaker_reopens") == 1
        # The cooldown restarted at the re-open instant.
        assert not breaker.allow("srv")

    def test_destinations_are_independent(self):
        breaker, _, _, _ = build_breaker(threshold=1)
        breaker.record_failure("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")
        assert breaker.allow("b")


def build_client(**kwargs):
    clock, metrics = SimClock(), Metrics()
    bus = MessageBus(clock, metrics)
    breaker = CircuitBreaker(
        BreakerPolicy(threshold=3, cooldown_us=500_000), clock, metrics
    )
    client = RpcClient(bus, breaker=breaker, **kwargs)
    return client, bus, clock, metrics


class TestRpcClientRetry:
    def test_breaker_trips_mid_call_and_stops_hammering(self):
        client, bus, _, metrics = build_client(max_attempts=8)
        bus.register("srv", lambda op, payload: payload)
        bus.set_down("srv")
        with pytest.raises(CircuitOpenError):
            client.call("srv", "op", None)
        # Exactly threshold attempts crossed the bus, not the budget.
        assert metrics.get("rpc.messages") == 3

    def test_open_circuit_fails_fast_without_time_or_messages(self):
        client, bus, clock, metrics = build_client()
        bus.register("srv", lambda op, payload: payload)
        bus.set_down("srv")
        with pytest.raises(CircuitOpenError):
            client.call("srv", "op", None)
        before_us, before_messages = clock.now_us, metrics.get("rpc.messages")
        with pytest.raises(CircuitOpenError):
            client.call("srv", "op", None)
        assert clock.now_us == before_us
        assert metrics.get("rpc.messages") == before_messages
        assert metrics.get("rpc.breaker_rejections") == 1

    def test_recovers_after_cooldown_probe(self):
        client, bus, clock, _ = build_client()
        bus.register("srv", lambda op, payload: ("ok", payload * 2))
        bus.set_down("srv")
        with pytest.raises(CircuitOpenError):
            client.call("srv", "op", 1)
        bus.set_down("srv", False)
        clock.advance_us(500_000)
        assert client.call("srv", "op", 21) == 42
        assert client.breaker.state("srv") == CLOSED

    def test_backoff_waits_are_recorded_and_bounded(self):
        clock, metrics = SimClock(), Metrics()
        bus = MessageBus(clock, metrics)
        backoff = BackoffPolicy(base_us=1000, multiplier=2.0, max_us=4000, jitter=0.5)
        client = RpcClient(
            bus, timeout_us=10_000, max_attempts=4, backoff=backoff, seed=7
        )
        bus.register("srv", lambda op, payload: payload)
        bus.set_down("srv")
        with pytest.raises(Exception):
            client.call("srv", "op", None)
        histogram = metrics.histogram("rpc.backoff_us")
        assert histogram["count"] == 4
        # Every recorded wait respects the hard max_us bound.
        assert all(s <= 4000 for s in metrics.histogram_samples("rpc.backoff_us"))
        # Total elapsed = latency + timeouts + backoff, never more than
        # attempts * (timeout + max backoff) + send latencies.
        assert clock.now_us <= 4 * (10_000 + 4000) + 4 * 500

    def test_backoff_schedule_is_seeded(self):
        def run():
            clock, metrics = SimClock(), Metrics()
            bus = MessageBus(clock, metrics)
            client = RpcClient(
                bus, max_attempts=5, backoff=BackoffPolicy(), seed=13
            )
            bus.register("srv", lambda op, payload: payload)
            bus.set_down("srv")
            with pytest.raises(Exception):
                client.call("srv", "op", None)
            return clock.now_us

        assert run() == run()
