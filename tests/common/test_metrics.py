"""The counter registry."""

from repro.common.metrics import Metrics


class TestMetrics:
    def test_missing_counter_is_zero(self):
        assert Metrics().get("nope") == 0

    def test_add_default_one(self):
        metrics = Metrics()
        metrics.add("disk.0.reads")
        metrics.add("disk.0.reads")
        assert metrics.get("disk.0.reads") == 2

    def test_add_amount(self):
        metrics = Metrics()
        metrics.add("bytes", 100)
        metrics.add("bytes", -40)
        assert metrics.get("bytes") == 60

    def test_total_by_prefix(self):
        metrics = Metrics()
        metrics.add("disk.0.reads", 3)
        metrics.add("disk.1.reads", 4)
        metrics.add("rpc.messages", 9)
        assert metrics.total("disk.") == 7

    def test_snapshot_and_diff(self):
        metrics = Metrics()
        metrics.add("a", 5)
        before = metrics.snapshot()
        metrics.add("a", 2)
        metrics.add("b", 1)
        assert metrics.diff(before) == {"a": 2, "b": 1}

    def test_snapshot_filtered(self):
        metrics = Metrics()
        metrics.add("x.one")
        metrics.add("y.two")
        assert metrics.snapshot(prefixes=["x."]) == {"x.one": 1}

    def test_snapshot_is_a_copy(self):
        metrics = Metrics()
        metrics.add("a")
        snap = metrics.snapshot()
        metrics.add("a")
        assert snap["a"] == 1

    def test_reset(self):
        metrics = Metrics()
        metrics.add("a", 3)
        metrics.reset()
        assert metrics.get("a") == 0
