"""The counter registry."""

from repro.common.clock import SimClock
from repro.common.metrics import Metrics, prefix_matches


class TestMetrics:
    def test_missing_counter_is_zero(self):
        assert Metrics().get("nope") == 0

    def test_add_default_one(self):
        metrics = Metrics()
        metrics.add("disk.0.reads")
        metrics.add("disk.0.reads")
        assert metrics.get("disk.0.reads") == 2

    def test_add_amount(self):
        metrics = Metrics()
        metrics.add("bytes", 100)
        metrics.add("bytes", -40)
        assert metrics.get("bytes") == 60

    def test_total_by_prefix(self):
        metrics = Metrics()
        metrics.add("disk.0.reads", 3)
        metrics.add("disk.1.reads", 4)
        metrics.add("rpc.messages", 9)
        assert metrics.total("disk.") == 7

    def test_snapshot_and_diff(self):
        metrics = Metrics()
        metrics.add("a", 5)
        before = metrics.snapshot()
        metrics.add("a", 2)
        metrics.add("b", 1)
        assert metrics.diff(before) == {"a": 2, "b": 1}

    def test_snapshot_filtered(self):
        metrics = Metrics()
        metrics.add("x.one")
        metrics.add("y.two")
        assert metrics.snapshot(prefixes=["x."]) == {"x.one": 1}

    def test_snapshot_is_a_copy(self):
        metrics = Metrics()
        metrics.add("a")
        snap = metrics.snapshot()
        metrics.add("a")
        assert snap["a"] == 1

    def test_reset(self):
        metrics = Metrics()
        metrics.add("a", 3)
        metrics.reset()
        assert metrics.get("a") == 0

    def test_diff_reports_negative_delta(self):
        metrics = Metrics()
        metrics.add("pool.free", 10)
        before = metrics.snapshot()
        metrics.add("pool.free", -4)
        assert metrics.diff(before) == {"pool.free": -4}

    def test_diff_ignores_unchanged(self):
        metrics = Metrics()
        metrics.add("a", 1)
        before = metrics.snapshot()
        metrics.add("a", 3)
        metrics.add("a", -3)
        assert metrics.diff(before) == {}


class TestPrefixMatching:
    """Regression: prefix selection must be dot-segment aware.

    The original raw ``startswith`` made ``total("disk.1")`` silently
    absorb ``disk.10.*`` — an off-by-an-order bug in any multi-disk
    experiment with ten or more disks."""

    def test_total_does_not_cross_segment_boundary(self):
        metrics = Metrics()
        metrics.add("disk.1.references", 3)
        metrics.add("disk.10.references", 100)
        metrics.add("disk.11.references", 200)
        assert metrics.total("disk.1") == 3

    def test_total_includes_exact_name(self):
        metrics = Metrics()
        metrics.add("rpc.messages", 5)
        assert metrics.total("rpc.messages") == 5

    def test_total_trailing_dot_matches_subtree_only(self):
        metrics = Metrics()
        metrics.add("disk.1.references", 3)
        metrics.add("disk.1", 7)  # exact name: not under "disk.1."
        assert metrics.total("disk.1.") == 3

    def test_snapshot_prefix_is_segment_aware(self):
        metrics = Metrics()
        metrics.add("disk.1.reads", 1)
        metrics.add("disk.10.reads", 1)
        assert metrics.snapshot(prefixes=["disk.1"]) == {"disk.1.reads": 1}

    def test_prefix_matches_helper(self):
        assert prefix_matches("disk.1.reads", "disk.1")
        assert prefix_matches("disk.1", "disk.1")
        assert not prefix_matches("disk.10.reads", "disk.1")
        assert prefix_matches("disk.10.reads", "disk.")


class TestHistograms:
    def test_empty_histogram_is_all_zero(self):
        summary = Metrics().histogram("disk.0.service_us")
        assert summary == {"count": 0, "min": 0, "max": 0, "sum": 0,
                           "p50": 0, "p95": 0}

    def test_observe_summary(self):
        metrics = Metrics()
        for value in (5, 1, 3, 2, 4):
            metrics.observe("disk.0.service_us", value)
        summary = metrics.histogram("disk.0.service_us")
        assert summary["count"] == 5
        assert summary["min"] == 1
        assert summary["max"] == 5
        assert summary["sum"] == 15
        assert summary["p50"] == 3

    def test_nearest_rank_p95_of_twenty(self):
        """ceil(0.95 * 20) = 19 exactly — a float implementation rounds
        this to 20 on some platforms; the integer rule must not."""
        metrics = Metrics()
        for value in range(1, 21):
            metrics.observe("x.us", value)
        assert metrics.histogram("x.us")["p95"] == 19

    def test_single_sample_quantiles(self):
        metrics = Metrics()
        metrics.observe("x.us", 42)
        summary = metrics.histogram("x.us")
        assert summary["p50"] == 42
        assert summary["p95"] == 42

    def test_observe_truncates_floats(self):
        metrics = Metrics()
        metrics.observe("x.us", 3.9)
        assert metrics.histogram("x.us")["max"] == 3

    def test_timer_records_simulated_elapsed(self):
        metrics = Metrics()
        clock = SimClock()
        with metrics.timer("disk.0.get_us", clock):
            clock.advance_us(125)
        assert metrics.histogram_samples("disk.0.get_us") == [125]

    def test_timer_records_on_exception(self):
        metrics = Metrics()
        clock = SimClock()
        try:
            with metrics.timer("disk.0.get_us", clock):
                clock.advance_us(9)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert metrics.histogram_samples("disk.0.get_us") == [9]

    def test_histogram_names_sorted_nonempty_only(self):
        metrics = Metrics()
        metrics.observe("b.us", 1)
        metrics.observe("a.us", 1)
        assert metrics.histogram_names() == ["a.us", "b.us"]

    def test_quantiles_deterministic_across_identical_runs(self):
        def run():
            import random
            rng = random.Random(1234)
            metrics = Metrics()
            for _ in range(500):
                metrics.observe("disk.0.service_us", rng.randrange(1, 100_000))
            return metrics.histogram("disk.0.service_us")

        assert run() == run()

    def test_reset_clears_histograms(self):
        metrics = Metrics()
        metrics.observe("x.us", 1)
        metrics.reset()
        assert metrics.histogram("x.us")["count"] == 0


class TestGauges:
    def test_missing_gauge_is_zero(self):
        assert Metrics().get_gauge("pool.free_blocks") == 0

    def test_last_write_wins(self):
        metrics = Metrics()
        metrics.gauge("pool.free_blocks", 10)
        metrics.gauge("pool.free_blocks", 7)
        assert metrics.get_gauge("pool.free_blocks") == 7

    def test_gauges_returns_copy(self):
        metrics = Metrics()
        metrics.gauge("pool.free_blocks", 1)
        copy = metrics.gauges()
        metrics.gauge("pool.free_blocks", 2)
        assert copy == {"pool.free_blocks": 1}

    def test_reset_clears_gauges(self):
        metrics = Metrics()
        metrics.gauge("pool.free_blocks", 3)
        metrics.reset()
        assert metrics.get_gauge("pool.free_blocks") == 0


class TestTracking:
    def test_collects_instances_built_inside_block(self):
        with Metrics.tracking() as collected:
            inner = Metrics()
        outer = Metrics()
        assert collected == [inner]
        assert outer not in collected

    def test_nested_blocks_restore_outer_collector(self):
        with Metrics.tracking() as outer_collected:
            with Metrics.tracking() as inner_collected:
                inner = Metrics()
            after = Metrics()
        assert inner_collected == [inner]
        assert outer_collected == [after]

    def test_restored_after_exception(self):
        try:
            with Metrics.tracking():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert Metrics._live is None


class TestHandles:
    def test_counter_handle_feeds_every_read_path(self):
        metrics = Metrics()
        handle = metrics.counter("disk.0.reads")
        handle.add()
        handle.add(4)
        assert metrics.get("disk.0.reads") == 5
        assert metrics.total("disk.") == 5
        assert metrics.snapshot()["disk.0.reads"] == 5
        assert metrics.diff({})["disk.0.reads"] == 5

    def test_handle_and_named_add_share_one_counter(self):
        metrics = Metrics()
        handle = metrics.counter("disk.0.reads")
        handle.add()
        metrics.add("disk.0.reads")
        assert metrics.get("disk.0.reads") == 2

    def test_histogram_handle_observe_and_extend(self):
        metrics = Metrics()
        handle = metrics.histogram_handle("disk.0.service_us")
        handle.observe(10)
        handle.extend([20, 30])
        metrics.observe("disk.0.service_us", 40)
        assert metrics.histogram_samples("disk.0.service_us") == [10, 20, 30, 40]

    def test_gauge_handle_last_write_wins(self):
        metrics = Metrics()
        handle = metrics.gauge_handle("disk.0.utilization")
        handle.set(10)
        handle.set(90)
        assert metrics.get_gauge("disk.0.utilization") == 90

    def test_handles_survive_reset(self):
        metrics = Metrics()
        counter = metrics.counter("disk.0.reads")
        gauge = metrics.gauge_handle("disk.0.utilization")
        counter.add()
        gauge.set(5)
        metrics.reset()
        counter.add()
        gauge.set(7)
        assert metrics.get("disk.0.reads") == 1
        assert metrics.get_gauge("disk.0.utilization") == 7

    def test_summary_cache_reused_until_new_sample(self):
        metrics = Metrics()
        handle = metrics.histogram_handle("h.us")
        handle.observe(3)
        first = metrics.histogram("h.us")
        assert metrics.histogram("h.us") == first
        handle.observe(100)
        assert metrics.histogram("h.us")["count"] == 2


class TestDeferredFlush:
    def _registry_with_batch(self):
        metrics = Metrics()
        counter = metrics.counter("disk.0.reads")
        histogram = metrics.histogram_handle("disk.0.service_us")
        gauge = metrics.gauge_handle("disk.0.utilization")
        batch = {"reads": 0, "samples": [], "util": None}

        def drain():
            if batch["reads"]:
                counter.add(batch["reads"])
                batch["reads"] = 0
            if batch["samples"]:
                histogram.extend(batch["samples"])
                batch["samples"].clear()
            if batch["util"] is not None:
                gauge.set(batch["util"])
                batch["util"] = None

        metrics.register_flush(drain)
        return metrics, batch

    def test_reads_drain_the_batch_first(self):
        metrics, batch = self._registry_with_batch()
        batch["reads"] = 3
        batch["samples"] = [7, 9]
        batch["util"] = 42
        assert metrics.get("disk.0.reads") == 3
        assert metrics.histogram_samples("disk.0.service_us") == [7, 9]
        assert metrics.get_gauge("disk.0.utilization") == 42

    def test_every_read_entry_point_flushes(self):
        probes = [
            lambda m: m.get("disk.0.reads"),
            lambda m: m.total("disk."),
            lambda m: m.snapshot(),
            lambda m: m.diff({}),
            lambda m: m.histogram("disk.0.service_us"),
            lambda m: m.histogram_names(),
            lambda m: m.histogram_samples("disk.0.service_us"),
            lambda m: m.get_gauge("disk.0.utilization"),
            lambda m: m.gauges(),
        ]
        for probe in probes:
            metrics, batch = self._registry_with_batch()
            batch["reads"] = 1
            probe(metrics)
            assert batch["reads"] == 0, probe

    def test_reset_drains_then_clears(self):
        metrics, batch = self._registry_with_batch()
        batch["reads"] = 5
        metrics.reset()
        # Pre-reset activity was consumed by the reset, not leaked
        # into the new epoch.
        assert batch["reads"] == 0
        assert metrics.get("disk.0.reads") == 0
