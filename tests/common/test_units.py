"""Unit arithmetic: the paper's fragment/block relationships."""

import pytest

from repro.common.units import (
    BLOCK_SIZE,
    FRAGMENT_SIZE,
    FRAGMENTS_PER_BLOCK,
    SECTOR_SIZE,
    SECTORS_PER_BLOCK,
    SECTORS_PER_FRAGMENT,
    blocks_for_bytes,
    fragments_for_bytes,
)


class TestUnitConstants:
    def test_fragment_is_2k(self):
        assert FRAGMENT_SIZE == 2048

    def test_block_is_8k(self):
        assert BLOCK_SIZE == 8192

    def test_four_contiguous_fragments_make_one_block(self):
        """Paper section 4, verbatim relationship."""
        assert FRAGMENTS_PER_BLOCK == 4
        assert FRAGMENT_SIZE * 4 == BLOCK_SIZE

    def test_sector_relationships(self):
        assert SECTOR_SIZE == 512
        assert SECTORS_PER_FRAGMENT * SECTOR_SIZE == FRAGMENT_SIZE
        assert SECTORS_PER_BLOCK * SECTOR_SIZE == BLOCK_SIZE


class TestFragmentsForBytes:
    def test_zero_bytes_still_occupy_one_fragment(self):
        assert fragments_for_bytes(0) == 1

    def test_exact_fragment(self):
        assert fragments_for_bytes(FRAGMENT_SIZE) == 1

    def test_one_byte_over(self):
        assert fragments_for_bytes(FRAGMENT_SIZE + 1) == 2

    def test_one_byte(self):
        assert fragments_for_bytes(1) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fragments_for_bytes(-1)


class TestBlocksForBytes:
    def test_zero_bytes_zero_blocks(self):
        assert blocks_for_bytes(0) == 0

    def test_exact_block(self):
        assert blocks_for_bytes(BLOCK_SIZE) == 1

    def test_partial_block_rounds_up(self):
        assert blocks_for_bytes(BLOCK_SIZE + 1) == 2
        assert blocks_for_bytes(1) == 1

    def test_half_megabyte_is_64_blocks(self):
        """The FIT's direct area: 64 descriptors cover 512 KB."""
        assert blocks_for_bytes(512 * 1024) == 64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_for_bytes(-5)
