"""Identifiers: system names, descriptors, redirection constants."""

from repro.common.ids import (
    DEVICE_DESCRIPTOR_LIMIT,
    REDIRECTED_STDERR,
    REDIRECTED_STDIN,
    REDIRECTED_STDOUT,
    SystemName,
    descriptor_is_device,
    descriptor_is_file,
    monotonic_id_factory,
)


class TestSystemName:
    def test_equality_is_structural(self):
        assert SystemName(1, 2, 3) == SystemName(1, 2, 3)
        assert SystemName(1, 2, 3) != SystemName(1, 2, 4)

    def test_hashable(self):
        assert len({SystemName(0, 1, 1), SystemName(0, 1, 1)}) == 1

    def test_str(self):
        assert str(SystemName(2, 100, 7)) == "sys:2:100:7"


class TestDescriptorBoundary:
    def test_limit_is_paper_value(self):
        """Section 3 picks 100 000 as the device/file boundary."""
        assert DEVICE_DESCRIPTOR_LIMIT == 100_000

    def test_redirection_descriptors(self):
        """stdout -> 100001, stdin -> 100002, stderr -> 100003."""
        assert REDIRECTED_STDOUT == 100_001
        assert REDIRECTED_STDIN == 100_002
        assert REDIRECTED_STDERR == 100_003

    def test_device_classification(self):
        assert descriptor_is_device(0)
        assert descriptor_is_device(99_999)
        assert not descriptor_is_device(100_000)
        assert not descriptor_is_device(-1)

    def test_file_classification(self):
        assert descriptor_is_file(100_001)
        assert not descriptor_is_file(100_000)
        assert not descriptor_is_file(50)


class TestMonotonicIds:
    def test_sequence(self):
        next_id = monotonic_id_factory()
        assert [next_id() for _ in range(4)] == [1, 2, 3, 4]

    def test_custom_start(self):
        next_id = monotonic_id_factory(10)
        assert next_id() == 10

    def test_factories_independent(self):
        a = monotonic_id_factory()
        b = monotonic_id_factory()
        a()
        assert b() == 1
