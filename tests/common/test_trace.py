"""The cross-layer tracer: span trees, ring buffer, disabled path."""

import pytest

from repro.common.clock import SimClock
from repro.common.trace import NULL_SPAN, NULL_TRACER, Tracer


def build(capacity=4096):
    clock = SimClock()
    return Tracer(clock, capacity=capacity, enabled=True), clock


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_handle(self):
        tracer = Tracer()
        assert tracer.span("simdisk", "read") is NULL_SPAN
        assert tracer.span("rpc", "transmit") is NULL_SPAN

    def test_null_handle_accepts_everything_silently(self):
        with NULL_TRACER.span("file_agent", "read") as span:
            span.annotate("k", "v")
            span.annotate_add("n", 3)
        NULL_TRACER.annotate("k", "v")
        NULL_TRACER.annotate_add("n")
        assert NULL_TRACER.spans() == []

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("simdisk", "read"):
            pass
        assert tracer.spans() == []
        assert tracer.roots() == []

    def test_enable_requires_clock(self):
        with pytest.raises(ValueError):
            Tracer(enabled=True)
        with pytest.raises(ValueError):
            Tracer().enable()

    def test_disable_then_enable_round_trip(self):
        tracer, clock = build()
        tracer.disable()
        with tracer.span("simdisk", "read"):
            pass
        assert tracer.spans() == []
        tracer.enable()
        with tracer.span("simdisk", "read"):
            pass
        assert len(tracer.spans()) == 1


class TestNesting:
    def test_child_inherits_trace_id_and_parent(self):
        tracer, clock = build()
        with tracer.span("file_agent", "read"):
            with tracer.span("file_service", "read"):
                pass
        child, root = tracer.spans()
        assert root.parent_id is None
        assert root.trace_id == root.span_id
        assert child.parent_id == root.span_id
        assert child.trace_id == root.span_id

    def test_sibling_requests_get_distinct_trace_ids(self):
        tracer, clock = build()
        with tracer.span("file_agent", "read"):
            pass
        with tracer.span("file_agent", "write"):
            pass
        first, second = tracer.roots()
        assert first.trace_id != second.trace_id

    def test_span_ids_are_monotonic(self):
        tracer, clock = build()
        for _ in range(5):
            with tracer.span("simdisk", "read"):
                pass
        ids = [span.span_id for span in tracer.spans()]
        assert ids == sorted(ids) == list(range(5))

    def test_durations_come_from_simulated_clock(self):
        tracer, clock = build()
        with tracer.span("disk_service", "get"):
            clock.advance_us(250)
        (span,) = tracer.spans()
        assert span.duration_us == 250
        assert span.start_us == 0
        assert span.end_us == 250

    def test_annotations_via_kwargs_handle_and_tracer(self):
        tracer, clock = build()
        with tracer.span("disk_service", "get", disk="0") as handle:
            handle.annotate("source", "main")
            tracer.annotate("track_cache", "hit")
            tracer.annotate_add("sectors", 4)
            tracer.annotate_add("sectors", 2)
        (span,) = tracer.spans()
        assert span.annotations == {
            "disk": "0", "source": "main", "track_cache": "hit", "sectors": 6,
        }

    def test_annotate_outside_any_span_is_a_noop(self):
        tracer, clock = build()
        tracer.annotate("k", "v")
        tracer.annotate_add("n")
        assert tracer.spans() == []

    def test_layer_path_follows_primary_chain(self):
        tracer, clock = build()
        with tracer.span("file_agent", "read") as root_handle:
            with tracer.span("file_service", "read"):
                with tracer.span("disk_service", "get"):
                    with tracer.span("simdisk", "read"):
                        pass
        root = tracer.roots()[0]
        assert tracer.layer_path(root.trace_id) == [
            "file_agent", "file_service", "disk_service", "simdisk",
        ]

    def test_children_and_trace_lookup(self):
        tracer, clock = build()
        with tracer.span("file_service", "read"):
            with tracer.span("disk_service", "get"):
                pass
            with tracer.span("disk_service", "get"):
                pass
        root = tracer.roots()[0]
        assert len(tracer.children(root)) == 2
        assert len(tracer.trace(root.trace_id)) == 3


class TestRingBuffer:
    def test_capacity_bounds_completed_spans(self):
        tracer, clock = build(capacity=3)
        for index in range(10):
            with tracer.span("simdisk", "read", index=index):
                pass
        spans = tracer.spans()
        assert len(spans) == 3
        assert [span.annotations["index"] for span in spans] == [7, 8, 9]

    def test_reset_drops_everything(self):
        tracer, clock = build()
        with tracer.span("simdisk", "read"):
            pass
        tracer.reset()
        assert tracer.spans() == []


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run():
            tracer, clock = build()
            for index in range(4):
                with tracer.span("file_agent", "read", index=index):
                    clock.advance_us(10 + index)
                    with tracer.span("file_service", "read"):
                        clock.advance_us(5)
            return [
                (s.span_id, s.parent_id, s.trace_id, s.layer, s.op,
                 s.start_us, s.end_us, tuple(sorted(s.annotations.items())))
                for s in tracer.spans()
            ]

        assert run() == run()
