"""The simulated clock."""

import pytest

from repro.common.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0

    def test_custom_start(self):
        assert SimClock(500).now_us == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_advance(self):
        clock = SimClock()
        clock.advance_us(100)
        assert clock.now_us == 100

    def test_fractional_advance_rounds_up(self):
        clock = SimClock()
        clock.advance_us(0.25)
        assert clock.now_us == 1

    def test_advance_accumulates(self):
        clock = SimClock()
        for _ in range(10):
            clock.advance_us(7)
        assert clock.now_us == 70

    def test_cannot_go_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_us(-1)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(1234)
        assert clock.now_us == 1234

    def test_advance_to_past_is_noop(self):
        clock = SimClock(1000)
        clock.advance_to(500)
        assert clock.now_us == 1000

    def test_now_ms(self):
        clock = SimClock(2500)
        assert clock.now_ms == 2.5
