"""Exception hierarchy relationships error-handling code relies on."""

import pytest

from repro.common.errors import (
    BadAddressError,
    DiskCrashedError,
    DiskError,
    DiskFullError,
    FileNotFoundError_,
    FileServiceError,
    LockTimeoutError,
    RhodosError,
    RpcTimeoutError,
    SerializabilityError,
    TransactionAbortedError,
    TransactionError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            DiskError,
            DiskFullError,
            BadAddressError,
            DiskCrashedError,
            FileServiceError,
            FileNotFoundError_,
            TransactionError,
            TransactionAbortedError,
            LockTimeoutError,
            SerializabilityError,
            RpcTimeoutError,
        ],
    )
    def test_everything_is_a_rhodos_error(self, exc_type):
        assert issubclass(exc_type, RhodosError)

    def test_disk_branch(self):
        assert issubclass(DiskFullError, DiskError)
        assert issubclass(BadAddressError, DiskError)
        assert issubclass(DiskCrashedError, DiskError)

    def test_lock_timeout_is_an_abort(self):
        """Timeout-aborted transactions surface through the abort path."""
        assert issubclass(LockTimeoutError, TransactionAbortedError)

    def test_lock_timeout_reason(self):
        try:
            raise LockTimeoutError("txn 5 timed out")
        except TransactionAbortedError as exc:
            assert exc.reason == "lock-timeout"

    def test_abort_default_reason(self):
        assert TransactionAbortedError("x").reason == "aborted"

    def test_catching_rhodos_error_catches_all(self):
        with pytest.raises(RhodosError):
            raise DiskFullError("full")
