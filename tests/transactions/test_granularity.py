"""Locking granularity (E7): concurrency vs lock overhead."""

import pytest

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.simkernel.runner import InterleavedRunner, LockWaitPending
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator
from repro.transactions.lock_manager import TimeoutPolicy
from repro.workloads.transactions import (
    make_accounts_file,
    total_balance,
    transfer_script,
)
from tests.conftest import build_file_server

NAME = AttributedName.file("/bank")


def build(level):
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    coordinator = TransactionCoordinator(
        clock, metrics, policy=TimeoutPolicy(lt_us=2_000_000, max_renewals=4)
    )
    coordinator.register_volume(server)
    host = TransactionAgentHost("m0", naming, coordinator, clock, metrics)
    make_accounts_file(host, NAME, 1000, locking_level=level)
    return host, coordinator, clock, metrics


def run_mix(host, coordinator, clock, n_clients=4, repeats=3):
    def on_stall(now):
        next_expiry = coordinator.next_expiry_us()
        if next_expiry is None:
            return False
        clock.advance_to(next_expiry)
        coordinator.expire_locks(clock.now_us)
        return True

    runner = InterleavedRunner(
        clock,
        think_time_us=100,
        on_stall=on_stall,
        on_step=lambda now: coordinator.expire_locks(now),
    )
    # Disjoint account pairs: truly concurrent workload.
    for client in range(n_clients):
        runner.add_client(
            transfer_script(host, NAME, client * 10, client * 10 + 5),
            repeats=repeats,
        )
    return runner.run()


class TestConcurrencyByLevel:
    def test_record_locking_lets_disjoint_transfers_run_without_waits(self):
        """'The very purpose of fine granularity is to improve concurrency
        by allowing a transaction to lock only those data items it
        accesses' (section 6.1)."""
        host, coordinator, clock, metrics = build(LockingLevel.RECORD)
        report = run_mix(host, coordinator, clock)
        assert report.total_commits == 12
        assert report.total_lock_waits == 0

    def test_file_locking_serialises_everything(self):
        """'File level locking reduces concurrency, since operations are
        more likely to conflict.'"""
        host, coordinator, clock, metrics = build(LockingLevel.FILE)
        report = run_mix(host, coordinator, clock)
        assert report.total_commits == 12
        assert report.total_lock_waits > 0
        assert total_balance(host, NAME, 1000) == 1000 * 1000

    def test_page_locking_conflicts_within_a_page(self):
        """Accounts 0..1023 share pages; same-page transfers collide
        under page locking but not under record locking."""
        waits = {}
        for level in (LockingLevel.RECORD, LockingLevel.PAGE):
            host, coordinator, clock, metrics = build(level)
            report = run_mix(host, coordinator, clock)
            waits[level] = report.total_lock_waits
        # All four clients' accounts (0..35) live in page 0.
        assert waits[LockingLevel.PAGE] > waits[LockingLevel.RECORD]

    def test_lock_overhead_ranks_file_lowest(self):
        """'File level locking ... incurs low overhead due to locking,
        since there are fewer locks to manage.'"""
        grants = {}
        for level in (LockingLevel.RECORD, LockingLevel.FILE):
            host, coordinator, clock, metrics = build(level)
            run_mix(host, coordinator, clock)
            grants[level] = metrics.total("lock_manager.0.grants")
        assert grants[LockingLevel.FILE] <= grants[LockingLevel.RECORD]


class TestMixedAccess:
    def test_readers_share_under_every_level(self):
        for level in (LockingLevel.RECORD, LockingLevel.PAGE, LockingLevel.FILE):
            host, coordinator, clock, _ = build(level)
            t1, t2 = host.tbegin(), host.tbegin()
            d1 = host.topen(t1, NAME)
            d2 = host.topen(t2, NAME)
            assert host.tpread(t1, d1, 8, 0) == host.tpread(t2, d2, 8, 0)
            host.tend(t1)
            host.tend(t2)

    def test_writer_blocks_reader_at_matching_granularity(self):
        host, coordinator, clock, _ = build(LockingLevel.RECORD)
        t1, t2 = host.tbegin(), host.tbegin()
        d1 = host.topen(t1, NAME)
        d2 = host.topen(t2, NAME)
        host.tpwrite(t1, d1, b"12345678", 0)
        with pytest.raises(LockWaitPending):
            host.tpread(t2, d2, 8, 0)
        # A read of a *different* record sails through.
        assert host.tpread(t2, d2, 8, 800) is not None
        host.tend(t1)
        host.tend(t2)
