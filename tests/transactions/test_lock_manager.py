"""The lock manager: grants, queues, conversions, 2PL, LT/N timeouts."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import SerializabilityError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.transactions.lock_manager import (
    AcquireResult,
    LockManager,
    TimeoutPolicy,
)
from repro.transactions.locks import LockMode, file_item, record_item
from repro.transactions.transaction import (
    Transaction,
    TransactionPhase,
    TransactionStatus,
)

NAME = SystemName(0, 10, 1)
ITEM = record_item(NAME, 0, 100)


def build(lt_us=1000, max_renewals=3):
    clock = SimClock()
    manager = LockManager(
        clock, Metrics(), TimeoutPolicy(lt_us=lt_us, max_renewals=max_renewals)
    )
    return manager, clock


def txn(tid):
    return Transaction(tid=tid, machine_id="m0", process_id=0)


class TestGrants:
    def test_free_item_grants_any_mode(self):
        for mode in LockMode:
            manager, _ = build()
            assert manager.acquire(txn(1), ITEM, mode) is AcquireResult.GRANTED

    def test_readers_share(self):
        manager, _ = build()
        assert manager.acquire(txn(1), ITEM, LockMode.RO) is AcquireResult.GRANTED
        assert manager.acquire(txn(2), ITEM, LockMode.RO) is AcquireResult.GRANTED

    def test_single_iread_among_readers(self):
        manager, _ = build()
        manager.acquire(txn(1), ITEM, LockMode.RO)
        assert manager.acquire(txn(2), ITEM, LockMode.IR) is AcquireResult.GRANTED
        assert manager.acquire(txn(3), ITEM, LockMode.IR) is AcquireResult.WAITING

    def test_iread_blocks_new_readers(self):
        manager, _ = build()
        manager.acquire(txn(1), ITEM, LockMode.IR)
        assert manager.acquire(txn(2), ITEM, LockMode.RO) is AcquireResult.WAITING

    def test_iwrite_exclusive(self):
        manager, _ = build()
        manager.acquire(txn(1), ITEM, LockMode.IW)
        for mode in LockMode:
            assert manager.acquire(txn(2), ITEM, mode) is AcquireResult.WAITING

    def test_reacquire_held_lock_is_granted(self):
        manager, _ = build()
        transaction = txn(1)
        manager.acquire(transaction, ITEM, LockMode.IW)
        assert manager.acquire(transaction, ITEM, LockMode.RO) is (
            AcquireResult.GRANTED
        )

    def test_disjoint_records_do_not_interact(self):
        manager, _ = build()
        manager.acquire(txn(1), record_item(NAME, 0, 50), LockMode.IW)
        assert (
            manager.acquire(txn(2), record_item(NAME, 50, 50), LockMode.IW)
            is AcquireResult.GRANTED
        )


class TestConversion:
    def test_ir_to_iw_upgrade_when_alone(self):
        """'A transaction can set an Iwrite lock ... provided the data
        item is Iread locked by the same transaction.'"""
        manager, _ = build()
        transaction = txn(1)
        manager.acquire(transaction, ITEM, LockMode.IR)
        assert manager.acquire(transaction, ITEM, LockMode.IW) is (
            AcquireResult.GRANTED
        )
        assert manager.is_granted(transaction, ITEM, LockMode.IW)

    def test_upgrade_jumps_the_wait_queue(self):
        """A conversion must not wait behind queued strangers — that
        would deadlock the holder with its own waiters."""
        manager, _ = build()
        holder, waiter = txn(1), txn(2)
        manager.acquire(holder, ITEM, LockMode.IR)
        manager.acquire(waiter, ITEM, LockMode.IR)  # queued
        assert manager.acquire(holder, ITEM, LockMode.IW) is AcquireResult.GRANTED

    def test_upgrade_waits_for_other_readers(self):
        manager, _ = build()
        holder, reader = txn(1), txn(2)
        manager.acquire(reader, ITEM, LockMode.RO)
        manager.acquire(holder, ITEM, LockMode.IR)
        assert manager.acquire(holder, ITEM, LockMode.IW) is AcquireResult.WAITING
        # Reader releases: the conversion must be promoted.
        manager.release_all(reader)
        assert manager.is_granted(holder, ITEM, LockMode.IW)


class TestTwoPhaseRule:
    def test_acquire_in_unlock_phase_rejected(self):
        manager, _ = build()
        transaction = txn(1)
        transaction.phase = TransactionPhase.UNLOCKING
        with pytest.raises(SerializabilityError):
            manager.acquire(transaction, ITEM, LockMode.RO)

    def test_release_promotes_fifo(self):
        manager, _ = build()
        holder, first, second = txn(1), txn(2), txn(3)
        manager.acquire(holder, ITEM, LockMode.IW)
        manager.acquire(first, ITEM, LockMode.IW)
        manager.acquire(second, ITEM, LockMode.IW)
        manager.release_all(holder)
        assert manager.is_granted(first, ITEM, LockMode.IW)
        assert not manager.is_granted(second, ITEM, LockMode.IW)

    def test_release_promotes_reader_group(self):
        manager, _ = build()
        writer, r1, r2 = txn(1), txn(2), txn(3)
        manager.acquire(writer, ITEM, LockMode.IW)
        manager.acquire(r1, ITEM, LockMode.RO)
        manager.acquire(r2, ITEM, LockMode.RO)
        manager.release_all(writer)
        assert manager.is_granted(r1, ITEM, LockMode.RO)
        assert manager.is_granted(r2, ITEM, LockMode.RO)


class TestTimeouts:
    def test_uncontended_lock_renews(self):
        manager, clock = build(lt_us=1000, max_renewals=3)
        holder = txn(1)
        manager.acquire(holder, ITEM, LockMode.IW)
        clock.advance_us(1001)
        assert manager.expire(clock.now_us) == []
        assert holder.is_live

    def test_contended_lock_broken_at_first_expiry(self):
        """'After the expiry of LT, if no other transaction is competing
        ... allowed to remain invulnerable' — competitors break it."""
        manager, clock = build(lt_us=1000)
        holder, waiter = txn(1), txn(2)
        manager.acquire(holder, ITEM, LockMode.IW)
        manager.acquire(waiter, ITEM, LockMode.IW)
        clock.advance_us(1001)
        victims = manager.expire(clock.now_us)
        assert victims == [holder]
        assert holder.status is TransactionStatus.ABORTED
        assert holder.abort_reason == "lock-timeout"
        assert manager.is_granted(waiter, ITEM, LockMode.IW)  # promoted

    def test_nth_expiry_aborts_even_uncontended(self):
        """'After the Nth expiry of LT ... its lock is broken and the
        transaction is aborted regardless.'"""
        manager, clock = build(lt_us=1000, max_renewals=3)
        holder = txn(1)
        manager.acquire(holder, ITEM, LockMode.IW)
        for _ in range(2):
            clock.advance_us(1001)
            assert manager.expire(clock.now_us) == []
        clock.advance_us(1001)
        assert manager.expire(clock.now_us) == [holder]

    def test_lock_lives_at_most_n_times_lt(self):
        manager, clock = build(lt_us=1000, max_renewals=4)
        holder = txn(1)
        manager.acquire(holder, ITEM, LockMode.IW)
        granted_at = clock.now_us
        while holder.is_live:
            nxt = manager.next_expiry_us()
            assert nxt is not None
            clock.advance_to(nxt)
            manager.expire(clock.now_us)
        assert clock.now_us - granted_at <= 4 * 1000 + 4

    def test_next_expiry_none_when_idle(self):
        manager, _ = build()
        assert manager.next_expiry_us() is None

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            TimeoutPolicy(lt_us=0)
        with pytest.raises(ValueError):
            TimeoutPolicy(max_renewals=0)


class TestLockTableShape:
    def test_separate_table_per_level(self):
        """Paper section 6.5: one lock table per locking level."""
        manager, _ = build()
        transaction = txn(1)
        manager.acquire(transaction, record_item(NAME, 0, 10), LockMode.RO)
        manager.acquire(transaction, file_item(NAME), LockMode.RO)
        from repro.file_service.attributes import LockingLevel

        assert manager.tables[LockingLevel.RECORD].record_count() == 1
        assert manager.tables[LockingLevel.FILE].record_count() == 1
        assert manager.tables[LockingLevel.PAGE].record_count() == 0

    def test_get_lock_record_fields(self):
        manager, clock = build()
        transaction = txn(7)
        manager.acquire(transaction, ITEM, LockMode.IR, process_id=99)
        from repro.file_service.attributes import LockingLevel

        record = manager.tables[LockingLevel.RECORD].get_lock_record(7, ITEM)
        assert record is not None
        assert record.process_id == 99
        assert record.mode is LockMode.IR
        assert record.granted
        assert record.retry_count == 0
        assert record.item == ITEM
