"""The transaction agent: t* operations, isolation, dynamic lifecycle."""

import os

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    BadDescriptorError,
    InvalidTransactionStateError,
)
from repro.common.metrics import Metrics
from repro.file_service.attributes import LockingLevel, ServiceType
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.simkernel.runner import LockWaitPending
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator
from tests.conftest import build_file_server


def build():
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    coordinator = TransactionCoordinator(clock, metrics)
    coordinator.register_volume(server)
    host = TransactionAgentHost("m0", naming, coordinator, clock, metrics)
    return host, server, naming, coordinator, metrics


NAME = AttributedName.file("/txn/data")


class TestDynamicLifecycle:
    def test_agent_spawns_on_first_tbegin(self):
        """Paper section 6: 'the first request to initiate a transaction
        ... brings this process into existence'."""
        host, *_ = build()
        assert not host.agent_exists
        tid = host.tbegin()
        assert host.agent_exists
        host.tabort(tid)
        assert not host.agent_exists

    def test_agent_survives_until_last_transaction_ends(self):
        host, *_ = build()
        tid1 = host.tbegin()
        tid2 = host.tbegin()
        host.tabort(tid1)
        assert host.agent_exists
        host.tabort(tid2)
        assert not host.agent_exists

    def test_spawn_exit_metrics(self):
        host, _, _, _, metrics = build()
        for _ in range(3):
            tid = host.tbegin()
            host.tabort(tid)
        assert metrics.get("transaction_agent.m0.spawns") == 3
        assert metrics.get("transaction_agent.m0.exits") == 3

    def test_ops_require_an_agent(self):
        host, *_ = build()
        with pytest.raises(InvalidTransactionStateError):
            host.topen(1, NAME)


class TestCreateCommitAbort:
    def test_committed_create_persists(self):
        host, server, naming, *_ = build()
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME)
        host.twrite(tid, descriptor, b"durable")
        host.tend(tid)
        system_name = naming.resolve_file(NAME)
        assert server.read(system_name, 0, 7) == b"durable"
        assert server.get_attribute(system_name).service_type is (
            ServiceType.TRANSACTION
        )

    def test_aborted_create_vanishes(self):
        host, server, naming, *_ = build()
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME)
        host.twrite(tid, descriptor, b"ghost")
        host.tabort(tid)
        assert NAME not in naming

    def test_aborted_writes_discarded(self):
        host, server, naming, *_ = build()
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME)
        host.twrite(tid, descriptor, b"base")
        host.tend(tid)
        tid2 = host.tbegin()
        descriptor = host.topen(tid2, NAME)
        host.twrite(tid2, descriptor, b"XXXX")
        host.tabort(tid2)
        assert server.read(naming.resolve_file(NAME), 0, 4) == b"base"

    def test_commit_after_abort_rejected(self):
        host, *_ = build()
        tid = host.tbegin()
        host.tabort(tid)
        with pytest.raises(InvalidTransactionStateError):
            host.tend(tid)

    def test_tdelete_applies_at_commit(self):
        host, server, naming, *_ = build()
        tid = host.tbegin()
        host.tcreate(tid, NAME)
        host.tend(tid)
        system_name = naming.resolve_file(NAME)
        tid2 = host.tbegin()
        host.tdelete(tid2, NAME)
        host.tend(tid2)
        assert NAME not in naming
        assert not server.exists(system_name)

    def test_tdelete_undone_by_abort(self):
        host, server, naming, *_ = build()
        tid = host.tbegin()
        host.tcreate(tid, NAME)
        host.tend(tid)
        tid2 = host.tbegin()
        host.tdelete(tid2, NAME)
        host.tabort(tid2)
        assert NAME in naming or naming.resolve_file(NAME)


class TestIsolation:
    def test_read_your_own_writes(self):
        host, *_ = build()
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME)
        host.twrite(tid, descriptor, b"mine")
        assert host.tpread(tid, descriptor, 4, 0) == b"mine"
        host.tend(tid)

    def test_tentative_invisible_to_basic_service(self):
        """Tentative data items are 'invisible to other transactions'
        (section 6.2) — and to the basic service, until commit."""
        host, server, naming, *_ = build()
        tid = host.tbegin()
        host.tcreate(tid, NAME)
        host.tend(tid)
        system_name = naming.resolve_file(NAME)
        tid2 = host.tbegin()
        descriptor = host.topen(tid2, NAME)
        host.twrite(tid2, descriptor, b"pending!")
        assert server.read(system_name, 0, 8) == b""  # nothing yet
        host.tend(tid2)
        assert server.read(system_name, 0, 8) == b"pending!"

    def test_conflicting_writer_blocks(self):
        host, *_ = build()
        t1 = host.tbegin()
        d1 = host.tcreate(t1, NAME, locking_level=LockingLevel.PAGE)
        host.twrite(t1, d1, b"held")
        t2 = host.tbegin()
        with pytest.raises(LockWaitPending):
            host.topen(t2, NAME) and None
            d2 = host.topen(t2, NAME)
            host.tpread(t2, d2, 4, 0)
        host.tend(t1)
        host.tabort(t2)

    def test_tget_attribute_sees_tentative_size(self):
        host, *_ = build()
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME)
        host.twrite(tid, descriptor, b"x" * 5000)
        assert host.tget_attribute(tid, descriptor).file_size == 5000
        host.tend(tid)


class TestPositions:
    def test_tread_twrite_positions(self):
        host, *_ = build()
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME)
        host.twrite(tid, descriptor, b"0123456789")
        host.tlseek(tid, descriptor, 0)
        assert host.tread(tid, descriptor, 4) == b"0123"
        assert host.tread(tid, descriptor, 4) == b"4567"
        host.tend(tid)

    def test_tlseek_whences(self):
        host, *_ = build()
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME)
        host.twrite(tid, descriptor, b"0123456789")
        assert host.tlseek(tid, descriptor, -3, os.SEEK_END) == 7
        assert host.tread(tid, descriptor, 3) == b"789"
        host.tend(tid)

    def test_tclose_keeps_locks(self):
        """Closing a descriptor must not release locks — strict 2PL
        holds them until tend/tabort."""
        host, *_ = build()
        t1 = host.tbegin()
        d1 = host.tcreate(t1, NAME, locking_level=LockingLevel.PAGE)
        host.twrite(t1, d1, b"locked")
        host.tclose(t1, d1)
        t2 = host.tbegin()
        d2 = host.topen(t2, NAME)
        with pytest.raises(LockWaitPending):
            host.tpread(t2, d2, 4, 0)
        host.tend(t1)
        host.tabort(t2)

    def test_bad_descriptor(self):
        host, *_ = build()
        tid = host.tbegin()
        with pytest.raises(BadDescriptorError):
            host.tread(tid, 42, 1)
        host.tabort(tid)


class TestDefaultLockingLevel:
    def test_cold_files_default_to_page(self):
        host, server, naming, coordinator, _ = build()
        tid = host.tbegin()
        host.tcreate(tid, NAME)  # open_count_total == 0
        host.tend(tid)
        tid2 = host.tbegin()
        descriptor = host.topen(tid2, NAME)
        host.twrite(tid2, descriptor, b"x")
        assert coordinator.lock_manager(0).tables[LockingLevel.PAGE].record_count() > 0
        host.tend(tid2)

    def test_hot_files_default_to_record(self):
        """Section 7: the default level 'exploits the knowledge of how
        frequently a file is used'."""
        host, server, naming, coordinator, _ = build()
        tid = host.tbegin()
        host.tcreate(tid, NAME)
        host.tend(tid)
        for _ in range(10):  # heat the file up
            tid = host.tbegin()
            host.topen(tid, NAME)
            host.tend(tid)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.twrite(tid, descriptor, b"y")
        assert coordinator.lock_manager(0).tables[LockingLevel.RECORD].record_count() > 0
        host.tend(tid)
