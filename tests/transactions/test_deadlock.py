"""Timeout-based deadlock resolution under real interleavings (E8)."""

import pytest

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.simkernel.runner import InterleavedRunner
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator
from repro.transactions.lock_manager import TimeoutPolicy
from repro.workloads.transactions import (
    deadlock_pair_scripts,
    long_transaction_script,
    make_accounts_file,
    random_transfer_mix,
    total_balance,
    transfer_script,
)
from tests.conftest import build_file_server

NAME = AttributedName.file("/bank")


def build(lt_us=500_000, max_renewals=3):
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    coordinator = TransactionCoordinator(
        clock, metrics, policy=TimeoutPolicy(lt_us=lt_us, max_renewals=max_renewals)
    )
    coordinator.register_volume(server)
    host = TransactionAgentHost("m0", naming, coordinator, clock, metrics)
    return host, coordinator, clock, metrics


def make_runner(host, coordinator, clock, think_time_us=100):
    def on_stall(now):
        next_expiry = coordinator.next_expiry_us()
        if next_expiry is None:
            return False
        clock.advance_to(next_expiry)
        coordinator.expire_locks(clock.now_us)
        return True

    return InterleavedRunner(
        clock,
        think_time_us=think_time_us,
        on_stall=on_stall,
        on_step=lambda now: coordinator.expire_locks(now),
    )


class TestDeadlockResolution:
    def test_opposed_transfers_deadlock_and_recover(self):
        """The canonical cycle: A->B and B->A interleaved.  Timeouts must
        abort one so both eventually commit."""
        host, coordinator, clock, metrics = build()
        make_accounts_file(host, NAME, 10)
        s1, s2 = deadlock_pair_scripts(host, NAME, 1, 2)
        runner = make_runner(host, coordinator, clock)
        runner.add_client(s1)
        runner.add_client(s2)
        report = runner.run()
        assert report.total_commits == 2
        assert report.total_aborts >= 1  # the cycle was broken by timeout
        assert metrics.total("lock_manager.0.timeout_aborts") >= 1
        assert total_balance(host, NAME, 10) == 10 * 1000

    def test_no_deadlock_no_timeouts(self):
        """Disjoint transfers never contend: no aborts, no timeouts."""
        host, coordinator, clock, metrics = build()
        make_accounts_file(host, NAME, 10)
        runner = make_runner(host, coordinator, clock)
        runner.add_client(transfer_script(host, NAME, 0, 1))
        runner.add_client(transfer_script(host, NAME, 2, 3))
        report = runner.run()
        assert report.total_commits == 2
        assert report.total_aborts == 0
        assert metrics.total("lock_manager.0.timeout_aborts") == 0

    def test_long_transactions_are_penalised(self):
        """The paper's stated drawback: a long transaction holding a lock
        that others want gets aborted at LT expiry even though it is not
        deadlocked."""
        host, coordinator, clock, metrics = build(lt_us=50_000, max_renewals=20)
        make_accounts_file(host, NAME, 4)
        runner = make_runner(host, coordinator, clock, think_time_us=2000)
        runner.add_client(long_transaction_script(host, NAME, 0, think_rounds=200))
        runner.add_client(transfer_script(host, NAME, 0, 1))
        report = runner.run()
        long_client = report.clients[0]
        assert long_client.aborts >= 1  # broken at first contended expiry
        assert report.total_commits == 2  # both finish eventually

    def test_short_renewal_budget_livelocks_a_long_transaction(self):
        """N*LT below the transaction's natural length means it can never
        commit — the paper's 'transactions taking a long time will be
        penalized', taken to its logical end."""
        host, coordinator, clock, metrics = build(lt_us=50_000, max_renewals=2)
        make_accounts_file(host, NAME, 4)
        runner = make_runner(host, coordinator, clock, think_time_us=2000)
        runner.max_restarts = 5
        runner.add_client(long_transaction_script(host, NAME, 0, think_rounds=200))
        report = runner.run()
        assert report.clients[0].commits == 0
        assert report.clients[0].aborts >= 5

    def test_uncontended_long_transaction_renews_up_to_n(self):
        host, coordinator, clock, metrics = build(lt_us=50_000, max_renewals=50)
        make_accounts_file(host, NAME, 4)
        runner = make_runner(host, coordinator, clock, think_time_us=2000)
        runner.add_client(long_transaction_script(host, NAME, 0, think_rounds=100))
        report = runner.run()
        assert report.total_commits == 1
        assert report.total_aborts == 0
        assert metrics.total("lock_manager.0.renewals") >= 1

    def test_invariant_under_heavy_contention(self):
        """Money is conserved whatever the abort/retry history."""
        host, coordinator, clock, metrics = build(lt_us=300_000)
        make_accounts_file(host, NAME, 20)
        runner = make_runner(host, coordinator, clock)
        for script in random_transfer_mix(host, NAME, 20, 6, hot_accounts=4, seed=7):
            runner.add_client(script, repeats=4)
        report = runner.run()
        assert report.total_commits == 24
        assert total_balance(host, NAME, 20) == 20 * 1000

    def test_smaller_lt_resolves_deadlocks_faster(self):
        elapsed = {}
        for lt_us in (100_000, 1_600_000):
            host, coordinator, clock, _ = build(lt_us=lt_us)
            make_accounts_file(host, NAME, 10)
            start = clock.now_us
            s1, s2 = deadlock_pair_scripts(host, NAME, 1, 2)
            runner = make_runner(host, coordinator, clock)
            runner.add_client(s1)
            runner.add_client(s2)
            runner.run()
            elapsed[lt_us] = clock.now_us - start
        assert elapsed[100_000] < elapsed[1_600_000]
