"""Nested transactions (acknowledged in section 6.4).

A child shares its ancestors' locks and tentative view; committing a
child merges its work into the parent (nothing reaches the disk until
the top-level commit); aborting a child discards only the child's
work; aborting a parent cascades.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import InvalidTransactionStateError
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.simkernel.runner import LockWaitPending
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator
from tests.conftest import build_file_server

NAME = AttributedName.file("/nested/data")


def build():
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    coordinator = TransactionCoordinator(clock, metrics)
    coordinator.register_volume(server)
    host = TransactionAgentHost("m0", naming, coordinator, clock, metrics)
    return host, server, naming, coordinator


def seed(host, content=b"base" * 8):
    tid = host.tbegin()
    descriptor = host.tcreate(tid, NAME, locking_level=LockingLevel.PAGE)
    host.twrite(tid, descriptor, content)
    host.tend(tid)


class TestChildVisibility:
    def test_child_sees_parents_tentative_writes(self):
        host, server, naming, _ = build()
        seed(host)
        parent = host.tbegin()
        d_parent = host.topen(parent, NAME)
        host.tpwrite(parent, d_parent, b"PARENT", 0)
        child = host.tbegin(parent=parent)
        d_child = host.topen(child, NAME)
        assert host.tpread(child, d_child, 6, 0) == b"PARENT"
        host.tend(child)
        host.tend(parent)

    def test_child_does_not_block_on_parents_locks(self):
        host, *_ = build()
        seed(host)
        parent = host.tbegin()
        d_parent = host.topen(parent, NAME)
        host.tpwrite(parent, d_parent, b"locked by parent", 0)  # parent IW
        child = host.tbegin(parent=parent)
        d_child = host.topen(child, NAME)
        # No LockWaitPending: the child inherits access.
        assert host.tpread(child, d_child, 6, 0) == b"locked"
        host.tpwrite(child, d_child, b"CHILD!", 0)
        host.tend(child)
        host.tend(parent)

    def test_parent_sees_committed_childs_writes(self):
        host, *_ = build()
        seed(host)
        parent = host.tbegin()
        d_parent = host.topen(parent, NAME)
        child = host.tbegin(parent=parent)
        d_child = host.topen(child, NAME)
        host.tpwrite(child, d_child, b"FROM-CHILD", 0)
        host.tend(child)
        assert host.tpread(parent, d_parent, 10, 0) == b"FROM-CHILD"
        host.tend(parent)

    def test_strangers_still_blocked_by_the_family(self):
        host, *_ = build()
        seed(host)
        parent = host.tbegin()
        d_parent = host.topen(parent, NAME)
        host.tpwrite(parent, d_parent, b"family secret", 0)
        stranger = host.tbegin()
        d_stranger = host.topen(stranger, NAME)
        with pytest.raises(LockWaitPending):
            host.tpread(stranger, d_stranger, 4, 0)
        host.tend(parent)
        host.tabort(stranger)


class TestDurabilityBoundary:
    def test_child_commit_is_not_durable_until_parent_commits(self):
        host, server, naming, _ = build()
        seed(host, b"O" * 32)
        system_name = naming.resolve_file(NAME)
        parent = host.tbegin()
        child = host.tbegin(parent=parent)
        d_child = host.topen(child, NAME)
        host.tpwrite(child, d_child, b"N" * 32, 0)
        host.tend(child)  # merges into the parent only
        assert server.read(system_name, 0, 32) == b"O" * 32
        host.tend(parent)  # the top-level commit makes it durable
        assert server.read(system_name, 0, 32) == b"N" * 32

    def test_child_abort_discards_only_child_work(self):
        host, server, naming, _ = build()
        seed(host, b"O" * 32)
        system_name = naming.resolve_file(NAME)
        parent = host.tbegin()
        d_parent = host.topen(parent, NAME)
        host.tpwrite(parent, d_parent, b"P", 0)
        child = host.tbegin(parent=parent)
        d_child = host.topen(child, NAME)
        host.tpwrite(child, d_child, b"C", 1)
        host.tabort(child)
        assert host.tpread(parent, d_parent, 2, 0) == b"PO"  # child's C gone
        host.tend(parent)
        assert server.read(system_name, 0, 2) == b"PO"

    def test_parent_abort_cascades_to_children(self):
        host, server, naming, coordinator = build()
        seed(host, b"O" * 8)
        system_name = naming.resolve_file(NAME)
        parent = host.tbegin()
        child = host.tbegin(parent=parent)
        d_child = host.topen(child, NAME)
        host.tpwrite(child, d_child, b"XXXX", 0)
        host.tabort(parent)  # child still live: must cascade
        assert server.read(system_name, 0, 8) == b"O" * 8
        assert coordinator.live_count() == 0

    def test_grandchildren(self):
        host, server, naming, _ = build()
        seed(host, b"-" * 8)
        system_name = naming.resolve_file(NAME)
        root = host.tbegin()
        child = host.tbegin(parent=root)
        grandchild = host.tbegin(parent=child)
        d = host.topen(grandchild, NAME)
        host.tpwrite(grandchild, d, b"deep", 0)
        host.tend(grandchild)
        host.tend(child)
        host.tend(root)
        assert server.read(system_name, 0, 4) == b"deep"

    def test_created_file_rides_the_ancestry(self):
        host, server, naming, _ = build()
        other = AttributedName.file("/nested/new-file")
        root = host.tbegin()
        child = host.tbegin(parent=root)
        descriptor = host.tcreate(child, other)
        host.twrite(child, descriptor, b"made by child")
        host.tend(child)
        host.tabort(root)  # aborting the root must undo the child's create
        assert other not in naming


class TestRules:
    def test_cannot_nest_under_finished_transaction(self):
        host, *_ = build()
        tid = host.tbegin()
        host.tabort(tid)
        with pytest.raises(InvalidTransactionStateError):
            host.tbegin(parent=tid)

    def test_parent_cannot_commit_over_live_children(self):
        host, *_ = build()
        parent = host.tbegin()
        child = host.tbegin(parent=parent)
        with pytest.raises(InvalidTransactionStateError):
            host.tend(parent)
        host.tabort(child)
        host.tend(parent)

    def test_agent_lives_while_any_family_member_does(self):
        host, *_ = build()
        parent = host.tbegin()
        child = host.tbegin(parent=parent)
        host.tend(child)
        assert host.agent_exists
        host.tend(parent)
        assert not host.agent_exists
