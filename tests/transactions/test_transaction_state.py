"""Transaction state: overlay composition, sequences, ancestry."""

from repro.common.ids import SystemName
from repro.transactions.locks import page_item, record_item
from repro.transactions.transaction import (
    TentativeItem,
    Transaction,
    TransactionPhase,
    TransactionStatus,
)

NAME = SystemName(0, 5, 1)


def txn(tid=1, parent=None):
    return Transaction(tid=tid, machine_id="m", process_id=0, parent=parent)


class TestOverlay:
    def test_no_tentative_is_identity(self):
        assert txn().overlay(NAME, 0, b"base") == b"base"

    def test_record_overlay_applies_in_range(self):
        transaction = txn()
        transaction.tentative_records.append(
            TentativeItem(
                item=record_item(NAME, 2, 3),
                data=b"XYZ",
                sequence=transaction.next_sequence(),
            )
        )
        assert transaction.overlay(NAME, 0, b"0123456789") == b"01XYZ56789"

    def test_overlay_clips_to_window(self):
        transaction = txn()
        transaction.tentative_records.append(
            TentativeItem(
                item=record_item(NAME, 0, 10),
                data=b"ABCDEFGHIJ",
                sequence=transaction.next_sequence(),
            )
        )
        # Window [4, 7): sees bytes 4..6 of the record — E, F, G.
        assert transaction.overlay(NAME, 4, b"xyz") == b"EFG"

    def test_later_writes_win(self):
        transaction = txn()
        for index, payload in enumerate((b"first", b"SECON")):
            transaction.tentative_records.append(
                TentativeItem(
                    item=record_item(NAME, 0, 5),
                    data=payload,
                    sequence=transaction.next_sequence(),
                )
            )
        assert transaction.overlay(NAME, 0, b".....") == b"SECON"

    def test_other_files_untouched(self):
        transaction = txn()
        transaction.tentative_records.append(
            TentativeItem(
                item=record_item(SystemName(0, 99, 1), 0, 4),
                data=b"!!!!",
                sequence=transaction.next_sequence(),
            )
        )
        assert transaction.overlay(NAME, 0, b"safe") == b"safe"

    def test_map_and_records_merge_by_sequence(self):
        transaction = txn()
        item = page_item(NAME, 0, 8)
        transaction.tentative_map[item] = TentativeItem(
            item=item, data=b"PAGEPAGE", sequence=transaction.next_sequence()
        )
        transaction.tentative_records.append(
            TentativeItem(
                item=record_item(NAME, 2, 2),
                data=b"rr",
                sequence=transaction.next_sequence(),
            )
        )
        assert transaction.overlay(NAME, 0, b"........") == b"PArrPAGE"


class TestAncestry:
    def test_root_chain(self):
        root = txn(1)
        assert root.ancestry() == [root]
        assert root.is_ancestor_or_self(root)

    def test_chain_order_root_first(self):
        root = txn(1)
        child = txn(2, parent=root)
        grandchild = txn(3, parent=child)
        assert [t.tid for t in grandchild.ancestry()] == [1, 2, 3]

    def test_is_ancestor_or_self(self):
        root = txn(1)
        child = txn(2, parent=root)
        stranger = txn(9)
        assert child.is_ancestor_or_self(root)
        assert child.is_ancestor_or_self(child)
        assert not child.is_ancestor_or_self(stranger)
        assert not root.is_ancestor_or_self(child)  # descent, not ancestry

    def test_sequences_monotonic(self):
        transaction = txn()
        values = [transaction.next_sequence() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_all_tentative_items_ordered(self):
        transaction = txn()
        item = page_item(NAME, 0, 8)
        transaction.tentative_records.append(
            TentativeItem(
                item=record_item(NAME, 0, 1),
                data=b"a",
                sequence=transaction.next_sequence(),
            )
        )
        transaction.tentative_map[item] = TentativeItem(
            item=item, data=b"x" * 8, sequence=transaction.next_sequence()
        )
        sequences = [e.sequence for e in transaction.all_tentative_items()]
        assert sequences == sorted(sequences)


class TestEnums:
    def test_phase_values(self):
        assert TransactionPhase.LOCKING.value == "locking"
        assert TransactionPhase.UNLOCKING.value == "unlocking"

    def test_status_matches_intention_flag_words(self):
        """The paper's flag states: tentative, commit, abort."""
        assert TransactionStatus.TENTATIVE.value == "tentative"
        assert TransactionStatus.COMMITTED.value == "commit"
        assert TransactionStatus.ABORTED.value == "abort"
