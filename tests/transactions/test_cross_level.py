"""The cross-level locking relaxation (section 6.1's deferred extension).

"To avoid complexity, we will assume that a file cannot be subjected
to more than one level of locking by concurrent transactions.  This
constraint can be relaxed, if required, at a later stage."  This test
module covers that later stage: with ``cross_level=True`` a record
lock conflicts with the page containing it and with a whole-file lock,
so transactions may safely mix granularities on one file.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.clock import SimClock
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.simkernel.runner import LockWaitPending
from repro.transactions.lock_manager import AcquireResult, LockManager
from repro.transactions.locks import (
    LockMode,
    file_item,
    page_item,
    record_item,
)
from repro.transactions.transaction import Transaction

NAME = SystemName(0, 10, 1)


def manager(cross_level=True):
    return LockManager(SimClock(), Metrics(), cross_level=cross_level)


def txn(tid):
    return Transaction(tid=tid, machine_id="m", process_id=0)


class TestCrossLevelConflicts:
    def test_record_iw_blocks_overlapping_page(self):
        m = manager()
        holder, other = txn(1), txn(2)
        m.acquire(holder, record_item(NAME, 100, 50), LockMode.IW)
        result = m.acquire(other, page_item(NAME, 0, BLOCK_SIZE), LockMode.IW)
        assert result is AcquireResult.WAITING

    def test_page_iw_blocks_contained_record(self):
        m = manager()
        holder, other = txn(1), txn(2)
        m.acquire(holder, page_item(NAME, 1, BLOCK_SIZE), LockMode.IW)
        inside = record_item(NAME, BLOCK_SIZE + 5, 10)
        assert m.acquire(other, inside, LockMode.RO) is AcquireResult.WAITING
        outside = record_item(NAME, 0, 10)  # page 0: disjoint bytes
        assert m.acquire(other, outside, LockMode.RO) is AcquireResult.GRANTED

    def test_file_lock_blocks_everything(self):
        m = manager()
        holder, other = txn(1), txn(2)
        m.acquire(holder, file_item(NAME), LockMode.IW)
        assert m.acquire(other, record_item(NAME, 0, 1), LockMode.RO) is (
            AcquireResult.WAITING
        )
        assert m.acquire(other, page_item(NAME, 7, BLOCK_SIZE), LockMode.RO) is (
            AcquireResult.WAITING
        )

    def test_readers_share_across_levels(self):
        m = manager()
        m.acquire(txn(1), file_item(NAME), LockMode.RO)
        assert m.acquire(txn(2), record_item(NAME, 0, 8), LockMode.RO) is (
            AcquireResult.GRANTED
        )

    def test_release_promotes_other_level_waiters(self):
        m = manager()
        holder, waiter = txn(1), txn(2)
        m.acquire(holder, record_item(NAME, 0, 100), LockMode.IW)
        item = page_item(NAME, 0, BLOCK_SIZE)
        m.acquire(waiter, item, LockMode.IW)
        m.release_all(holder)
        assert m.is_granted(waiter, item, LockMode.IW)

    def test_disabled_by_default(self):
        """The paper's original constraint is the default behaviour."""
        m = manager(cross_level=False)
        m.acquire(txn(1), record_item(NAME, 100, 50), LockMode.IW)
        assert m.acquire(
            txn(2), page_item(NAME, 0, BLOCK_SIZE), LockMode.IW
        ) is AcquireResult.GRANTED

    def test_same_transaction_may_mix_levels(self):
        m = manager()
        transaction = txn(1)
        assert m.acquire(transaction, file_item(NAME), LockMode.IW) is (
            AcquireResult.GRANTED
        )
        assert m.acquire(
            transaction, record_item(NAME, 0, 8), LockMode.IW
        ) is AcquireResult.GRANTED


class TestEndToEnd:
    @pytest.fixture
    def cluster(self):
        return RhodosCluster(
            ClusterConfig(
                geometry=DiskGeometry.small(), cross_level_locking=True
            )
        )

    def test_mixed_granularity_transactions_serialise(self, cluster):
        host = cluster.machine.transactions
        name = AttributedName.file("/mixed")
        tid = host.tbegin()
        descriptor = host.tcreate(tid, name, locking_level=LockingLevel.RECORD)
        host.twrite(tid, descriptor, b"x" * BLOCK_SIZE)
        host.tend(tid)

        t_record = host.tbegin()
        d_record = host.topen(t_record, name)  # record level (file attr)
        host.tpwrite(t_record, d_record, b"R", 10)

        t_page = host.tbegin()
        d_page = host.topen(t_page, name, locking_level=LockingLevel.PAGE)
        with pytest.raises(LockWaitPending):
            host.tpread(t_page, d_page, 4, 0)  # page 0 overlaps the record
        host.tend(t_record)
        assert host.tpread(t_page, d_page, 1, 10) == b"R"
        host.tend(t_page)

    def test_mixed_granularity_disjoint_bytes_run_concurrently(self, cluster):
        host = cluster.machine.transactions
        name = AttributedName.file("/mixed2")
        tid = host.tbegin()
        descriptor = host.tcreate(tid, name, locking_level=LockingLevel.RECORD)
        host.twrite(tid, descriptor, b"y" * (2 * BLOCK_SIZE))
        host.tend(tid)

        t_record = host.tbegin()
        d_record = host.topen(t_record, name)
        host.tpwrite(t_record, d_record, b"A", 10)  # page 0

        t_page = host.tbegin()
        d_page = host.topen(t_page, name, locking_level=LockingLevel.PAGE)
        host.tpwrite(t_page, d_page, b"B" * 4, BLOCK_SIZE)  # page 1: disjoint
        host.tend(t_record)
        host.tend(t_page)
        server = cluster.file_servers[0]
        system_name = cluster.naming.resolve_file(name)
        assert server.read(system_name, 10, 1) == b"A"
        assert server.read(system_name, BLOCK_SIZE, 4) == b"BBBB"
