"""Lock modes, data items, and the Table 1 compatibility function."""

import pytest

from repro.common.ids import SystemName
from repro.file_service.attributes import LockingLevel
from repro.transactions.locks import (
    DataItem,
    FILE_RANGE_END,
    LockMode,
    file_item,
    locks_compatible,
    page_item,
    record_item,
)

NAME = SystemName(0, 10, 1)
OTHER = SystemName(0, 20, 1)


class TestTable1:
    """The compatibility half of Table 1 (same-transaction conversions
    are the lock manager's job and tested there)."""

    def test_ro_shares_with_ro(self):
        assert locks_compatible(LockMode.RO, LockMode.RO)

    def test_ro_admits_an_iread(self):
        assert locks_compatible(LockMode.RO, LockMode.IR)

    def test_ro_blocks_iwrite(self):
        assert not locks_compatible(LockMode.RO, LockMode.IW)

    def test_iread_blocks_new_read_only(self):
        """'Once a data item is locked with an Iread lock, no transaction
        is allowed to set a new read-only lock' (section 6.3)."""
        assert not locks_compatible(LockMode.IR, LockMode.RO)

    def test_iread_blocks_iread(self):
        assert not locks_compatible(LockMode.IR, LockMode.IR)

    def test_iread_blocks_iwrite(self):
        assert not locks_compatible(LockMode.IR, LockMode.IW)

    def test_iwrite_blocks_everything(self):
        for requested in LockMode:
            assert not locks_compatible(LockMode.IW, requested)


class TestDataItems:
    def test_record_items_conflict_on_overlap(self):
        a = record_item(NAME, 0, 100)
        b = record_item(NAME, 50, 100)
        c = record_item(NAME, 100, 10)
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)  # [0,100) vs [100,110): disjoint

    def test_different_files_never_conflict(self):
        assert not record_item(NAME, 0, 10).conflicts_with(
            record_item(OTHER, 0, 10)
        )

    def test_different_levels_never_conflict(self):
        """Section 6.1's simplifying constraint: one level per file."""
        record = record_item(NAME, 0, 8192)
        page = page_item(NAME, 0, 8192)
        assert not record.conflicts_with(page)

    def test_file_item_conflicts_with_itself(self):
        assert file_item(NAME).conflicts_with(file_item(NAME))
        assert file_item(NAME).hi == FILE_RANGE_END

    def test_page_item_ranges(self):
        item = page_item(NAME, 3, 8192)
        assert item.lo == 3 * 8192
        assert item.hi == 4 * 8192
        assert item.level is LockingLevel.PAGE

    def test_byte_granularity_records(self):
        """'The granularity of a record ... can be as fine as a single
        byte' (section 6.7)."""
        one_byte = record_item(NAME, 500, 1)
        assert one_byte.conflicts_with(record_item(NAME, 500, 1))
        assert not one_byte.conflicts_with(record_item(NAME, 501, 1))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            DataItem(NAME, LockingLevel.RECORD, 10, 10)

    def test_items_hashable(self):
        assert len({record_item(NAME, 0, 5), record_item(NAME, 0, 5)}) == 1
