"""Property tests: lock-manager invariants under random schedules.

Whatever sequence of acquires and releases arrives, the manager must
never grant two incompatible locks on overlapping data to different
transactions, and every waiter must eventually be served once holders
drain (no lost wakeups).
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.transactions.lock_manager import AcquireResult, LockManager
from repro.transactions.locks import LockMode, locks_compatible, record_item
from repro.transactions.transaction import Transaction, TransactionPhase

NAME = SystemName(0, 1, 1)
MODES = [LockMode.RO, LockMode.IR, LockMode.IW]


@st.composite
def schedules(draw):
    n_transactions = draw(st.integers(min_value=2, max_value=6))
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["acquire", "release"]))
        txn_index = draw(st.integers(min_value=0, max_value=n_transactions - 1))
        if kind == "acquire":
            lo = draw(st.integers(min_value=0, max_value=80))
            length = draw(st.integers(min_value=1, max_value=40))
            mode = draw(st.sampled_from(MODES))
            ops.append(("acquire", txn_index, lo, length, mode))
        else:
            ops.append(("release", txn_index, 0, 0, None))
    return n_transactions, ops


def check_no_incompatible_grants(manager: LockManager) -> None:
    for table in manager.tables.values():
        granted = table.all_granted()
        for i, a in enumerate(granted):
            for b in granted[i + 1 :]:
                if a.tid == b.tid or not a.item.conflicts_with(b.item):
                    continue
                # At least one direction must be a compatible share;
                # RO+RO and RO+single-IR are the only legal overlaps.
                legal = (
                    locks_compatible(a.mode, b.mode)
                    or locks_compatible(b.mode, a.mode)
                )
                assert legal, (
                    f"incompatible grants coexist: txn {a.tid} {a.mode} and "
                    f"txn {b.tid} {b.mode} on overlapping items"
                )


class TestLockManagerInvariants:
    @given(schedules())
    @settings(max_examples=80, deadline=None)
    def test_never_two_incompatible_grants(self, schedule):
        n_transactions, ops = schedule
        manager = LockManager(SimClock(), Metrics())
        transactions = [
            Transaction(tid=index + 1, machine_id="m", process_id=0)
            for index in range(n_transactions)
        ]
        for kind, txn_index, lo, length, mode in ops:
            transaction = transactions[txn_index]
            if kind == "acquire":
                if transaction.phase is TransactionPhase.LOCKING:
                    manager.acquire(
                        transaction, record_item(NAME, lo, length), mode
                    )
            else:
                manager.release_all(transaction)
            check_no_incompatible_grants(manager)

    @given(schedules())
    @settings(max_examples=60, deadline=None)
    def test_draining_all_holders_serves_every_live_waiter_eventually(
        self, schedule
    ):
        """Release every transaction one by one: afterwards no waiting
        records can remain (no lost wakeups)."""
        n_transactions, ops = schedule
        manager = LockManager(SimClock(), Metrics())
        transactions = [
            Transaction(tid=index + 1, machine_id="m", process_id=0)
            for index in range(n_transactions)
        ]
        for kind, txn_index, lo, length, mode in ops:
            transaction = transactions[txn_index]
            if kind == "acquire":
                manager.acquire(transaction, record_item(NAME, lo, length), mode)
            else:
                manager.release_all(transaction)
        for transaction in transactions:
            manager.release_all(transaction)
        for table in manager.tables.values():
            assert table.all_waiting() == []
            assert table.all_granted() == []

    @given(schedules())
    @settings(max_examples=40, deadline=None)
    def test_ro_overlaps_never_include_two_ir(self, schedule):
        """The single-IR rule holds at every step."""
        n_transactions, ops = schedule
        manager = LockManager(SimClock(), Metrics())
        transactions = [
            Transaction(tid=index + 1, machine_id="m", process_id=0)
            for index in range(n_transactions)
        ]
        for kind, txn_index, lo, length, mode in ops:
            transaction = transactions[txn_index]
            if kind == "acquire":
                manager.acquire(transaction, record_item(NAME, lo, length), mode)
            else:
                manager.release_all(transaction)
            for table in manager.tables.values():
                granted = [r for r in table.all_granted() if r.mode is LockMode.IR]
                for i, a in enumerate(granted):
                    for b in granted[i + 1 :]:
                        if a.tid != b.tid:
                            assert not a.item.conflicts_with(b.item)
