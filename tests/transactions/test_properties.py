"""Property test: 2PL interleavings are serializable.

Random transfer workloads run under the interleaved runner; whatever
the interleaving and abort history, the final account state must be
(a) money-conserving and (b) equal to *some* serial execution of the
committed transfers — which for commutative transfers reduces to the
multiset of committed (source, target, amount) deltas.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.simkernel.runner import InterleavedRunner
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator
from repro.transactions.lock_manager import TimeoutPolicy
from repro.workloads.transactions import (
    ACCOUNT_BYTES,
    make_accounts_file,
    read_balance,
    transfer_script,
)
from tests.conftest import build_file_server

NAME = AttributedName.file("/bank")
N_ACCOUNTS = 16
INITIAL = 1000


@st.composite
def transfer_plans(draw):
    n_clients = draw(st.integers(min_value=2, max_value=5))
    plans = []
    for _ in range(n_clients):
        source = draw(st.integers(min_value=0, max_value=N_ACCOUNTS - 1))
        target = draw(
            st.integers(min_value=0, max_value=N_ACCOUNTS - 1).filter(
                lambda t: t != source
            )
        )
        amount = draw(st.integers(min_value=1, max_value=50))
        plans.append((source, target, amount))
    return plans


def run_plan(plans, level):
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    coordinator = TransactionCoordinator(
        clock, metrics, policy=TimeoutPolicy(lt_us=1_000_000, max_renewals=4)
    )
    coordinator.register_volume(server)
    host = TransactionAgentHost("m0", naming, coordinator, clock, metrics)
    make_accounts_file(host, NAME, N_ACCOUNTS, locking_level=level)

    def on_stall(now):
        next_expiry = coordinator.next_expiry_us()
        if next_expiry is None:
            return False
        clock.advance_to(next_expiry)
        coordinator.expire_locks(clock.now_us)
        return True

    runner = InterleavedRunner(
        clock,
        think_time_us=50,
        on_stall=on_stall,
        on_step=lambda now: coordinator.expire_locks(now),
    )
    for source, target, amount in plans:
        runner.add_client(transfer_script(host, NAME, source, target, amount))
    report = runner.run()
    tid = host.tbegin()
    descriptor = host.topen(tid, NAME)
    raw = host.tpread(tid, descriptor, N_ACCOUNTS * ACCOUNT_BYTES, 0)
    host.tend(tid)
    balances = [
        read_balance(raw[index * ACCOUNT_BYTES : (index + 1) * ACCOUNT_BYTES])
        for index in range(N_ACCOUNTS)
    ]
    return report, balances


class TestSerializability:
    @given(transfer_plans())
    @settings(max_examples=15, deadline=None)
    def test_record_level_matches_serial_oracle(self, plans):
        report, balances = run_plan(plans, LockingLevel.RECORD)
        assert report.total_commits == len(plans)
        expected = [INITIAL] * N_ACCOUNTS
        for source, target, amount in plans:  # transfers commute
            expected[source] -= amount
            expected[target] += amount
        assert balances == expected

    @given(transfer_plans())
    @settings(max_examples=8, deadline=None)
    def test_file_level_matches_serial_oracle(self, plans):
        report, balances = run_plan(plans, LockingLevel.FILE)
        assert report.total_commits == len(plans)
        expected = [INITIAL] * N_ACCOUNTS
        for source, target, amount in plans:
            expected[source] -= amount
            expected[target] += amount
        assert balances == expected

    @given(transfer_plans())
    @settings(max_examples=8, deadline=None)
    def test_page_level_conserves_money(self, plans):
        report, balances = run_plan(plans, LockingLevel.PAGE)
        assert report.total_commits == len(plans)
        assert sum(balances) == N_ACCOUNTS * INITIAL
