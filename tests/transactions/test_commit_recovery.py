"""Commit techniques (WAL vs shadow) and crash recovery atomicity."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DiskCrashedError
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.transactions.agent import TransactionAgentHost
from repro.transactions.coordinator import TransactionCoordinator
from repro.transactions.intentions import IntentionRecord, Technique
from tests.conftest import build_file_server

NAME = AttributedName.file("/f")


def build(technique="auto"):
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    coordinator = TransactionCoordinator(clock, metrics, technique=technique)
    coordinator.register_volume(server)
    host = TransactionAgentHost("m0", naming, coordinator, clock, metrics)
    return host, server, naming, coordinator, metrics


def seed_file(host, *, blocks=4, level=LockingLevel.PAGE, fill=b"O"):
    tid = host.tbegin()
    descriptor = host.tcreate(tid, NAME, locking_level=level)
    host.twrite(tid, descriptor, fill * (blocks * BLOCK_SIZE))
    host.tend(tid)


class TestTechniqueChoice:
    def test_contiguous_blocks_use_wal(self):
        """Paper section 6.7: WAL when the data blocks are contiguous,
        preserving the contiguity the allocator achieved."""
        host, server, naming, coordinator, metrics = build(technique="auto")
        seed_file(host, blocks=4)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"N" * BLOCK_SIZE, BLOCK_SIZE)
        host.tend(tid)
        assert metrics.get("transactions.wal_applies") >= 1
        assert metrics.get("transactions.shadow_applies") == 0

    def test_non_contiguous_blocks_use_shadow(self):
        host, server, naming, coordinator, metrics = build(technique="auto")
        seed_file(host, blocks=2)
        system_name = naming.resolve_file(NAME)
        # Make block 1 non-contiguous: swap it to an isolated block with
        # a gap before and after.
        server.disk.allocate_block(1)  # gap so the isolated block is lonely
        isolated = server.disk.allocate_block(1)
        server.write_block(
            isolated.start, server.read(system_name, BLOCK_SIZE, BLOCK_SIZE)
        )
        server.replace_block_descriptor(system_name, 1, isolated.start)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"S" * 100, BLOCK_SIZE)
        host.tend(tid)
        assert metrics.get("transactions.shadow_applies") >= 1
        assert server.read(system_name, BLOCK_SIZE, 4) == b"SSSS"

    def test_record_level_always_wal(self):
        """'There is no justification to tie up a complete block or
        fragment' — record items use WAL."""
        host, server, naming, coordinator, metrics = build(technique="auto")
        seed_file(host, level=LockingLevel.RECORD)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"rec", 17)
        host.tend(tid)
        assert metrics.get("transactions.wal_applies") >= 1
        assert metrics.get("transactions.shadow_applies") == 0

    def test_forced_shadow_swaps_descriptors(self):
        host, server, naming, coordinator, metrics = build(technique="shadow")
        seed_file(host, blocks=2)
        system_name = naming.resolve_file(NAME)
        old_descriptor = server.block_descriptor(system_name, 1)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"W" * BLOCK_SIZE, BLOCK_SIZE)
        host.tend(tid)
        new_descriptor = server.block_descriptor(system_name, 1)
        assert new_descriptor.address != old_descriptor.address
        assert server.read(system_name, BLOCK_SIZE, 4) == b"WWWW"

    def test_wal_preserves_contiguity_shadow_destroys_it(self):
        """The E9 claim, in miniature."""
        for technique, expect_contiguous in (("wal", True), ("shadow", False)):
            host, server, naming, _, _ = build(technique=technique)
            seed_file(host, blocks=4)
            system_name = naming.resolve_file(NAME)
            tid = host.tbegin()
            descriptor = host.topen(tid, NAME)
            host.tpwrite(tid, descriptor, b"U" * BLOCK_SIZE, BLOCK_SIZE)
            host.tend(tid)
            first = server.block_descriptor(system_name, 0)
            assert (first.count >= 4) == expect_contiguous


class TestIntentionRecords:
    def test_codec_round_trip(self):
        from repro.common.ids import SystemName
        from repro.disk_service.addresses import Extent

        record = IntentionRecord(
            tid=9,
            sequence=2,
            name=SystemName(1, 55, 3),
            level=LockingLevel.PAGE,
            lo=8192,
            length=4096,
            extent=Extent(700, 4),
            technique=Technique.SHADOW,
            block_index=1,
        )
        assert IntentionRecord.from_bytes(record.to_bytes()) == record

    def test_committed_transaction_leaves_no_intentions(self):
        host, server, naming, coordinator, _ = build()
        seed_file(host)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"z", 0)
        host.tend(tid)
        stable = server.disk.stable
        assert not [key for key in stable.keys() if key.startswith("intent:")]
        assert not [key for key in stable.keys() if key.startswith("txnflag:")]

    def test_abort_frees_tentative_space(self):
        host, server, naming, coordinator, _ = build()
        seed_file(host)
        free_before = server.disk.free_fragments
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"will abort", 0)
        host.tabort(tid)
        assert server.disk.free_fragments == free_before


class TestCrashAtomicity:
    @pytest.mark.parametrize("crash_at_write", range(1, 10))
    def test_every_crash_point_is_all_or_nothing(self, crash_at_write):
        """Crash the data disk at the k-th write during commit: after
        recovery the file holds entirely-old or entirely-new data."""
        host, server, naming, coordinator, _ = build()
        seed_file(host, blocks=2)
        system_name = naming.resolve_file(NAME)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"N" * (2 * BLOCK_SIZE), 0)
        server.disk.disk.faults.crash_after_writes(crash_at_write)
        try:
            host.tend(tid)
        except DiskCrashedError:
            pass
        server.disk.disk.repair()
        coordinator.recover_volume(0)
        content = server.read(system_name, 0, 2 * BLOCK_SIZE)
        assert content in (b"O" * (2 * BLOCK_SIZE), b"N" * (2 * BLOCK_SIZE))

    @pytest.mark.parametrize("crash_at_write", range(1, 8))
    def test_stable_mirror_crash_during_commit(self, crash_at_write):
        """Crash stable mirror A during commit; atomicity must survive
        via the careful-write discipline."""
        host, server, naming, coordinator, _ = build()
        seed_file(host, blocks=1)
        system_name = naming.resolve_file(NAME)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"N" * BLOCK_SIZE, 0)
        server.disk.stable.mirror_a.faults.crash_after_writes(crash_at_write)
        try:
            host.tend(tid)
        except DiskCrashedError:
            pass
        server.disk.stable.mirror_a.repair()
        server.disk.stable.recover()
        coordinator.recover_volume(0)
        content = server.read(system_name, 0, BLOCK_SIZE)
        assert content in (b"O" * BLOCK_SIZE, b"N" * BLOCK_SIZE)

    def test_recovery_is_idempotent(self):
        host, server, naming, coordinator, _ = build()
        seed_file(host, blocks=1)
        system_name = naming.resolve_file(NAME)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"N" * BLOCK_SIZE, 0)
        server.disk.disk.faults.crash_after_writes(2)
        try:
            host.tend(tid)
        except DiskCrashedError:
            pass
        server.disk.disk.repair()
        coordinator.recover_volume(0)
        first = server.read(system_name, 0, BLOCK_SIZE)
        coordinator.recover_volume(0)  # run recovery again
        assert server.read(system_name, 0, BLOCK_SIZE) == first

    def test_crash_before_commit_point_aborts(self):
        """A crash before the intention flag flips leaves the old data."""
        host, server, naming, coordinator, _ = build()
        seed_file(host, blocks=1)
        system_name = naming.resolve_file(NAME)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"N" * BLOCK_SIZE, 0)
        # Crash the stable store before any flag write can land.
        server.disk.stable.mirror_a.faults.crash_after_writes(1)
        server.disk.stable.mirror_b.crash()
        with pytest.raises(Exception):
            host.tend(tid)
        server.disk.stable.mirror_a.repair()
        server.disk.stable.mirror_b.repair()
        server.disk.stable.recover()
        coordinator.recover_volume(0)
        assert server.read(system_name, 0, BLOCK_SIZE) == b"O" * BLOCK_SIZE
