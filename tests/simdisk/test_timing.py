"""The seek + rotation + transfer service-time model."""

import pytest

from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.timing import DiskTimingModel


@pytest.fixture
def geometry():
    return DiskGeometry(cylinders=100, heads=2, sectors_per_track=10)


@pytest.fixture
def timing():
    return DiskTimingModel(
        seek_settle_us=1000,
        seek_per_cylinder_us=100,
        rotation_time_us=10_000,
        head_switch_us=500,
        controller_overhead_us=100,
    )


class TestSeek:
    def test_no_seek_when_on_cylinder(self, timing):
        assert timing.seek_time_us(5, 5) == 0.0

    def test_seek_grows_with_distance(self, timing):
        near = timing.seek_time_us(0, 1)
        far = timing.seek_time_us(0, 81)
        assert far > near
        # Square-root model: 81x the distance is 9x the variable part.
        assert far - 1000 == pytest.approx(9 * (near - 1000))

    def test_seek_symmetric(self, timing):
        assert timing.seek_time_us(10, 50) == timing.seek_time_us(50, 10)


class TestRotation:
    def test_slot_time(self, timing, geometry):
        assert timing.slot_time_us(geometry) == 1000.0

    def test_latency_to_next_slot(self, timing, geometry):
        assert timing.rotational_latency_us(geometry, 0.0, 3) == 3000.0

    def test_latency_wraps_around(self, timing, geometry):
        assert timing.rotational_latency_us(geometry, 7.0, 2) == 5000.0

    def test_latency_zero_when_under_head(self, timing, geometry):
        assert timing.rotational_latency_us(geometry, 4.0, 4) == 0.0


class TestServiceTime:
    def test_single_sector(self, timing, geometry):
        elapsed, cylinder, angular = timing.service_time_us(geometry, 0, 0.0, 0, 1)
        # overhead + no seek + no latency + 1 slot transfer
        assert elapsed == pytest.approx(100 + 0 + 0 + 1000)
        assert cylinder == 0
        assert angular == 1.0

    def test_large_contiguous_transfer_amortises_overhead(self, timing, geometry):
        """The paper's core effect: per-byte cost falls with transfer size."""
        one, _, _ = timing.service_time_us(geometry, 50, 0.0, 0, 1)
        ten, _, _ = timing.service_time_us(geometry, 50, 0.0, 0, 10)
        assert ten < 10 * one

    def test_track_crossing_charges_head_switch(self, timing, geometry):
        # Sectors 5..14 cross track 0 -> 1 within cylinder 0:
        # overhead + rotate to slot 5 + 10 slots transfer + head switch.
        crossing, _, _ = timing.service_time_us(geometry, 0, 0.0, 5, 10)
        assert crossing == pytest.approx(100 + 5000 + 10 * 1000 + 500)

    def test_cylinder_crossing_charges_seek(self, timing, geometry):
        # Sectors 15..24 span cylinder 0 -> 1 (20 sectors per cylinder).
        elapsed, cylinder, _ = timing.service_time_us(geometry, 0, 0.0, 15, 10)
        base, _, _ = timing.service_time_us(geometry, 0, 0.0, 15, 5)
        assert cylinder == 1
        assert elapsed > base + 5 * 1000  # extra includes the seek

    def test_head_state_carries(self, timing, geometry):
        _, cylinder, angular = timing.service_time_us(geometry, 0, 0.0, 25, 3)
        assert cylinder == 1
        assert angular == pytest.approx((5 + 3) % 10)

    def test_rejects_empty_request(self, timing, geometry):
        with pytest.raises(ValueError):
            timing.service_time_us(geometry, 0, 0.0, 0, 0)

    def test_sequential_requests_cheaper_than_random(self, timing, geometry):
        """Sequential access avoids seeks; random pays them."""
        sequential = 0.0
        cylinder, angular = 0, 0.0
        for index in range(5):
            elapsed, cylinder, angular = timing.service_time_us(
                geometry, cylinder, angular, index * 2, 2
            )
            sequential += elapsed
        scattered = 0.0
        cylinder, angular = 0, 0.0
        for index in range(5):
            elapsed, cylinder, angular = timing.service_time_us(
                geometry, cylinder, angular, (index * 397) % 1990, 2
            )
            scattered += elapsed
        assert sequential < scattered
