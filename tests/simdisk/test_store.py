"""Sector stores: the chunked fast store against the legacy oracle.

:class:`SectorStore` replaced the original per-sector dict store on the
disk's reference hot path (PR 8); :class:`LegacySectorStore` keeps the
original implementation as a behavioural oracle.  The differential
property test drives both with the same operation sequences — writes,
torn-write prefixes, at-rest corruption, reads of written and of
never-written space — and requires byte-identical results throughout.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simdisk.store import LegacySectorStore, SectorStore

SECTOR = 512
#: Small chunk size so sequences routinely cross chunk boundaries.
CHUNK_SECTORS = 4
#: Sector space the fuzzed operations roam over (spans many chunks).
SPACE = 64


def _payload(token: int, n_sectors: int) -> bytes:
    return bytes((token + i) % 256 for i in range(n_sectors * SECTOR))


@st.composite
def store_ops(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        kind = draw(st.sampled_from(["write", "torn", "read", "xor"]))
        start = draw(st.integers(min_value=0, max_value=SPACE - 1))
        n = draw(st.integers(min_value=1, max_value=min(9, SPACE - start)))
        token = draw(st.integers(min_value=0, max_value=255))
        written = draw(st.integers(min_value=0, max_value=n))
        offset = draw(st.integers(min_value=0, max_value=SECTOR - 1))
        mask = draw(st.integers(min_value=1, max_value=255))
        ops.append((kind, start, n, token, written, offset, mask))
    return ops


class TestDifferential:
    @given(store_ops())
    @settings(max_examples=200, deadline=None)
    def test_chunked_store_matches_legacy_oracle(self, ops):
        fast = SectorStore(SECTOR, chunk_sectors=CHUNK_SECTORS)
        oracle = LegacySectorStore(SECTOR)
        for kind, start, n, token, written, offset, mask in ops:
            if kind == "write":
                data = _payload(token, n)
                fast.write_range(start, data, n)
                oracle.write_range(start, data, n)
            elif kind == "torn":
                # The full payload is offered but only a prefix lands.
                data = _payload(token, n)
                fast.write_range(start, data, written)
                oracle.write_range(start, data, written)
            elif kind == "xor":
                fast.xor_byte(start, offset, mask)
                oracle.xor_byte(start, offset, mask)
            else:
                assert fast.read_range(start, n) == oracle.read_range(start, n)
        # Whatever the interleaving, the full space reads identically.
        assert fast.read_range(0, SPACE) == oracle.read_range(0, SPACE)


class TestSectorStore:
    def test_never_written_reads_zero(self):
        store = SectorStore(SECTOR)
        assert store.read_range(3, 5) == bytes(5 * SECTOR)

    def test_zero_read_allocates_nothing(self):
        store = SectorStore(SECTOR)
        store.read_range(0, 64)
        assert store.chunk_count() == 0

    def test_sparse_writes_stay_sparse(self):
        store = SectorStore(SECTOR, chunk_sectors=4)
        store.write_range(0, bytes(SECTOR), 1)
        store.write_range(400, bytes(SECTOR), 1)
        assert store.chunk_count() == 2

    def test_cross_chunk_round_trip(self):
        store = SectorStore(SECTOR, chunk_sectors=4)
        data = _payload(7, 10)  # spans three 4-sector chunks
        store.write_range(2, data, 10)
        assert store.read_range(2, 10) == data

    def test_torn_write_lands_prefix_only(self):
        store = SectorStore(SECTOR)
        store.write_range(0, _payload(1, 4), 2)
        assert store.read_range(0, 2) == _payload(1, 4)[: 2 * SECTOR]
        assert store.read_range(2, 2) == bytes(2 * SECTOR)

    def test_zero_sector_write_is_a_noop(self):
        store = SectorStore(SECTOR)
        store.write_range(0, _payload(1, 1), 0)
        assert store.chunk_count() == 0

    def test_xor_byte_flips_in_place(self):
        store = SectorStore(SECTOR)
        store.write_range(5, bytes(SECTOR), 1)
        store.xor_byte(5, 10, 0xFF)
        assert store.read_range(5, 1)[10] == 0xFF

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SectorStore(0)
        with pytest.raises(ValueError):
            SectorStore(SECTOR, chunk_sectors=0)
        with pytest.raises(ValueError):
            LegacySectorStore(-1)
