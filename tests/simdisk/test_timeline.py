"""DiskTimeline and the deferred-time frame machinery."""

import pytest

from repro.common.clock import SimClock
from repro.common.frames import (
    FrameFork,
    active_frame,
    ceil_us,
    charge_elapsed,
    frame_now,
    service_frame,
)
from repro.simdisk.timeline import DiskTimeline


class TestBlockingMode:
    def test_charge_advances_clock_like_inline_advance(self):
        """With no frame the timeline IS the old advance_us, bit-exact."""
        clock_a, clock_b = SimClock(), SimClock()
        timeline = DiskTimeline(clock_a)
        for elapsed in (100, 0.25, 7.999, 12345, 0.0001):
            timeline.charge(elapsed)
            clock_b.advance_us(elapsed)
        assert clock_a.now_us == clock_b.now_us

    def test_charge_returns_start_end(self):
        clock = SimClock()
        timeline = DiskTimeline(clock)
        assert timeline.charge(100) == (0, 100)
        assert timeline.charge(50) == (100, 150)
        assert clock.now_us == 150

    def test_busy_total_accumulates(self):
        timeline = DiskTimeline(SimClock())
        timeline.charge(100)
        timeline.charge(25.5)  # ceil -> 26
        assert timeline.busy_total_us == 126

    def test_ceil_matches_advance_us_rounding(self):
        clock = SimClock()
        clock.advance_us(0.25)
        assert ceil_us(0.25) == clock.now_us == 1


class TestFrames:
    def test_frame_defers_clock_advancement(self):
        clock = SimClock()
        timeline = DiskTimeline(clock)
        with service_frame(clock) as frame:
            timeline.charge(300)
            assert clock.now_us == 0
            assert frame.cursor_us == 300
            assert frame.charged_us == 300
        assert clock.now_us == 0  # the caller schedules the completion

    def test_frame_sequences_charges_on_one_disk(self):
        clock = SimClock()
        timeline = DiskTimeline(clock)
        with service_frame(clock) as frame:
            assert timeline.charge(100) == (0, 100)
            assert timeline.charge(100) == (100, 200)
        assert frame.cursor_us == 200

    def test_two_disks_overlap_across_frames(self):
        """The whole point: concurrent ops on different disks cost max."""
        clock = SimClock()
        disk_a, disk_b = DiskTimeline(clock), DiskTimeline(clock)
        with service_frame(clock) as op1:
            disk_a.charge(500)
        with service_frame(clock) as op2:
            disk_b.charge(300)
        assert op1.cursor_us == 500
        assert op2.cursor_us == 300  # not 800: disk B was idle

    def test_same_disk_serializes_across_frames(self):
        clock = SimClock()
        disk = DiskTimeline(clock)
        with service_frame(clock) as op1:
            disk.charge(500)
        with service_frame(clock) as op2:
            disk.charge(300)
            assert disk.last_wait_us == 500
        assert op2.cursor_us == 800
        assert op2.waited_us == 500

    def test_frames_nest_innermost_wins(self):
        clock = SimClock()
        with service_frame(clock) as outer:
            with service_frame(clock) as inner:
                assert active_frame(clock) is inner
            assert active_frame(clock) is outer
        assert active_frame(clock) is None

    def test_frames_keyed_per_clock(self):
        clock_a, clock_b = SimClock(), SimClock()
        with service_frame(clock_a) as frame:
            assert active_frame(clock_a) is frame
            assert active_frame(clock_b) is None

    def test_frame_now_tracks_cursor(self):
        clock = SimClock()
        assert frame_now(clock) == 0
        with service_frame(clock):
            charge_elapsed(clock, 40)
            assert frame_now(clock) == 40
            assert clock.now_us == 0
        assert frame_now(clock) == 0

    def test_charge_elapsed_blocking_fallback(self):
        clock = SimClock()
        charge_elapsed(clock, 33.5)
        assert clock.now_us == 34


class TestFrameFork:
    def test_branches_join_at_slowest(self):
        clock = SimClock()
        disk_a, disk_b = DiskTimeline(clock), DiskTimeline(clock)
        with service_frame(clock) as frame:
            fork = FrameFork(clock)
            with fork.branch():
                disk_a.charge(500)
            with fork.branch():
                disk_b.charge(300)
            fork.join()
            assert frame.cursor_us == 500  # max, not 800

    def test_branches_on_one_disk_still_serialize(self):
        clock = SimClock()
        disk = DiskTimeline(clock)
        with service_frame(clock) as frame:
            fork = FrameFork(clock)
            with fork.branch():
                disk.charge(500)
            with fork.branch():
                disk.charge(300)  # queues behind the first branch
            fork.join()
            assert frame.cursor_us == 800

    def test_no_frame_is_passthrough(self):
        clock = SimClock()
        fork = FrameFork(clock)
        with fork.branch():
            clock.advance_us(100)
        fork.join()
        assert clock.now_us == 100


class TestUtilization:
    def test_fully_busy_disk_reads_100(self):
        clock = SimClock()
        timeline = DiskTimeline(clock)
        timeline.charge(1000)
        assert timeline.utilization_percent() == 100

    def test_half_busy_disk_reads_50(self):
        clock = SimClock()
        timeline = DiskTimeline(clock)
        timeline.charge(500)
        clock.advance_us(500)
        assert timeline.utilization_percent() == 50

    def test_idle_disk_reads_0(self):
        clock = SimClock()
        timeline = DiskTimeline(clock)
        assert timeline.utilization_percent() == 0
        clock.advance_us(100)
        assert timeline.utilization_percent() == 0

    def test_deferred_reservations_do_not_exceed_100(self):
        clock = SimClock()
        timeline = DiskTimeline(clock)
        with service_frame(clock):
            timeline.charge(1000)
            timeline.charge(1000)
        assert timeline.utilization_percent() == 100


class TestFrameHygiene:
    def test_frame_pops_on_exception(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with service_frame(clock):
                raise RuntimeError("op failed")
        assert active_frame(clock) is None
