"""Property tests: stable storage under arbitrary crash schedules.

The careful-write guarantee, fuzzed: whatever sequence of puts and
mirror crashes occurs, after repair + recover every key either holds a
value that was written to it at some point, with the *latest durable*
write winning, or (for a key whose very first write crashed) is absent.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import DiskCrashedError, DiskError
from repro.common.metrics import Metrics
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore


@st.composite
def crash_schedules(draw):
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(["put", "put", "put", "crash_a", "crash_b", "delete"])
        )
        key = f"k{draw(st.integers(min_value=0, max_value=4))}"
        value = draw(st.integers(min_value=0, max_value=255))
        size = draw(st.sampled_from([10, 400, 1500]))
        crash_at = draw(st.integers(min_value=1, max_value=3))
        ops.append((kind, key, value, size, crash_at))
    return ops


def build_store():
    clock, metrics = SimClock(), Metrics()
    mirror_a = SimDisk("a", DiskGeometry.small(), clock, metrics)
    mirror_b = SimDisk("b", DiskGeometry.small(), clock, metrics)
    return StableStore(mirror_a, mirror_b), mirror_a, mirror_b


class TestStableStoreFuzz:
    @given(crash_schedules())
    @settings(max_examples=60, deadline=None)
    def test_recovery_yields_some_written_value(self, ops):
        store, mirror_a, mirror_b = build_store()
        written: dict[str, list[bytes]] = {}
        deleted: set[str] = set()
        for kind, key, value, size, crash_at in ops:
            payload = bytes([value]) * size
            if kind == "put":
                try:
                    store.put(key, payload)
                    written.setdefault(key, []).append(payload)
                    deleted.discard(key)
                except DiskCrashedError:
                    # The write may or may not have become durable.
                    written.setdefault(key, []).append(payload)
                    mirror_a.repair()
                    mirror_b.repair()
                    store.recover()
            elif kind == "delete":
                try:
                    store.delete(key)
                    deleted.add(key)
                except DiskCrashedError:
                    mirror_a.repair()
                    mirror_b.repair()
                    store.recover()
            elif kind == "crash_a":
                mirror_a.faults.crash_after_writes(crash_at)
            else:
                mirror_b.faults.crash_after_writes(crash_at)
        mirror_a.repair()
        mirror_b.repair()
        store.recover()
        for key, values in written.items():
            if key in deleted:
                continue
            try:
                result = store.get(key)
            except KeyError:
                continue  # first write of the key never became durable
            assert result in values, (
                f"{key} holds a value that was never written to it"
            )

    @given(crash_schedules())
    @settings(max_examples=40, deadline=None)
    def test_mirrors_agree_after_recover(self, ops):
        store, mirror_a, mirror_b = build_store()
        for kind, key, value, size, crash_at in ops:
            try:
                if kind == "put":
                    store.put(key, bytes([value]) * size)
                elif kind == "delete":
                    store.delete(key)
                elif kind == "crash_a":
                    mirror_a.faults.crash_after_writes(crash_at)
                else:
                    mirror_b.faults.crash_after_writes(crash_at)
            except DiskCrashedError:
                mirror_a.repair()
                mirror_b.repair()
                store.recover()
        mirror_a.repair()
        mirror_b.repair()
        store.recover()
        # After recovery, both copies of every key decode identically.
        for key in list(store.keys()):
            value = store.get(key)
            mirror_a.crash()
            assert store.get(key) == value  # forced read from B
            mirror_a.repair()
