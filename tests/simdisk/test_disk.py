"""The simulated disk: I/O, references, faults."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import BadAddressError, BadSectorError, DiskCrashedError
from repro.common.metrics import Metrics
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry


@pytest.fixture
def disk():
    return SimDisk("t", DiskGeometry.small(), SimClock(), Metrics())


class TestReadWrite:
    def test_round_trip(self, disk):
        payload = bytes(range(256)) * 4  # 1024 bytes = 2 sectors
        disk.write_sectors(10, payload)
        assert disk.read_sectors(10, 2) == payload

    def test_unwritten_sectors_read_zero(self, disk):
        assert disk.read_sectors(100, 1) == bytes(512)

    def test_each_call_is_one_reference(self, disk):
        disk.write_sectors(0, bytes(512))
        disk.read_sectors(0, 1)
        disk.read_sectors(0, 1)
        assert disk.metrics.get("disk.t.references") == 3
        assert disk.metrics.get("disk.t.reads") == 2
        assert disk.metrics.get("disk.t.writes") == 1

    def test_contiguous_read_is_one_reference_regardless_of_size(self, disk):
        disk.read_sectors(0, 64)
        assert disk.metrics.get("disk.t.references") == 1
        assert disk.metrics.get("disk.t.sectors_read") == 64

    def test_io_advances_clock(self, disk):
        before = disk.clock.now_us
        disk.read_sectors(0, 8)
        assert disk.clock.now_us > before

    def test_write_length_must_be_sector_multiple(self, disk):
        with pytest.raises(BadAddressError):
            disk.write_sectors(0, b"short")

    def test_empty_write_rejected(self, disk):
        with pytest.raises(BadAddressError):
            disk.write_sectors(0, b"")

    def test_out_of_range_rejected(self, disk):
        last = disk.geometry.total_sectors
        with pytest.raises(BadAddressError):
            disk.read_sectors(last, 1)
        with pytest.raises(BadAddressError):
            disk.read_sectors(last - 1, 2)


class TestReadInPassing:
    def test_returns_data_without_reference(self, disk):
        disk.write_sectors(4, b"\xaa" * 512)
        before = disk.metrics.get("disk.t.references")
        data = disk.read_in_passing(4, 1)
        assert data == b"\xaa" * 512
        assert disk.metrics.get("disk.t.references") == before
        assert disk.metrics.get("disk.t.readahead_sectors") == 1

    def test_cheaper_than_full_read(self):
        metrics = Metrics()
        clock = SimClock()
        disk = SimDisk("a", DiskGeometry.small(), clock, metrics)
        disk.read_sectors(0, 1)  # position the head
        t0 = clock.now_us
        disk.read_in_passing(1, 8)
        passing_cost = clock.now_us - t0
        t0 = clock.now_us
        disk.read_sectors(1000, 8)
        full_cost = clock.now_us - t0
        assert passing_cost < full_cost


class TestFaults:
    def test_crashed_disk_refuses_io(self, disk):
        disk.crash()
        with pytest.raises(DiskCrashedError):
            disk.read_sectors(0, 1)
        with pytest.raises(DiskCrashedError):
            disk.write_sectors(0, bytes(512))

    def test_repair_restores_service_and_contents(self, disk):
        disk.write_sectors(3, b"\x11" * 512)
        disk.crash()
        disk.repair()
        assert disk.read_sectors(3, 1) == b"\x11" * 512

    def test_bad_sector_unreadable(self, disk):
        disk.faults.mark_bad(42)
        with pytest.raises(BadSectorError):
            disk.read_sectors(42, 1)
        with pytest.raises(BadSectorError):
            disk.read_sectors(40, 4)  # range covering it

    def test_crash_after_writes_tears_the_write(self, disk):
        disk.write_sectors(0, b"\x22" * 512 * 4)
        disk.faults.crash_after_writes(1)
        with pytest.raises(DiskCrashedError):
            disk.write_sectors(0, b"\x33" * 512 * 4)
        disk.repair()
        data = disk.read_sectors(0, 4)
        # A prefix (possibly empty) is new, the rest must be old — never
        # interleaved garbage.
        boundary = 0
        while boundary < 4 and data[boundary * 512] == 0x33:
            boundary += 1
        assert data[: boundary * 512] == b"\x33" * (boundary * 512)
        assert data[boundary * 512 :] == b"\x22" * ((4 - boundary) * 512)

    def test_crash_after_n_counts_writes(self, disk):
        disk.faults.crash_after_writes(3)
        disk.write_sectors(0, bytes(512))
        disk.write_sectors(1, bytes(512))
        with pytest.raises(DiskCrashedError):
            disk.write_sectors(2, bytes(512))


class TestReadInPassingAccounting:
    """Regression: readahead transfer time must reach busy accounting.

    read_in_passing once charged the timeline but skipped busy_us and
    the utilization gauge, so metrics-derived utilization silently
    diverged from the gauge under readahead-heavy loads.
    """

    def test_counts_busy_time(self, disk):
        disk.read_sectors(0, 1)  # position the head
        busy_before = disk.metrics.get("disk.t.busy_us")
        disk.read_in_passing(1, 8)
        assert disk.metrics.get("disk.t.busy_us") > busy_before

    def test_updates_utilization_gauge(self):
        clock = SimClock()
        metrics = Metrics()
        disk = SimDisk("t", DiskGeometry.small(), clock, metrics)
        disk.read_sectors(0, 1)
        # Let simulated idle time pass so utilization has headroom to
        # visibly rise when the readahead transfer is charged.
        clock.advance_to(clock.now_us * 100)
        before = metrics.get_gauge("disk.t.utilization")
        disk.read_in_passing(1, 32)
        assert metrics.get_gauge("disk.t.utilization") != before

    def test_emits_a_span_when_traced(self):
        from repro.common.trace import Tracer

        clock = SimClock()
        tracer = Tracer(clock, enabled=True)
        disk = SimDisk("t", DiskGeometry.small(), clock, Metrics(), tracer=tracer)
        disk.read_sectors(0, 1)
        disk.read_in_passing(1, 4)
        assert [s.op for s in tracer.spans()] == ["read", "read_in_passing"]


class TestDeferredAccountingEquivalence:
    """The registry must read as if every update were applied inline."""

    def test_interleaved_reads_observe_exact_counts(self, disk):
        for index in range(5):
            disk.write_sectors(index * 8, bytes(512) * 8)
            disk.read_sectors(index * 8, 8)
            # Reading mid-campaign must see everything so far.
            assert disk.metrics.get("disk.t.references") == 2 * (index + 1)
        assert disk.metrics.get("disk.t.reads") == 5
        assert disk.metrics.get("disk.t.writes") == 5
        assert disk.metrics.get("disk.t.sectors_written") == 40
        samples = disk.metrics.histogram_samples("disk.t.service_us")
        assert len(samples) == 10
        assert disk.metrics.get("disk.t.busy_us") == sum(samples)

    def test_utilization_gauge_matches_inline_computation(self, disk):
        disk.write_sectors(0, bytes(512) * 4)
        disk.read_sectors(0, 4)
        expected = disk.timeline.utilization_percent()
        assert disk.metrics.get_gauge("disk.t.utilization") == expected

    def test_service_memo_does_not_change_modelled_time(self):
        def campaign(defeat_memo):
            clock, metrics = SimClock(), Metrics()
            disk = SimDisk("t", DiskGeometry.small(), clock, metrics)
            for _ in range(3):  # wraps: repeats hit the memo
                for index in range(4):
                    if defeat_memo:  # every reference recomputes
                        disk._service_memo.clear()
                    disk.write_sectors(index * 8, bytes(512) * 8)
                    disk.read_sectors(index * 8, 8)
            return clock.now_us, metrics.histogram_samples("disk.t.service_us")

        warm = campaign(defeat_memo=False)
        cold = campaign(defeat_memo=True)
        assert warm == cold
