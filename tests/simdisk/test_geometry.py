"""Disk geometry mappings."""

import pytest

from repro.common.errors import BadAddressError
from repro.simdisk.geometry import DiskGeometry


@pytest.fixture
def geometry():
    return DiskGeometry(cylinders=4, heads=2, sectors_per_track=8)


class TestSizes:
    def test_totals(self, geometry):
        assert geometry.sectors_per_cylinder == 16
        assert geometry.total_sectors == 64
        assert geometry.total_tracks == 8
        assert geometry.capacity_bytes == 64 * 512

    def test_presets_are_plausible(self):
        assert DiskGeometry.small().capacity_bytes == 64 * 1024 * 1024
        assert DiskGeometry.medium().capacity_bytes == 1024 * 1024 * 1024
        assert DiskGeometry.large().capacity_bytes == 8 * 1024 * 1024 * 1024

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DiskGeometry(cylinders=0, heads=1, sectors_per_track=1)

    def test_sector_size_fixed(self):
        with pytest.raises(ValueError):
            DiskGeometry(cylinders=1, heads=1, sectors_per_track=1, sector_size=4096)


class TestMappings:
    def test_cylinder_of(self, geometry):
        assert geometry.cylinder_of(0) == 0
        assert geometry.cylinder_of(15) == 0
        assert geometry.cylinder_of(16) == 1
        assert geometry.cylinder_of(63) == 3

    def test_track_of(self, geometry):
        assert geometry.track_of(0) == 0
        assert geometry.track_of(7) == 0
        assert geometry.track_of(8) == 1
        assert geometry.track_of(63) == 7

    def test_track_bounds(self, geometry):
        assert geometry.track_bounds(0) == (0, 8)
        assert geometry.track_bounds(7) == (56, 64)

    def test_track_bounds_out_of_range(self, geometry):
        with pytest.raises(BadAddressError):
            geometry.track_bounds(8)

    def test_rotational_position(self, geometry):
        assert geometry.rotational_position(0) == 0
        assert geometry.rotational_position(9) == 1
        assert geometry.rotational_position(15) == 7

    def test_check_sector_bounds(self, geometry):
        with pytest.raises(BadAddressError):
            geometry.check_sector(64)
        with pytest.raises(BadAddressError):
            geometry.check_sector(-1)
        geometry.check_sector(63)  # no raise
