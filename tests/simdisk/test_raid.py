"""The RAID tier's algebra and redundancy contracts, unit-tested.

Four claims carry the design (DESIGN.md §14) and each gets direct
coverage here: the chunk -> (member, physical) mapping is a bijection
over the data area (metadata and parity chunks excluded); the on-disk
superblock and journal records survive a pack/parse round trip and
reject every torn or foreign blob; degraded reads are *byte-identical*
to optimal reads for arbitrary write histories with any single member
down (the hypothesis property the acceptance gate names); and the
background rebuild restores OPTIMAL content-exactly, even when its own
target dies mid-rebuild.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import BadAddressError
from repro.common.metrics import Metrics
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.raid import (
    ArrayFailedError,
    ArrayState,
    RaidRebuilder,
    StripedVolume,
    _pack_journal,
    _pack_superblock,
    _parse_journal,
    _parse_superblock,
)

#: 64 sectors per member; chunk 4 -> 16 physical chunks, 2 of metadata.
SMALL = DiskGeometry(cylinders=4, heads=2, sectors_per_track=8)
SECTOR = SMALL.sector_size


def make_array(level="raid5", members=4, chunk=4):
    clock, metrics = SimClock(), Metrics()
    drives = [
        SimDisk(f"m{i}", SMALL, clock, metrics) for i in range(members)
    ]
    array = StripedVolume(
        "t", drives, level=level, chunk_sectors=chunk, metrics=metrics
    )
    return array, drives, metrics


def data_chunks(array):
    return array.geometry.total_sectors // array.chunk_sectors


class TestLayoutAlgebra:
    @pytest.mark.parametrize("level", ["raid0", "raid1", "raid5"])
    def test_mapping_round_trips_over_the_whole_data_area(self, level):
        array, _, _ = make_array(level=level)
        seen = set()
        for chunk in range(data_chunks(array)):
            member, physical = array.chunk_to_member(chunk)
            assert physical >= array.meta_chunks
            assert physical < array.member_chunks
            assert array.member_to_chunk(member, physical) == chunk
            seen.add((member, physical))
        # Injective: no two logical chunks share a physical placement.
        assert len(seen) == data_chunks(array)

    @pytest.mark.parametrize("level", ["raid0", "raid1", "raid5"])
    def test_metadata_area_is_unmapped(self, level):
        array, _, _ = make_array(level=level)
        for member in range(len(array.members)):
            for physical in range(array.meta_chunks):
                assert array.member_to_chunk(member, physical) is None
            assert array.member_to_chunk(member, array.member_chunks) is None

    def test_parity_rotates_and_is_unmapped(self):
        array, _, _ = make_array(level="raid5")
        rows = array.member_chunks - array.meta_chunks
        holders = set()
        for row in range(rows):
            parity = array.parity_member(row)
            holders.add(parity)
            assert (
                array.member_to_chunk(parity, array.meta_chunks + row)
                is None
            )
        # Left-asymmetric rotation visits every member.
        assert holders == set(range(len(array.members)))

    def test_bad_addresses_raise(self):
        array, _, _ = make_array()
        with pytest.raises(BadAddressError):
            array.chunk_to_member(-1)
        with pytest.raises(BadAddressError):
            array.member_to_chunk(99, 2)

    def test_stripe_boundary_io_is_byte_exact(self):
        array, _, _ = make_array(level="raid5", chunk=4)
        shadow = bytearray(array.geometry.total_sectors * SECTOR)
        row_bytes = 3 * 4 * SECTOR  # data columns x chunk x sector
        spans = [
            (0, 4 * SECTOR),                    # exactly one chunk
            (4 * SECTOR - 7, 14),               # straddles a chunk edge
            (row_bytes - SECTOR, 2 * SECTOR),   # straddles a row edge
            (2 * row_bytes + 5, row_bytes),     # a full row, misaligned
        ]
        for fill, (offset, length) in enumerate(spans, start=1):
            lo = offset // SECTOR
            hi = -(-(offset + length) // SECTOR)
            data = bytearray(array.read_sectors(lo, hi - lo))
            data[offset - lo * SECTOR : offset - lo * SECTOR + length] = (
                bytes([fill]) * length
            )
            array.write_sectors(lo, bytes(data))
            shadow[lo * SECTOR : hi * SECTOR] = data
        whole = array.read_sectors(0, array.geometry.total_sectors)
        assert whole == bytes(shadow)

    def test_optimal_parity_invariant_holds_raw(self):
        array, drives, _ = make_array(level="raid5", chunk=4)
        array.write_sectors(8, bytes(range(256)) * 20)  # 10 sectors
        chunk_sectors = array.chunk_sectors
        for row in range(array.member_chunks - array.meta_chunks):
            physical = (array.meta_chunks + row) * chunk_sectors
            acc = bytes(chunk_sectors * SECTOR)
            for drive in drives:
                raw = drive.read_sectors(physical, chunk_sectors)
                acc = bytes(a ^ b for a, b in zip(acc, raw))
            assert acc == bytes(len(acc)), f"row {row} parity broken"


class TestOnDiskCodecs:
    def test_superblock_round_trip(self):
        blob = _pack_superblock(5, 4, 16, 2, epoch=7, failed_bits=0b0010,
                                rebuilding_bits=0b1000, sector_size=SECTOR)
        assert len(blob) == SECTOR
        parsed = _parse_superblock(
            blob, level=5, n_members=4, chunk_sectors=16, member_index=2
        )
        assert parsed == (7, 0b0010, 0b1000)

    def test_superblock_rejects_foreign_and_torn(self):
        blob = _pack_superblock(5, 4, 16, 2, epoch=7, failed_bits=0,
                                rebuilding_bits=0, sector_size=SECTOR)
        common = dict(level=5, n_members=4, chunk_sectors=16)
        # Same bytes, different slot: the identity check refuses it.
        assert _parse_superblock(blob, member_index=3, **common) is None
        # One flipped byte: the CRC refuses it.
        torn = bytes([blob[0] ^ 0xFF]) + blob[1:]
        assert _parse_superblock(torn, member_index=2, **common) is None
        assert _parse_superblock(bytes(SECTOR), member_index=2, **common) is None

    def test_journal_round_trip_and_rejection(self):
        payload = bytes(range(256)) * 8
        blob = _pack_journal(1, 5, 2, 3, epoch=9, payload=payload,
                             sector_size=SECTOR)
        assert len(blob) == SECTOR
        import zlib
        assert _parse_journal(blob) == (1, 5, 2, 3, zlib.crc32(payload))
        assert _parse_journal(bytes(SECTOR)) is None
        # A torn byte inside the record body breaks the CRC.
        assert _parse_journal(bytes([blob[0] ^ 1]) + blob[1:]) is None


#: (start_sector, n_sectors, fill) histories; starts are taken modulo
#: the array's actual logical capacity (the logical geometry rounds to
#: a rectangular shape, so it can sit below the raw data capacity).
def write_ops(total_sectors):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=total_sectors - 1),
            st.integers(min_value=1, max_value=24),
            st.integers(min_value=1, max_value=255),
        ),
        min_size=1,
        max_size=12,
    )


class TestDegradedEquivalence:
    """The acceptance property: one member down changes nothing a
    reader can observe — reconstruction is byte-identical."""

    @given(ops=write_ops(56 * 3), failed=st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_raid5_degraded_reads_match_optimal(self, ops, failed):
        array, _, _ = make_array(level="raid5", members=4, chunk=4)
        total = array.geometry.total_sectors
        shadow = bytearray(total * SECTOR)
        for start, n, fill in ops:
            start %= total
            n = min(n, total - start)
            data = bytes([fill]) * (n * SECTOR)
            array.write_sectors(start, data)
            shadow[start * SECTOR : (start + n) * SECTOR] = data
        array.fail_member(failed)
        assert array.state is ArrayState.DEGRADED
        assert array.read_sectors(0, total) == bytes(shadow)

    @given(ops=write_ops(56), failed=st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_raid1_degraded_reads_match_optimal(self, ops, failed):
        array, _, _ = make_array(level="raid1", members=3, chunk=4)
        total = array.geometry.total_sectors
        shadow = bytearray(total * SECTOR)
        for start, n, fill in ops:
            start %= total
            n = min(n, total - start)
            data = bytes([fill]) * (n * SECTOR)
            array.write_sectors(start, data)
            shadow[start * SECTOR : (start + n) * SECTOR] = data
        array.fail_member(failed)
        assert array.state is ArrayState.DEGRADED
        assert array.read_sectors(0, total) == bytes(shadow)

    @given(ops=write_ops(56 * 3), failed=st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_degraded_writes_survive_rebuild(self, ops, failed):
        """Writes issued *while* degraded are intact after replace +
        rebuild returns the array to OPTIMAL."""
        array, _, _ = make_array(level="raid5", members=4, chunk=4)
        total = array.geometry.total_sectors
        array.fail_member(failed)
        shadow = bytearray(total * SECTOR)
        for start, n, fill in ops:
            start %= total
            n = min(n, total - start)
            data = bytes([fill]) * (n * SECTOR)
            array.write_sectors(start, data)
            shadow[start * SECTOR : (start + n) * SECTOR] = data
        array.replace_member(failed, blank=True)
        RaidRebuilder(array, chunks_per_step=8).run_cycle()
        assert array.state is ArrayState.OPTIMAL
        assert array.read_sectors(0, total) == bytes(shadow)


class TestRecoverFromSuperblocks:
    def test_membership_survives_a_restart(self):
        array, drives, _ = make_array(level="raid5")
        array.write_sectors(0, b"\x5a" * (20 * SECTOR))
        array.fail_member(1)
        epoch = array.epoch
        # Machine restart: every drive goes dark, then comes back; the
        # superblocks are the only memory.
        array.crash()
        for drive in drives:
            if drive.crashed:
                drive.repair()
        array.repair()
        array.recover(resync=True)
        assert array.failed_members == (1,)
        assert array.state is ArrayState.DEGRADED
        assert array.epoch > epoch
        assert array.read_sectors(0, 20)[: 20 * SECTOR] == b"\x5a" * (
            20 * SECTOR
        )

    def test_interrupted_rebuild_restarts_from_scratch(self):
        array, drives, _ = make_array(level="raid5")
        array.write_sectors(0, b"\x77" * (30 * SECTOR))
        array.fail_member(2)
        array.replace_member(2, blank=True)
        RaidRebuilder(array, chunks_per_step=2).step(force=True)
        assert array.rebuild_target == 2
        array.crash()
        for drive in drives:
            if drive.crashed:
                drive.repair()
        array.repair()
        array.recover()
        # The half-rebuilt member is stale again, not half-trusted.
        assert array.rebuild_target is None
        assert array.failed_members == (2,)
        assert array.read_sectors(0, 30) == b"\x77" * (30 * SECTOR)


class TestRebuildLifecycle:
    def test_rebuild_restores_optimal_with_foreground_writes(self):
        array, _, metrics = make_array(level="raid5")
        total = array.geometry.total_sectors
        shadow = bytearray(total * SECTOR)

        def put(start, n, fill):
            data = bytes([fill]) * (n * SECTOR)
            array.write_sectors(start, data)
            shadow[start * SECTOR : (start + n) * SECTOR] = data

        put(0, 40, 0xAA)
        array.fail_member(0)
        put(20, 10, 0xBB)
        array.replace_member(0, blank=True)
        rebuilder = RaidRebuilder(array, chunks_per_step=2)
        fill = 1
        while not rebuilder.done:
            rebuilder.step(force=True)
            # Interleave writes below and above the watermark so both
            # the write-through and the stale-column paths run.
            put(4, 2, fill)
            put(120, 2, fill)
            fill += 1
        assert array.state is ArrayState.OPTIMAL
        assert rebuilder.progress_percent() == 100
        assert array.read_sectors(0, total) == bytes(shadow)
        assert metrics.get("raid.t.rebuild.chunks") > 0

    def test_losing_the_target_cancels_the_rebuild(self):
        array, _, _ = make_array(level="raid5")
        array.write_sectors(0, b"\x11" * (24 * SECTOR))
        array.fail_member(3)
        array.replace_member(3, blank=True)
        RaidRebuilder(array, chunks_per_step=1).step(force=True)
        assert array.state is ArrayState.REBUILDING
        # The replacement drive dies too: back to DEGRADED — never
        # FAILED, three healthy members still hold everything.
        array.fail_member(3)
        assert array.state is ArrayState.DEGRADED
        assert array.rebuild_target is None
        assert array.read_sectors(0, 24) == b"\x11" * (24 * SECTOR)
        # A second replacement goes the whole way.
        array.replace_member(3, blank=True)
        RaidRebuilder(array, chunks_per_step=8).run_cycle()
        assert array.state is ArrayState.OPTIMAL

    def test_redundancy_exhaustion_fails_loudly(self):
        array, _, _ = make_array(level="raid5")
        array.write_sectors(0, b"\x42" * (8 * SECTOR))
        array.fail_member(0)
        array.fail_member(2)
        assert array.state is ArrayState.FAILED
        with pytest.raises(ArrayFailedError):
            array.read_sectors(0, 8)
        with pytest.raises(ArrayFailedError):
            array.write_sectors(0, bytes(SECTOR))

    def test_replace_guards(self):
        array, _, _ = make_array(level="raid5")
        with pytest.raises(ValueError):
            array.replace_member(1)  # not failed
        array.fail_member(1)
        array.replace_member(1, blank=True)
        array.fail_member(2)
        with pytest.raises(ValueError):
            array.replace_member(2)  # one rebuild at a time
        raid0, _, _ = make_array(level="raid0")
        with pytest.raises(ValueError):
            raid0.replace_member(0)
