"""Stable storage: careful replicated writes survive every single fault."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DiskCrashedError, DiskError
from repro.common.metrics import Metrics
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore


def build_store():
    clock = SimClock()
    metrics = Metrics()
    mirror_a = SimDisk("a", DiskGeometry.small(), clock, metrics)
    mirror_b = SimDisk("b", DiskGeometry.small(), clock, metrics)
    return StableStore(mirror_a, mirror_b), mirror_a, mirror_b


class TestBasics:
    def test_put_get_round_trip(self):
        store, _, _ = build_store()
        store.put("fit:10", b"structural data")
        assert store.get("fit:10") == b"structural data"

    def test_overwrite_updates(self):
        store, _, _ = build_store()
        store.put("k", b"v1")
        store.put("k", b"v2")
        assert store.get("k") == b"v2"

    def test_missing_key_raises(self):
        store, _, _ = build_store()
        with pytest.raises(KeyError):
            store.get("nothing")

    def test_contains_and_keys(self):
        store, _, _ = build_store()
        store.put("x", b"1")
        store.put("y", b"2")
        assert "x" in store
        assert "z" not in store
        assert sorted(store.keys()) == ["x", "y"]

    def test_delete(self):
        store, _, _ = build_store()
        store.put("k", b"v")
        store.delete("k")
        assert "k" not in store
        with pytest.raises(KeyError):
            store.get("k")

    def test_delete_missing_is_noop(self):
        store, _, _ = build_store()
        store.delete("never-existed")

    def test_empty_payload(self):
        store, _, _ = build_store()
        store.put("empty", b"")
        assert store.get("empty") == b""

    def test_large_payload(self):
        store, _, _ = build_store()
        blob = bytes(range(256)) * 64  # 16 KB
        store.put("big", blob)
        assert store.get("big") == blob

    def test_slot_reuse_after_delete(self):
        store, _, _ = build_store()
        store.put("a", b"x" * 100)
        store.delete("a")
        high_water = store._next_sector
        store.put("b", b"y" * 100)
        assert store._next_sector == high_water  # tombstoned slot reused


class TestSurvival:
    def test_read_survives_one_mirror_crash(self):
        store, mirror_a, mirror_b = build_store()
        store.put("k", b"precious")
        mirror_a.crash()
        assert store.get("k") == b"precious"
        mirror_a.repair()
        mirror_b.crash()
        assert store.get("k") == b"precious"

    def test_both_mirrors_down_is_an_error(self):
        store, mirror_a, mirror_b = build_store()
        store.put("k", b"v")
        mirror_a.crash()
        mirror_b.crash()
        with pytest.raises(DiskError):
            store.get("k")

    def test_crash_between_mirror_writes_keeps_old_or_new(self):
        """The careful-write guarantee at every crash point."""
        for crash_at in (1, 2):
            store, mirror_a, mirror_b = build_store()
            store.put("k", b"OLD")
            mirror_a.faults.crash_after_writes(crash_at) if crash_at == 1 else (
                mirror_b.faults.crash_after_writes(1)
            )
            try:
                store.put("k", b"NEW")
            except DiskCrashedError:
                pass
            mirror_a.repair()
            mirror_b.repair()
            store.recover()
            assert store.get("k") in (b"OLD", b"NEW")

    def test_recover_repairs_diverged_mirrors(self):
        store, mirror_a, mirror_b = build_store()
        store.put("k", b"v1")
        mirror_b.crash()
        try:
            store.put("k", b"v2")
        except DiskCrashedError:
            pass
        mirror_b.repair()
        repaired = store.recover()
        assert repaired >= 1
        mirror_a.crash()  # force read from B: must now hold v2
        assert store.get("k") == b"v2"

    def test_recover_on_healthy_store_is_noop(self):
        store, _, _ = build_store()
        store.put("k", b"v")
        assert store.recover() == 0


class TestDirectoryRebuild:
    def test_rebuild_finds_records(self):
        store, _, _ = build_store()
        store.put("one", b"1")
        store.put("two", b"22")
        store.put("three", b"333")
        store.delete("two")
        found = store.rebuild_directory()
        assert found == 2
        assert store.get("one") == b"1"
        assert store.get("three") == b"333"
        assert "two" not in store

    def test_rebuild_keeps_latest_version(self):
        store, _, _ = build_store()
        store.put("k", b"x" * 600)  # 2+ sectors
        store.put("k", b"y")  # smaller: may move slots
        store.rebuild_directory()
        assert store.get("k") == b"y"
