"""The fault injector's own contract."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import BadSectorError, MediaError
from repro.common.metrics import Metrics
from repro.simdisk.disk import SimDisk
from repro.simdisk.faults import FaultInjector
from repro.simdisk.geometry import DiskGeometry


def build_disk(seed: int = 0) -> SimDisk:
    return SimDisk(
        "t",
        DiskGeometry.small(),
        SimClock(),
        Metrics(),
        faults=FaultInjector(seed=seed),
    )


class TestCrashControl:
    def test_starts_quiescent(self):
        injector = FaultInjector()
        assert not injector.crashed
        assert injector.note_write(4) is None

    def test_crash_now(self):
        injector = FaultInjector()
        injector.crash_now()
        assert injector.crashed
        assert injector.note_write(4) == 0  # nothing reaches the platter

    def test_repair_resets(self):
        injector = FaultInjector()
        injector.crash_after_writes(1)
        injector.note_write(4)
        assert injector.crashed
        injector.repair()
        assert not injector.crashed
        assert injector.note_write(4) is None  # schedule cleared too

    def test_crash_after_writes_counts(self):
        injector = FaultInjector()
        injector.crash_after_writes(3)
        assert injector.note_write(1) is None
        assert injector.note_write(1) is None
        survivors = injector.note_write(10)
        assert survivors is not None and 0 <= survivors <= 10
        assert injector.crashed

    def test_torn_write_is_a_prefix(self):
        for seed in range(5):
            injector = FaultInjector(seed=seed)
            injector.crash_after_writes(1)
            survivors = injector.note_write(8)
            assert 0 <= survivors <= 8

    def test_crash_point_validation(self):
        with pytest.raises(ValueError):
            FaultInjector().crash_after_writes(0)

    def test_deterministic_with_seed(self):
        results = []
        for _ in range(2):
            injector = FaultInjector(seed=9)
            injector.crash_after_writes(1)
            results.append(injector.note_write(16))
        assert results[0] == results[1]


class TestBadSectors:
    def test_mark_and_heal(self):
        injector = FaultInjector()
        injector.mark_bad(7)
        assert injector.is_bad(7)
        assert not injector.is_bad(8)
        injector.heal(7)
        assert not injector.is_bad(7)

    def test_heal_unknown_is_noop(self):
        FaultInjector().heal(99)

    def test_bad_sector_fails_every_re_read(self):
        """Regression: a marked sector must stay bad across re-reads,
        not fail once and then serve bytes again."""
        disk = build_disk()
        disk.write_sectors(4, b"\x11" * 512)
        disk.faults.mark_bad(4)
        for _ in range(3):
            with pytest.raises(BadSectorError):
                disk.read_sectors(4, 1)

    def test_bad_sector_survives_rewrite(self):
        """``mark_bad`` is the legacy hard failure: unlike a latent
        error, a rewrite does not remap it."""
        disk = build_disk()
        disk.faults.mark_bad(4)
        disk.write_sectors(4, b"\x22" * 512)
        with pytest.raises(BadSectorError):
            disk.read_sectors(4, 1)


class TestLatentMediaErrors:
    def test_persistent_across_re_reads(self):
        """Once the onset fires, every later read fails — latent errors
        are platter damage, not transient hiccups."""
        disk = build_disk()
        disk.write_sectors(8, b"\x33" * 512)
        disk.faults.schedule_media_error(8)
        for _ in range(3):
            with pytest.raises(MediaError):
                disk.read_sectors(8, 1)
        assert disk.metrics.get("disk.t.media_errors") == 3

    def test_grace_reads_then_onset(self):
        disk = build_disk()
        disk.write_sectors(8, b"\x44" * 512)
        disk.faults.schedule_media_error(8, after_reads=2)
        assert disk.read_sectors(8, 1) == b"\x44" * 512
        assert disk.read_sectors(8, 1) == b"\x44" * 512
        with pytest.raises(MediaError):
            disk.read_sectors(8, 1)

    def test_rewrite_heals(self):
        """The drive remaps on write — which is what makes
        repair-from-redundancy effective."""
        disk = build_disk()
        disk.faults.schedule_media_error(8)
        with pytest.raises(MediaError):
            disk.read_sectors(8, 1)
        disk.write_sectors(8, b"\x55" * 512)
        assert disk.read_sectors(8, 1) == b"\x55" * 512
        assert disk.faults.latent_media_errors == 0

    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().schedule_media_error(3, after_reads=-1)

    def test_error_counts_visible(self):
        injector = FaultInjector()
        injector.schedule_media_error(1)
        injector.schedule_media_error(2, after_reads=5)
        assert injector.latent_media_errors == 2


class TestDeterminism:
    def test_at_rest_corruption_is_byte_deterministic(self):
        """Two disks with the same fault seed rot identical bytes, so
        every downstream report stays byte-diffable across runs."""
        images = []
        for _ in range(2):
            disk = build_disk(seed=7)
            disk.write_sectors(0, bytes(range(256)) * 8)  # 4 KB
            disk.corrupt_sectors(0, 8)
            images.append(disk.read_sectors(0, 8))
        assert images[0] == images[1]

    def test_different_seeds_rot_differently(self):
        images = []
        for seed in (1, 2):
            disk = build_disk(seed=seed)
            disk.write_sectors(0, b"\x00" * 512)
            disk.corrupt_sectors(0, 1)
            images.append(disk.read_sectors(0, 1))
        assert images[0] != images[1]

    def test_media_error_schedule_deterministic_under_seed(self):
        """The same seed produces the same onset behaviour: the grace
        countdown is pure state, with no ambient randomness."""
        outcomes = []
        for _ in range(2):
            disk = build_disk(seed=3)
            disk.faults.schedule_media_error(6, after_reads=1)
            sequence = []
            for _ in range(3):
                try:
                    disk.read_sectors(6, 1)
                    sequence.append("ok")
                except MediaError:
                    sequence.append("media-error")
            outcomes.append(sequence)
        assert outcomes[0] == outcomes[1] == ["ok", "media-error", "media-error"]

    def test_pick_targets_is_seed_deterministic(self):
        population = list(range(100))
        first = FaultInjector(seed=5).pick_targets(population, 4, salt=9)
        second = FaultInjector(seed=5).pick_targets(population, 4, salt=9)
        assert first == second == sorted(first)
        assert FaultInjector(seed=6).pick_targets(population, 4, salt=9) != first

    def test_pick_targets_does_not_disturb_torn_writes(self):
        """The sampler derives a private RNG: drawing targets must not
        shift the torn-write schedule's draw sequence."""
        survivors = []
        for sample_first in (False, True):
            injector = FaultInjector(seed=11)
            if sample_first:
                injector.pick_targets(range(50), 5)
            injector.crash_after_writes(1)
            survivors.append(injector.note_write(16))
        assert survivors[0] == survivors[1]

    def test_pick_targets_small_population_returns_all(self):
        assert FaultInjector().pick_targets([9, 3, 7], 5) == [3, 7, 9]


class _CrashingMonitor:
    """A write monitor that crashes the disk, configurably noisily."""

    def __init__(self, survivors, note=None):
        self.survivors = survivors
        self.note = note

    def on_write(self, faults, disk_id, start, n_sectors):
        if self.note is not None:
            faults.last_crash_note = self.note
        return self.survivors


class TestMonitorCrashNotes:
    def test_monitor_crash_without_note_synthesizes_one(self):
        faults = FaultInjector(seed=3)
        faults.monitor = _CrashingMonitor(survivors=1)
        torn = faults.note_write(4, disk_id="d9", start=100)
        assert torn == 1
        assert faults.crashed
        # The note names the write the monitor crashed, not some stale
        # earlier schedule.
        assert "d9" in faults.last_crash_note
        assert "100" in faults.last_crash_note

    def test_monitor_own_note_is_preserved(self):
        faults = FaultInjector()
        faults.monitor = _CrashingMonitor(survivors=0, note="scripted crash #7")
        faults.note_write(4, disk_id="d", start=0)
        assert faults.last_crash_note == "scripted crash #7"

    def test_repair_clears_the_note(self):
        faults = FaultInjector()
        faults.monitor = _CrashingMonitor(survivors=0)
        faults.note_write(4, disk_id="d", start=0)
        assert faults.last_crash_note is not None
        faults.repair()
        assert faults.last_crash_note is None
        assert not faults.crashed


class TestSurvivorClamping:
    def test_negative_survivors_clamped_to_zero(self):
        faults = FaultInjector()
        faults.monitor = _CrashingMonitor(survivors=-5)
        assert faults.note_write(4, disk_id="d", start=0) == 0

    def test_oversized_survivors_clamped_to_request(self):
        faults = FaultInjector()
        faults.monitor = _CrashingMonitor(survivors=99)
        assert faults.note_write(4, disk_id="d", start=0) == 4

    def test_clamped_crash_never_corrupts_sector_accounting(self):
        disk = build_disk()
        disk.faults.monitor = _CrashingMonitor(survivors=-5)
        with pytest.raises(Exception):
            disk.write_sectors(0, bytes(4 * 512))
        assert disk.metrics.get("disk.t.sectors_written") == 0
        assert disk.metrics.get("disk.t.writes") == 1


class TestPickTargetsValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().pick_targets(range(10), -1)

    def test_zero_count_is_empty(self):
        assert FaultInjector().pick_targets(range(10), 0) == []
