"""The fault injector's own contract."""

import pytest

from repro.simdisk.faults import FaultInjector


class TestCrashControl:
    def test_starts_quiescent(self):
        injector = FaultInjector()
        assert not injector.crashed
        assert injector.note_write(4) is None

    def test_crash_now(self):
        injector = FaultInjector()
        injector.crash_now()
        assert injector.crashed
        assert injector.note_write(4) == 0  # nothing reaches the platter

    def test_repair_resets(self):
        injector = FaultInjector()
        injector.crash_after_writes(1)
        injector.note_write(4)
        assert injector.crashed
        injector.repair()
        assert not injector.crashed
        assert injector.note_write(4) is None  # schedule cleared too

    def test_crash_after_writes_counts(self):
        injector = FaultInjector()
        injector.crash_after_writes(3)
        assert injector.note_write(1) is None
        assert injector.note_write(1) is None
        survivors = injector.note_write(10)
        assert survivors is not None and 0 <= survivors <= 10
        assert injector.crashed

    def test_torn_write_is_a_prefix(self):
        for seed in range(5):
            injector = FaultInjector(seed=seed)
            injector.crash_after_writes(1)
            survivors = injector.note_write(8)
            assert 0 <= survivors <= 8

    def test_crash_point_validation(self):
        with pytest.raises(ValueError):
            FaultInjector().crash_after_writes(0)

    def test_deterministic_with_seed(self):
        results = []
        for _ in range(2):
            injector = FaultInjector(seed=9)
            injector.crash_after_writes(1)
            results.append(injector.note_write(16))
        assert results[0] == results[1]


class TestBadSectors:
    def test_mark_and_heal(self):
        injector = FaultInjector()
        injector.mark_bad(7)
        assert injector.is_bad(7)
        assert not injector.is_bad(8)
        injector.heal(7)
        assert not injector.is_bad(7)

    def test_heal_unknown_is_noop(self):
        FaultInjector().heal(99)
