"""The transactional workload scripts themselves."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.simkernel.runner import InterleavedRunner
from repro.workloads.transactions import (
    ACCOUNT_BYTES,
    ACCOUNT_RECORD,
    long_transaction_script,
    make_accounts_file,
    random_transfer_mix,
    read_balance,
    total_balance,
    transfer_script,
)

NAME = AttributedName.file("/bank")


@pytest.fixture
def cluster():
    return RhodosCluster(ClusterConfig(geometry=DiskGeometry.medium()))


class TestAccountsFile:
    def test_record_layout(self):
        assert ACCOUNT_BYTES == 8
        assert read_balance(ACCOUNT_RECORD.pack(1234)) == 1234
        assert read_balance(ACCOUNT_RECORD.pack(-5)) == -5  # signed

    def test_make_accounts_file(self, cluster):
        host = cluster.machine.transactions
        make_accounts_file(host, NAME, 10, initial_balance=250)
        assert total_balance(host, NAME, 10) == 2500

    def test_locking_level_applied(self, cluster):
        host = cluster.machine.transactions
        make_accounts_file(host, NAME, 4, locking_level=LockingLevel.FILE)
        system_name = cluster.naming.resolve_file(NAME)
        attrs = cluster.file_servers[0].get_attribute(system_name)
        assert attrs.locking_level is LockingLevel.FILE


class TestScripts:
    def test_transfer_script_moves_money(self, cluster):
        host = cluster.machine.transactions
        make_accounts_file(host, NAME, 4)
        runner = InterleavedRunner(cluster.clock, think_time_us=10)
        runner.add_client(transfer_script(host, NAME, 0, 1, amount=75))
        runner.run()
        tid = host.tbegin()
        fd = host.topen(tid, NAME)
        raw = host.tpread(tid, fd, 2 * ACCOUNT_BYTES, 0)
        host.tend(tid)
        assert read_balance(raw[:8]) == 925
        assert read_balance(raw[8:]) == 1075

    def test_scripts_are_restartable(self, cluster):
        """Running the same script factory twice must work (fresh
        generators each time — the abort-retry contract)."""
        host = cluster.machine.transactions
        make_accounts_file(host, NAME, 4)
        script = transfer_script(host, NAME, 2, 3)
        runner = InterleavedRunner(cluster.clock, think_time_us=10)
        runner.add_client(script, repeats=3)
        report = runner.run()
        assert report.total_commits == 3
        assert total_balance(host, NAME, 4) == 4000

    def test_random_mix_avoids_self_transfers(self, cluster):
        host = cluster.machine.transactions
        scripts = random_transfer_mix(host, NAME, 100, 20, seed=9)
        assert len(scripts) == 20
        # Determinism: same seed, same scripts behaviourally.
        again = random_transfer_mix(host, NAME, 100, 20, seed=9)
        assert len(again) == 20

    def test_long_transaction_script_commits_alone(self, cluster):
        host = cluster.machine.transactions
        make_accounts_file(host, NAME, 4)
        runner = InterleavedRunner(cluster.clock, think_time_us=10)
        runner.add_client(long_transaction_script(host, NAME, 1, think_rounds=5))
        report = runner.run()
        assert report.total_commits == 1
        tid = host.tbegin()
        fd = host.topen(tid, NAME)
        raw = host.tpread(tid, fd, ACCOUNT_BYTES, ACCOUNT_BYTES)
        host.tend(tid)
        assert read_balance(raw) == 1001  # the +1 it writes


class TestRunnerLimits:
    def test_max_steps_guard(self, cluster):
        def endless():
            while True:
                yield lambda: None

        runner = InterleavedRunner(cluster.clock, think_time_us=1)
        runner.add_client(endless)
        with pytest.raises(RuntimeError, match="steps"):
            runner.run(max_steps=50)
