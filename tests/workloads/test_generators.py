"""Workload generators: determinism and distribution shape."""

import random

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.workloads.access import AccessPattern, locality_reads, offsets, read_plan
from repro.workloads.files import (
    FileSizeDistribution,
    deterministic_payload,
    populate_files,
)
from tests.conftest import build_file_server


class TestFileSizes:
    def test_samples_within_bounds(self):
        distribution = FileSizeDistribution(
            median_bytes=8192, min_bytes=100, max_bytes=100_000
        )
        rng = random.Random(0)
        for _ in range(200):
            size = distribution.sample(rng)
            assert 100 <= size <= 100_000

    def test_mostly_small_long_tail(self):
        """The early-90s file-size shape: median near the median knob."""
        distribution = FileSizeDistribution(median_bytes=8192)
        rng = random.Random(1)
        samples = sorted(distribution.sample(rng) for _ in range(500))
        median = samples[len(samples) // 2]
        assert 2048 <= median <= 32768
        assert samples[-1] > 10 * median  # heavy tail

    def test_deterministic_payload(self):
        assert deterministic_payload(3, 100) == deterministic_payload(3, 100)
        assert deterministic_payload(3, 100) != deterministic_payload(4, 100)
        assert len(deterministic_payload(1, 777)) == 777
        assert deterministic_payload(1, 0) == b""

    def test_populate_files(self):
        server = build_file_server(SimClock(), Metrics())
        names = populate_files(server, 10, seed=5)
        assert len(names) == 10
        sizes = [server.get_attribute(name).file_size for name in names]
        assert all(size > 0 for size in sizes)
        # Deterministic under the same seed.
        server2 = build_file_server(SimClock(), Metrics())
        names2 = populate_files(server2, 10, seed=5)
        sizes2 = [server2.get_attribute(name).file_size for name in names2]
        assert sizes == sizes2


class TestAccessPatterns:
    def test_sequential(self):
        plan = list(offsets(AccessPattern.SEQUENTIAL, 100, 10, 5))
        assert plan == [0, 10, 20, 30, 40]

    def test_sequential_wraps(self):
        plan = list(offsets(AccessPattern.SEQUENTIAL, 30, 10, 5))
        assert plan == [0, 10, 20, 0, 10]

    def test_strided(self):
        plan = list(offsets(AccessPattern.STRIDED, 100, 10, 4, stride=3))
        assert plan == [0, 30, 60, 90]

    def test_random_is_seeded(self):
        a = list(offsets(AccessPattern.RANDOM, 1000, 10, 20, seed=9))
        b = list(offsets(AccessPattern.RANDOM, 1000, 10, 20, seed=9))
        assert a == b

    def test_locality_reads_favour_hot_set(self):
        picks = locality_reads(
            range(100), 1000, hot_fraction=0.1, hot_probability=0.9, seed=2
        )
        hot_hits = sum(1 for pick in picks if pick < 10)
        assert hot_hits > 800

    def test_locality_empty_population(self):
        assert locality_reads([], 10) == []

    def test_read_plan_shape(self):
        plan = read_plan(10, 1000, 100, 50, seed=1)
        assert len(plan) == 50
        for file_index, offset in plan:
            assert 0 <= file_index < 10
            assert 0 <= offset < 1000
            assert offset % 100 == 0
