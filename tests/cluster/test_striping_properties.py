"""Property test: striped files against a bytearray oracle."""

from hypothesis import given, settings, strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.striping import StripedFile
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry

SPAN = 200_000


@st.composite
def striped_ops(draw):
    stripe_bytes = draw(st.sampled_from([2048, 8192, 65536]))
    n_disks = draw(st.integers(min_value=1, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for _ in range(n_ops):
        offset = draw(st.integers(min_value=0, max_value=SPAN))
        length = draw(st.integers(min_value=1, max_value=50_000))
        fill = draw(st.integers(min_value=1, max_value=255))
        ops.append((offset, length, fill))
    return stripe_bytes, n_disks, ops


class TestStripingOracle:
    @given(striped_ops())
    @settings(max_examples=25, deadline=None)
    def test_matches_bytearray_oracle(self, plan):
        stripe_bytes, n_disks, ops = plan
        cluster = RhodosCluster(
            ClusterConfig(n_disks=n_disks, geometry=DiskGeometry.small())
        )
        striped = StripedFile.create(
            cluster.naming,
            cluster.file_servers,
            AttributedName.file("/striped"),
            stripe_bytes=stripe_bytes,
        )
        oracle = bytearray()
        for offset, length, fill in ops:
            payload = bytes([fill]) * length
            striped.write(offset, payload)
            if len(oracle) < offset + length:
                oracle.extend(bytes(offset + length - len(oracle)))
            oracle[offset : offset + length] = payload
            # Read back a window overlapping the write.
            lo = max(0, offset - 100)
            window = striped.read(lo, length + 200)
            assert window == bytes(oracle[lo : lo + length + 200])
        assert striped.read(0, len(oracle)) == bytes(oracle)

    @given(striped_ops())
    @settings(max_examples=10, deadline=None)
    def test_reopen_preserves_content(self, plan):
        stripe_bytes, n_disks, ops = plan
        cluster = RhodosCluster(
            ClusterConfig(n_disks=n_disks, geometry=DiskGeometry.small())
        )
        name = AttributedName.file("/striped")
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, name, stripe_bytes=stripe_bytes
        )
        oracle = bytearray()
        for offset, length, fill in ops:
            payload = bytes([fill]) * length
            striped.write(offset, payload)
            if len(oracle) < offset + length:
                oracle.extend(bytes(offset + length - len(oracle)))
            oracle[offset : offset + length] = payload
        reopened = StripedFile.open(cluster.naming, cluster.file_servers, name)
        assert reopened.read(0, len(oracle)) == bytes(oracle)
