"""The assembled cluster with a sharded namespace (PR 10 tentpole)."""

import json

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.errors import ShardDownError
from repro.naming.attributed import AttributedName
from repro.naming.shard import ShardedNamespace, shard_component
from repro.recovery.health import HealthState
from repro.recovery.schedule import FailureSchedule, ShardFailureEvent
from repro.rpc.bus import FaultProfile
from repro.simdisk.geometry import DiskGeometry


def small_config(**overrides):
    merged = dict(geometry=DiskGeometry.small())
    merged.update(overrides)
    return ClusterConfig(**merged)


def populate(cluster, count=12):
    agent = cluster.machine.file_agent
    for index in range(count):
        descriptor = agent.create(AttributedName.file(f"/s/f{index}"))
        agent.write(descriptor, bytes([index]) * 64)
        agent.close(descriptor)


class TestConstruction:
    def test_default_is_one_shard_behind_the_same_facade(self):
        cluster = RhodosCluster(small_config())
        assert isinstance(cluster.naming, ShardedNamespace)
        assert len(cluster.shards) == 1
        populate(cluster, 4)
        assert cluster.shards[0].size() == len(cluster.naming)

    def test_shards_split_the_binding_space(self):
        cluster = RhodosCluster(small_config(n_shards=4))
        populate(cluster, 24)
        sizes = [cluster.shards[s].size() for s in sorted(cluster.shards)]
        assert sum(sizes) == len(cluster.naming)
        assert sum(1 for size in sizes if size > 0) > 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_shards=8, shard_slots=4)
        with pytest.raises(ValueError):
            ClusterConfig(shard_service_us=-1)

    def test_flat_equivalence_read_back(self):
        flat = RhodosCluster(small_config(n_shards=1, seed=7))
        sharded = RhodosCluster(small_config(n_shards=4, seed=7))
        for cluster in (flat, sharded):
            populate(cluster, 10)
        for index in range(10):
            path = f"/s/f{index}"
            agent_flat = flat.machine.file_agent
            agent_sharded = sharded.machine.file_agent
            fd_flat = agent_flat.open(AttributedName.file(path))
            fd_sharded = agent_sharded.open(AttributedName.file(path))
            assert agent_flat.read(fd_flat, 64) == agent_sharded.read(
                fd_sharded, 64
            )
            agent_flat.close(fd_flat)
            agent_sharded.close(fd_sharded)
        assert sorted(flat.naming.list_directory("/s")) == sorted(
            sharded.naming.list_directory("/s")
        )


class TestShardsOverTheBus:
    def test_metadata_rides_the_fault_profile(self):
        cluster = RhodosCluster(
            small_config(
                n_shards=3,
                fault_profile=FaultProfile(
                    request_loss=0.1, reply_loss=0.1, duplication=0.1
                ),
                client_cache_blocks=0,
            )
        )
        populate(cluster, 12)
        assert len(cluster.naming) == 13  # 12 files + the root binding
        for index in range(12):
            assert cluster.naming.resolve_path(f"/s/f{index}")
        assert cluster.metrics.get("rpc.retransmissions") > 0

    def test_faulted_run_matches_clean_run(self):
        """E12 extended to sharded metadata: the faulted run ends with
        the same binding set and the same file bytes.  (Targets are not
        compared — a retransmitted create may land on a different FIT
        slot, exactly as in the flat E12 bench.)"""

        def final_state(profile, seed):
            cluster = RhodosCluster(
                small_config(
                    n_shards=3,
                    fault_profile=profile,
                    client_cache_blocks=0,
                    seed=seed,
                )
            )
            populate(cluster, 8)
            agent = cluster.machine.file_agent
            contents = []
            for index in range(8):
                descriptor = agent.open(AttributedName.file(f"/s/f{index}"))
                contents.append(agent.read(descriptor, 64))
                agent.close(descriptor)
            return sorted(str(name) for name in cluster.naming), contents

        clean = final_state(FaultProfile.reliable(), seed=0)
        for seed in range(2):
            faulty = final_state(
                FaultProfile(request_loss=0.15, reply_loss=0.15, duplication=0.15),
                seed=seed,
            )
            assert faulty == clean


class TestFailoverLifecycle:
    def test_fail_shard_routes_reads_to_replica(self):
        cluster = RhodosCluster(small_config(n_shards=3))
        populate(cluster, 18)
        victim = max(cluster.shards, key=lambda s: cluster.shards[s].size())
        cluster.fail_shard(victim)
        for index in range(18):
            assert cluster.naming.resolve_path(f"/s/f{index}")
        assert cluster.metrics.get("cluster.shard_failures") == 1
        assert cluster.metrics.get("naming_shard.failovers") > 0

    def test_dead_shard_feeds_the_health_registry(self):
        cluster = RhodosCluster(small_config(n_shards=3))
        populate(cluster, 18)
        victim = max(cluster.shards, key=lambda s: cluster.shards[s].size())
        cluster.fail_shard(victim)
        cluster.naming.resolve_path("/s/f0")  # reads trip the detector
        for index in range(18):
            cluster.naming.resolve_path(f"/s/f{index}")
        assert (
            cluster.health.state(shard_component(victim)) is HealthState.DOWN
        )
        cluster.restart_shard(victim)
        assert cluster.health.state(shard_component(victim)) is HealthState.UP

    def test_restart_resyncs_and_serves_writes_again(self):
        cluster = RhodosCluster(small_config(n_shards=3))
        populate(cluster, 18)
        victim = max(cluster.shards, key=lambda s: cluster.shards[s].size())
        held = cluster.shards[victim].size()
        cluster.fail_shard(victim)
        cluster.restart_shard(victim)
        assert cluster.shards[victim].size() == held
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/after/restart"))
        agent.write(descriptor, b"back")
        agent.close(descriptor)
        assert cluster.naming.resolve_path("/after/restart")
        assert cluster.metrics.get("cluster.shard_restarts") == 1
        assert cluster.metrics.get("naming_shard.resyncs") >= 1

    def test_schedule_drives_shard_lifecycle(self):
        cluster = RhodosCluster(small_config(n_shards=3))
        populate(cluster, 6)
        victim = max(cluster.shards, key=lambda s: cluster.shards[s].size())
        schedule = FailureSchedule(
            [ShardFailureEvent(at_us=cluster.clock.now_us + 10, shard_id=victim, down_us=50)],
            cluster.clock,
            metrics=cluster.metrics,
        )
        actions = schedule.run_out(cluster)
        assert len(actions) == 2
        assert not cluster.shards[victim].crashed
        for index in range(6):
            assert cluster.naming.resolve_path(f"/s/f{index}")
        assert cluster.metrics.get("recovery.shard_kills_injected") == 1


class TestRebalanceOnTheCluster:
    def test_add_shard_and_migrate(self):
        cluster = RhodosCluster(small_config(n_shards=2))
        populate(cluster, 20)
        new_id = cluster.add_shard()
        assert new_id == 2
        assert cluster.shards[new_id].size() == 0
        slots = cluster.shard_manager.begin_rebalance(new_id)
        assert slots
        while not cluster.shard_manager.rebalance_done:
            cluster.shard_manager.step_rebalance(max_bindings=5)
        cluster.shard_manager.complete_rebalance()
        assert cluster.shards[new_id].size() > 0
        for index in range(20):
            assert cluster.naming.resolve_path(f"/s/f{index}")
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/post/rebalance"))
        agent.write(descriptor, b"fresh")
        agent.close(descriptor)
        assert cluster.metrics.get("cluster.shards_added") == 1


class TestPlacement:
    def test_least_loaded_spreads_creates(self):
        cluster = RhodosCluster(
            small_config(n_disks=3, placement_policy="least_loaded")
        )
        agent = cluster.machine.file_agent
        volumes = set()
        for index in range(9):
            descriptor = agent.create(AttributedName.file(f"/p/f{index}"))
            agent.write(descriptor, b"y" * 8192)
            volumes.add(agent.system_name(descriptor).volume_id)
            agent.close(descriptor)
        assert len(volumes) > 1

    def test_fixed_keeps_the_historical_choice(self):
        cluster = RhodosCluster(small_config(n_disks=3))
        agent = cluster.machine.file_agent
        for index in range(4):
            descriptor = agent.create(AttributedName.file(f"/p/f{index}"))
            assert agent.system_name(descriptor).volume_id == 0
            agent.close(descriptor)

    def test_explicit_volume_attr_still_wins(self):
        cluster = RhodosCluster(
            small_config(n_disks=3, placement_policy="round_robin")
        )
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/pin", volume="2"))
        assert agent.system_name(descriptor).volume_id == 2
        agent.close(descriptor)


class TestDeterminism:
    def test_sharded_cluster_double_run_is_byte_identical(self):
        def run():
            cluster = RhodosCluster(
                small_config(
                    n_shards=4,
                    n_disks=2,
                    shard_service_us=200,
                    placement_policy="least_loaded",
                    fault_profile=FaultProfile(request_loss=0.05),
                    seed=11,
                )
            )
            populate(cluster, 15)
            victim = max(
                cluster.shards, key=lambda s: cluster.shards[s].size()
            )
            cluster.fail_shard(victim)
            reads = [
                str(cluster.naming.resolve_path(f"/s/f{index}"))
                for index in range(15)
            ]
            cluster.restart_shard(victim)
            return json.dumps(
                {
                    "reads": reads,
                    "metrics": cluster.metrics.snapshot(),
                    "dumps": {
                        str(k): v.decode("utf-8")
                        for k, v in sorted(
                            cluster.naming.shard_dumps().items()
                        )
                    },
                },
                sort_keys=True,
            )

        assert run() == run()
