"""The assembled cluster: wiring, shared clock, cache toggles, RPC mode."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.file_service.cache import WritePolicy
from repro.naming.attributed import AttributedName
from repro.rpc.bus import FaultProfile
from repro.simdisk.geometry import DiskGeometry


class TestAssembly:
    def test_default_build(self):
        cluster = RhodosCluster()
        assert len(cluster.machines) == 1
        assert len(cluster.file_servers) == 1
        assert cluster.bus is None  # direct calls by default

    def test_multi_machine_multi_disk(self):
        cluster = RhodosCluster(ClusterConfig(n_machines=3, n_disks=4))
        assert len(cluster.machines) == 3
        assert len(cluster.disk_servers) == 4
        assert sorted(cluster.file_servers) == [0, 1, 2, 3]

    def test_everything_shares_one_clock(self):
        cluster = RhodosCluster(ClusterConfig(n_disks=2, n_machines=2))
        assert cluster.disks[0].clock is cluster.clock
        assert cluster.machines[1].file_agent.clock is cluster.clock
        assert cluster.coordinator.clock is cluster.clock

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_machines=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_disks=0)


class TestEndToEnd:
    def test_file_io_through_a_machine(self):
        cluster = RhodosCluster()
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/hello"))
        agent.write(descriptor, b"hello rhodos")
        agent.lseek(descriptor, 0)
        assert agent.read(descriptor, 64) == b"hello rhodos"
        agent.close(descriptor)

    def test_machines_share_files_through_naming(self):
        cluster = RhodosCluster(ClusterConfig(n_machines=2))
        writer = cluster.machines[0].file_agent
        reader = cluster.machines[1].file_agent
        descriptor = writer.create(AttributedName.file("/shared"))
        writer.write(descriptor, b"from m0")
        writer.close(descriptor)
        other = reader.open(AttributedName.file("/shared"))
        assert reader.read(other, 7) == b"from m0"

    def test_files_spread_across_volumes(self):
        cluster = RhodosCluster(ClusterConfig(n_disks=3))
        agent = cluster.machine.file_agent
        for volume in range(3):
            descriptor = agent.create(
                AttributedName.file(f"/v{volume}", volume=str(volume))
            )
            agent.write(descriptor, b"x")
            assert agent.system_name(descriptor).volume_id == volume
            agent.close(descriptor)

    def test_crash_and_recover_volume(self):
        cluster = RhodosCluster()
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/durable"))
        agent.write(descriptor, b"checkpointed")
        agent.close(descriptor)
        cluster.flush_all()
        cluster.crash_volume(0)
        cluster.recover_volume(0)
        descriptor = agent.open(AttributedName.file("/durable"))
        assert agent.read(descriptor, 12) == b"checkpointed"


class TestConfigurations:
    def test_bullet_style_disables_client_cache(self):
        config = ClusterConfig.bullet_style()
        assert config.client_cache_blocks == 0
        cluster = RhodosCluster(config)
        assert cluster.machine.file_agent.cache_blocks == 0

    def test_uncached_disables_every_level(self):
        config = ClusterConfig.uncached()
        cluster = RhodosCluster(config)
        assert cluster.machine.file_agent.cache_blocks == 0
        assert cluster.disk_servers[0].cache is None

    def test_write_policy_propagates(self):
        cluster = RhodosCluster(
            ClusterConfig(write_policy=WritePolicy.WRITE_THROUGH)
        )
        assert cluster.file_servers[0].write_policy is WritePolicy.WRITE_THROUGH

    def test_extent_table_shape_propagates(self):
        cluster = RhodosCluster(ClusterConfig(extent_rows=16, extent_columns=8))
        assert cluster.disk_servers[0].extent_table.rows == 16
        assert cluster.disk_servers[0].extent_table.columns == 8

    def test_total_disk_references_counts_data_disks_only(self):
        cluster = RhodosCluster()
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"x")
        agent.close(descriptor)
        assert cluster.total_disk_references() > 0
        assert cluster.total_disk_references() < cluster.metrics.total("disk.")


class TestLifecycle:
    def test_fail_and_restart_volume_round_trip(self):
        cluster = RhodosCluster(ClusterConfig(n_disks=2, replication_degree=2))
        replicated = AttributedName.file("/repl")
        cluster.replication.create(replicated)
        cluster.replication.write(replicated, 0, b"v1")
        cluster.fail_volume(0)
        # The dead volume fails over; the write lands on the survivor
        # and marks volume 0 stale.
        cluster.replication.write(replicated, 0, b"v2")
        assert cluster.replication.live_replicas(replicated) == 1
        cluster.restart_volume(0)
        # restart fires the recovery event: resync runs automatically.
        assert cluster.replication.live_replicas(replicated) == 2
        assert cluster.metrics.get("cluster.volume_failures") == 1
        assert cluster.metrics.get("cluster.volume_restarts") == 1
        assert cluster.metrics.get("replication.resyncs_verified") == 1

    def test_fail_volume_invalidates_client_caches(self):
        cluster = RhodosCluster()
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/cached"))
        agent.write(descriptor, b"hot block")
        agent.flush()
        agent.pread(descriptor, 9, 0)  # block now cached client-side
        cluster.fail_volume(0)
        assert cluster.metrics.get("file_agent.m0.cache.invalidations") >= 1

    def test_fail_volume_downs_the_bus_endpoint(self):
        cluster = RhodosCluster(
            ClusterConfig(fault_profile=FaultProfile(latency_us=100))
        )
        cluster.fail_volume(0)
        assert cluster.bus is not None
        arrived, _ = cluster.bus.transmit("file_server.0", "exists", ((), {}))
        assert not arrived
        cluster.restart_volume(0)


class TestRpcMode:
    def test_cluster_over_message_bus(self):
        cluster = RhodosCluster(
            ClusterConfig(fault_profile=FaultProfile(latency_us=200))
        )
        assert cluster.bus is not None
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/over-rpc"))
        agent.write(descriptor, b"via the bus")
        agent.close(descriptor)
        descriptor = agent.open(AttributedName.file("/over-rpc"))
        assert agent.read(descriptor, 11) == b"via the bus"
        assert cluster.metrics.get("rpc.messages") > 0

    def test_faulty_bus_still_converges(self):
        """Idempotent operations under loss + duplication: the E12 core."""
        cluster = RhodosCluster(
            ClusterConfig(
                fault_profile=FaultProfile(
                    request_loss=0.1, reply_loss=0.1, duplication=0.1
                ),
                seed=3,
            )
        )
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/lossy"))
        payload = bytes(range(256)) * 40
        agent.write(descriptor, payload)
        agent.close(descriptor)
        descriptor = agent.open(AttributedName.file("/lossy"))
        assert agent.read(descriptor, len(payload)) == payload
        assert cluster.metrics.get("rpc.retransmissions") > 0
