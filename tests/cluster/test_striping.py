"""File partitioning across disks (section 7's size claim, E11)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.striping import StripedFile
from repro.cluster.system import RhodosCluster
from repro.common.errors import FileServiceError
from repro.common.units import BLOCK_SIZE
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry

NAME = AttributedName.file("/big/striped")


@pytest.fixture
def cluster():
    return RhodosCluster(
        ClusterConfig(n_disks=4, geometry=DiskGeometry.small())
    )


def pattern(n, seed=1):
    return bytes((seed * 131 + index) % 256 for index in range(n))


class TestStripedIO:
    def test_round_trip(self, cluster):
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, NAME, stripe_bytes=BLOCK_SIZE
        )
        data = pattern(10 * BLOCK_SIZE + 123)
        striped.write(0, data)
        assert striped.read(0, len(data)) == data

    def test_stripes_land_on_distinct_volumes(self, cluster):
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, NAME, stripe_bytes=BLOCK_SIZE
        )
        striped.write(0, pattern(8 * BLOCK_SIZE))
        sizes = [
            cluster.file_servers[segment.volume_id].get_attribute(segment).file_size
            for segment in striped.segments
        ]
        assert all(size == 2 * BLOCK_SIZE for size in sizes)  # 8 stripes / 4 disks

    def test_unaligned_reads_and_writes(self, cluster):
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, NAME, stripe_bytes=4096
        )
        striped.write(0, pattern(40_000))
        striped.write(10_000, b"Z" * 9_000)  # crosses stripe boundaries
        expected = bytearray(pattern(40_000))
        expected[10_000:19_000] = b"Z" * 9_000
        assert striped.read(0, 40_000) == bytes(expected)
        assert striped.read(9_990, 30) == bytes(expected[9_990:10_020])

    def test_logical_size(self, cluster):
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, NAME, stripe_bytes=BLOCK_SIZE
        )
        striped.write(0, pattern(5 * BLOCK_SIZE))
        assert striped.size == 5 * BLOCK_SIZE

    def test_file_larger_than_any_single_volume(self):
        """Section 7: 'the size of a file can be as large as the total
        space available on all the disks.'  Use tiny disks so a single
        volume cannot hold the file but the stripe set can."""
        tiny = DiskGeometry(cylinders=24, heads=2, sectors_per_track=32)  # 1.5 MB
        cluster = RhodosCluster(ClusterConfig(n_disks=4, geometry=tiny))
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, NAME, stripe_bytes=BLOCK_SIZE
        )
        size = 2 * 1024 * 1024  # 2 MB across 4 x 1.5 MB disks
        data = pattern(size, seed=7)
        striped.write(0, data)
        assert striped.read(0, size) == data


class TestPersistence:
    def test_open_reconstructs_from_naming(self, cluster):
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, NAME, stripe_bytes=BLOCK_SIZE
        )
        striped.write(0, pattern(3 * BLOCK_SIZE))
        reopened = StripedFile.open(cluster.naming, cluster.file_servers, NAME)
        assert reopened.stripe_bytes == BLOCK_SIZE
        assert reopened.read(0, 3 * BLOCK_SIZE) == pattern(3 * BLOCK_SIZE)

    def test_open_unknown_name(self, cluster):
        with pytest.raises(FileServiceError):
            StripedFile.open(
                cluster.naming, cluster.file_servers, AttributedName.file("/none")
            )

    def test_delete_frees_all_segments(self, cluster):
        free_before = [
            server.disk.free_fragments
            for server in cluster.file_servers.values()
        ]
        striped = StripedFile.create(
            cluster.naming, cluster.file_servers, NAME, stripe_bytes=BLOCK_SIZE
        )
        striped.write(0, pattern(8 * BLOCK_SIZE))
        striped.delete(cluster.naming, NAME)
        free_after = [
            server.disk.free_fragments
            for server in cluster.file_servers.values()
        ]
        assert free_after == free_before

    def test_subset_of_volumes(self, cluster):
        striped = StripedFile.create(
            cluster.naming,
            cluster.file_servers,
            NAME,
            volumes=[1, 3],
            stripe_bytes=BLOCK_SIZE,
        )
        striped.write(0, pattern(4 * BLOCK_SIZE))
        volumes = {segment.volume_id for segment in striped.segments}
        assert volumes == {1, 3}
