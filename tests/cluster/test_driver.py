"""The closed-loop concurrent driver: overlap, contention, determinism."""

from __future__ import annotations

import json

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.disk_service.addresses import Extent
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import make_scheduler
from repro.naming.attributed import AttributedName
from repro.simkernel.loop import EventLoop
from tests.conftest import build_disk_server

BLOCK = 8192


def write_op(cluster: RhodosCluster, client: int, op_index: int) -> None:
    """One client operation: create a file on the client's volume,
    write a block, and push it all the way to the platter."""
    volume = client % cluster.config.n_disks
    agent = cluster.machines[client % cluster.config.n_machines].file_agent
    descriptor = agent.create(
        AttributedName.file(f"/c{client}/f{op_index}", volume=str(volume))
    )
    agent.write(descriptor, bytes([client + 1]) * BLOCK)
    agent.close(descriptor)
    agent.flush()
    cluster.file_servers[volume].flush()


def contention_run(*, n_clients: int, n_disks: int, ops_per_client: int = 4):
    cluster = RhodosCluster(
        ClusterConfig(n_machines=max(n_clients, 1), n_disks=n_disks)
    )
    report = cluster.run_concurrent(
        write_op, n_clients=n_clients, ops_per_client=ops_per_client
    )
    return cluster, report


class TestClosedLoop:
    def test_every_operation_completes(self):
        cluster, report = contention_run(n_clients=3, n_disks=3)
        assert report.ops_completed == 12
        assert report.n_clients == 3
        assert len(report.op_latencies_us) == 12
        assert cluster.metrics.get("cluster.ops_completed") == 12

    def test_data_plane_effects_survive_the_overlap(self):
        cluster, _ = contention_run(n_clients=2, n_disks=2, ops_per_client=2)
        agent = cluster.machine.file_agent
        for client in range(2):
            for op_index in range(2):
                descriptor = agent.open(
                    AttributedName.file(f"/c{client}/f{op_index}")
                )
                assert agent.read(descriptor, BLOCK) == bytes([client + 1]) * BLOCK
                agent.close(descriptor)

    def test_driver_validates_arguments(self):
        cluster = RhodosCluster()
        with pytest.raises(ValueError):
            cluster.run_concurrent(write_op, n_clients=0, ops_per_client=1)
        with pytest.raises(ValueError):
            cluster.run_concurrent(write_op, n_clients=1, ops_per_client=0)


class TestOverlap:
    def test_four_clients_on_four_disks_beat_serial_by_1_5x(self):
        """The PR's acceptance floor: aggregate throughput of 4 clients
        on 4 disks is at least 1.5x one client doing the same per-client
        work (in practice close to 4x, since the disks never contend)."""
        _, serial = contention_run(n_clients=1, n_disks=4)
        _, overlapped = contention_run(n_clients=4, n_disks=4)
        assert overlapped.ops_completed == 4 * serial.ops_completed
        speedup = overlapped.throughput_ops_per_s / serial.throughput_ops_per_s
        assert speedup >= 1.5, f"aggregate speedup only {speedup:.2f}x"

    def test_clients_on_one_disk_serialize(self):
        """Same op count, one spindle: throughput cannot scale."""
        _, spread = contention_run(n_clients=4, n_disks=4)
        _, contended = contention_run(n_clients=4, n_disks=1)
        assert contended.elapsed_us > spread.elapsed_us

    def test_per_disk_utilization_gauges_are_published(self):
        cluster, _ = contention_run(n_clients=2, n_disks=2)
        for volume in range(2):
            assert cluster.metrics.get_gauge(f"disk.{volume}.utilization") > 0


class TestSchedulerContention:
    """8 clients hammering one disk: SCAN beats FCFS on queue wait."""

    N_CLIENTS = 8
    OPS_PER_CLIENT = 4

    def _single_disk_waits(self, policy: str):
        clock, metrics = SimClock(), Metrics()
        server = build_disk_server(clock, metrics)
        loop = EventLoop(clock)
        DiskPipeline(server, loop, make_scheduler(policy))
        region = server.allocate(server.n_fragments // 2)
        # Adversarial arrival order: successive requests alternate
        # between the low and high ends of the platter, so FCFS seeks
        # full-stroke on every service while SCAN sweeps once per pass.
        half = region.length // 2
        completions = []
        for op_index in range(self.OPS_PER_CLIENT):
            for client in range(self.N_CLIENTS):
                index = op_index * self.N_CLIENTS + client
                if index % 2 == 0:
                    slot = (index * 17) % half
                else:
                    slot = region.length - 1 - ((index * 23) % half)
                extent = Extent(region.start + slot, 1)
                completions.append(server.submit_get(extent, use_cache=False))
        loop.run_until(lambda: all(c.done for c in completions))
        waits = metrics.histogram_samples("disk_service.queue_wait_us")
        assert len(waits) == self.N_CLIENTS * self.OPS_PER_CLIENT
        return sum(waits) / len(waits), clock.now_us

    def test_scan_beats_fcfs_mean_queue_wait(self):
        fcfs_wait, fcfs_elapsed = self._single_disk_waits("fcfs")
        scan_wait, scan_elapsed = self._single_disk_waits("scan")
        assert scan_wait < fcfs_wait, (
            f"SCAN mean wait {scan_wait:.0f}us not below FCFS {fcfs_wait:.0f}us"
        )
        assert scan_elapsed <= fcfs_elapsed


class TestDeterminism:
    def test_double_run_produces_byte_identical_reports(self):
        """Same config, same workload: the whole machine-readable
        output — report and metrics — must match byte for byte."""

        def run() -> str:
            cluster, report = contention_run(n_clients=4, n_disks=2)
            return json.dumps(
                {
                    "ops": report.ops_completed,
                    "elapsed_us": report.elapsed_us,
                    "latencies_us": report.op_latencies_us,
                    "metrics": cluster.metrics.snapshot(),
                    "gauges": cluster.metrics.gauges(),
                },
                sort_keys=True,
            )

        assert run() == run()

    def test_scheduler_config_reaches_the_pipelines(self):
        cluster = RhodosCluster(ClusterConfig(disk_scheduler="scan+coalesce"))
        assert cluster.pipelines[0].scheduler.name == "scan+coalesce"
        with pytest.raises(ValueError):
            RhodosCluster(ClusterConfig(disk_scheduler="nope"))


class TestPerClassLatencies:
    """PR 10 satellite: DriverReport separates metadata and data ops."""

    @staticmethod
    def classed_op(cluster: RhodosCluster, client: int, op_index: int) -> str:
        agent = cluster.machines[client % cluster.config.n_machines].file_agent
        if op_index % 2 == 0:
            descriptor = agent.create(
                AttributedName.file(f"/c{client}/f{op_index}")
            )
            agent.write(descriptor, b"x" * BLOCK)
            agent.close(descriptor)
            return "data"
        cluster.naming.resolve_path(f"/c{client}/f{op_index - 1}")
        return "metadata"

    def test_latencies_split_by_returned_label(self):
        cluster = RhodosCluster(ClusterConfig(n_machines=2, n_disks=2))
        report = cluster.run_concurrent(
            self.classed_op, n_clients=2, ops_per_client=4
        )
        assert report.class_ops("data") == 4
        assert report.class_ops("metadata") == 4
        assert sorted(
            report.latencies_by_class["data"]
            + report.latencies_by_class["metadata"]
        ) == sorted(report.op_latencies_us)
        assert report.class_mean_latency_us("data") >= report.class_mean_latency_us(
            "metadata"
        )
        total = report.class_throughput_ops_per_s(
            "data"
        ) + report.class_throughput_ops_per_s("metadata")
        assert total == pytest.approx(report.throughput_ops_per_s)

    def test_unlabelled_ops_stay_aggregate_only(self):
        cluster, report = contention_run(n_clients=2, n_disks=2)
        assert report.latencies_by_class == {}
        assert report.ops_completed == 8

    def test_per_class_histograms_reach_metrics(self):
        cluster = RhodosCluster(ClusterConfig(n_machines=2, n_disks=2))
        cluster.run_concurrent(self.classed_op, n_clients=2, ops_per_client=2)
        histogram = cluster.metrics.histogram("cluster.data_op_us")
        assert histogram["count"] == 2
        histogram = cluster.metrics.histogram("cluster.metadata_op_us")
        assert histogram["count"] == 2
