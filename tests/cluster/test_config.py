"""Cluster configuration knobs and presets."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.file_service.cache import WritePolicy
from repro.rpc.bus import FaultProfile
from repro.simdisk.geometry import DiskGeometry
from repro.transactions.lock_manager import TimeoutPolicy


class TestDefaults:
    def test_paper_shaped_defaults(self):
        config = ClusterConfig()
        assert config.extent_rows == 64  # the paper's 64x64 array
        assert config.extent_columns == 64
        assert config.commit_technique == "auto"  # the paper's WAL/shadow rule
        assert config.write_policy is WritePolicy.DELAYED
        assert config.disk_readahead is True
        assert config.cross_level_locking is False  # paper's constraint
        assert config.fault_profile is None  # direct calls by default

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_machines=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_disks=-1)


class TestPresets:
    def test_bullet_style(self):
        config = ClusterConfig.bullet_style()
        assert config.client_cache_blocks == 0
        assert config.server_cache_blocks > 0  # server caching stays

    def test_bullet_style_accepts_overrides(self):
        config = ClusterConfig.bullet_style(n_disks=3, seed=7)
        assert config.n_disks == 3
        assert config.seed == 7
        assert config.client_cache_blocks == 0

    def test_uncached(self):
        config = ClusterConfig.uncached()
        assert config.client_cache_blocks == 0
        assert config.server_cache_blocks == 0
        assert config.disk_cache_tracks == 0
        assert config.disk_readahead is False


class TestComposition:
    def test_custom_everything(self):
        config = ClusterConfig(
            n_machines=4,
            n_disks=2,
            geometry=DiskGeometry.small(),
            timeout_policy=TimeoutPolicy(lt_us=123_000, max_renewals=7),
            commit_technique="shadow",
            cross_level_locking=True,
            fault_profile=FaultProfile(latency_us=250),
            replication_degree=2,
        )
        assert config.timeout_policy.lt_us == 123_000
        assert config.commit_technique == "shadow"
        assert config.fault_profile.latency_us == 250

    def test_geometry_objects_shared_not_copied(self):
        geometry = DiskGeometry.small()
        config = ClusterConfig(geometry=geometry)
        assert config.geometry is geometry
