"""Crash sweep over pipelined, coalesced writes.

The queued-write workload runs the append-overwrite script with every
flush routed through the request pipeline (SCAN + adjacent-extent
coalescing), so physical writes happen at queue-drain time and
adjacent dirty blocks land in one merged disk reference.  The sweep
proves the PR's crash-safety claim: every crash point still fires, a
crash mid-batch tears exactly one merged reference, and recovery
honours every durable promise regardless.
"""

from repro.chaos.scheduler import CrashScheduler
from repro.chaos.workloads import QueuedWriteWorkload
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE

SECTORS_PER_BLOCK = BLOCK_SIZE // 512


class TestCountingRun:
    def test_workload_is_deterministic(self):
        traces = []
        for _ in range(2):
            workload = QueuedWriteWorkload()
            workload.run()
            traces.append(
                [
                    (e.disk_id, e.start, e.n_sectors)
                    for e in workload.monitor.write_entries()
                ]
            )
        assert traces[0] == traces[1]
        assert traces[0]

    def test_flushes_actually_coalesce(self):
        """The sweep must exercise merged references, not degenerate to
        the blocking path: at least one data-disk write spans multiple
        blocks, and the pipeline counts the riders it merged."""
        workload = QueuedWriteWorkload()
        workload.run()
        merged = [
            entry
            for entry in workload.monitor.write_entries()
            if entry.disk_id == "chaos0"
            and entry.n_sectors > SECTORS_PER_BLOCK
        ]
        assert merged, "no multi-block data-disk reference in the trace"
        assert (
            workload.metrics.get("disk_server.chaos0.coalesced_requests") > 0
        )

    def test_queued_writes_change_physical_schedule_not_content(self):
        """Pipeline on or off, the script's durable promises are the
        same — only the physical write schedule differs."""
        queued = QueuedWriteWorkload()
        queued.run()
        from repro.chaos.workloads import AppendOverwriteWorkload

        blocking = AppendOverwriteWorkload()
        blocking.run()
        assert queued.durable == blocking.durable
        assert queued.in_flux == blocking.in_flux
        # coalescing strictly reduces data-disk references
        queued_refs = queued.metrics.get("disk.chaos0.references")
        blocking_refs = blocking.metrics.get("disk.chaos0.references")
        assert queued_refs < blocking_refs


class TestExhaustiveSweep:
    def test_every_crash_point_recovers_cleanly(self):
        """Zero invariant violations across every write crash point,
        with coalesced references in the swept schedule."""
        metrics = Metrics()
        scheduler = CrashScheduler(QueuedWriteWorkload, metrics=metrics)
        report = scheduler.sweep()
        assert report.points_run == report.total_points > 0
        assert report.violations == []
        layers = dict(
            (layer, points) for layer, points, _ in report.layer_rows()
        )
        assert layers.get("data disk", 0) > 0
        assert layers.get("stable mirror", 0) > 0
        prefix = "chaos.sweep.queued-writes"
        assert metrics.get(f"{prefix}.points") == report.points_run
        assert metrics.get(f"{prefix}.violations") == 0
