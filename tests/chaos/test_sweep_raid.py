"""Exhaustive crash sweeps over the RAID tier's degraded and rebuild paths.

The PR 9 acceptance sweep: every physical write a degraded or
rebuilding array performs — member data writes, parity updates,
superblock rounds, write-intent journal arming, and the rebuild's own
reconstruction writes — is a numbered crash point, and a crash at any
of them must recover to an OPTIMAL array whose acked bytes are exact
and whose parity invariant (XOR of data chunks == parity chunk) holds
on every stripe row.  A negative test disables the journal replay and
shows the sweep then *does* catch the degraded write hole, proving the
assertion has teeth.
"""

import pytest

from repro.chaos.scheduler import CrashScheduler
from repro.chaos.workloads import RaidDegradedWriteWorkload, RaidRebuildWorkload
from repro.common.metrics import Metrics
from repro.simdisk.raid import StripedVolume

RAID_WORKLOADS = [RaidDegradedWriteWorkload, RaidRebuildWorkload]


class TestCountingRun:
    @pytest.mark.parametrize("workload_cls", RAID_WORKLOADS)
    def test_workload_is_deterministic(self, workload_cls):
        first = workload_cls()
        first.run()
        second = workload_cls()
        second.run()
        trace_a = [
            (e.disk_id, e.start, e.n_sectors)
            for e in first.monitor.write_entries()
        ]
        trace_b = [
            (e.disk_id, e.start, e.n_sectors)
            for e in second.monitor.write_entries()
        ]
        assert trace_a == trace_b
        assert len(trace_a) > 0

    def test_degraded_script_arms_the_journal(self):
        """The script must hit the hazardous shape — a partial-row
        update with a stale data column — or the sweep proves nothing
        about the write hole."""
        workload = RaidDegradedWriteWorkload()
        workload.run()
        assert workload.metrics.get("raid.raidchaos.journal_arms") >= 2
        assert workload.metrics.get("raid.raidchaos.degraded_writes") >= 4

    def test_rebuild_script_numbers_rebuild_writes(self):
        """Rebuild reconstruction writes are crash points like any
        other platter mutation."""
        workload = RaidRebuildWorkload()
        workload.run()
        assert workload.metrics.get("raid.raidchaos.rebuild.chunks") > 0
        assert workload.metrics.get("raid.raidchaos.member_replacements") == 1
        # Foreground writes continued through the rebuild window.
        assert workload.metrics.get("raid.raidchaos.journal_arms") >= 1


class TestExhaustiveSweep:
    @pytest.mark.parametrize("workload_cls", RAID_WORKLOADS)
    def test_every_crash_point_recovers_cleanly(self, workload_cls):
        metrics = Metrics()
        scheduler = CrashScheduler(workload_cls, metrics=metrics)
        report = scheduler.sweep()
        assert report.points_run == report.total_points > 0
        assert report.violations == []
        prefix = f"chaos.sweep.{workload_cls.name}"
        assert metrics.get(f"{prefix}.points") == report.points_run
        assert metrics.get(f"{prefix}.violations") == 0

    def test_some_crash_points_are_repaired_by_journal_replay(self):
        """The sweep must actually traverse the window the journal
        protects: recovery replays at least one armed record."""
        scheduler = CrashScheduler(RaidDegradedWriteWorkload)
        total = scheduler.count_crash_points()
        replays = 0
        for point in range(1, total + 1):
            result = scheduler.run_at(point)
            assert result.violations == []
        # run_at builds a fresh workload per point; re-derive the replay
        # count from one representative mid-journal crash instead.
        for point in range(1, total + 1):
            workload = RaidDegradedWriteWorkload()
            workload.monitor.arm(point)
            try:
                workload.run()
            except Exception:
                pass
            workload.recover()
            replays += workload.metrics.get("raid.raidchaos.journal_replays")
        assert replays > 0


class TestWriteHoleDetection:
    def test_sweep_catches_the_hole_without_journal_replay(self, monkeypatch):
        """Disable recovery's journal replay: the degraded write hole
        reopens and the sweep must report acked-content violations —
        the assertion is not vacuous."""
        monkeypatch.setattr(
            StripedVolume, "_replay_journal", lambda self: None
        )
        report = CrashScheduler(RaidDegradedWriteWorkload).sweep()
        assert report.violations != []
        assert any("acked content diverged" in v for v in report.violations)
