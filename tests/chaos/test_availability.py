"""The availability campaign: determinism, SLO verdicts, CLI surface."""

import json

import pytest

from repro.chaos.availability import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    recovery_allowance_us,
    run_campaign,
    run_scenario,
)


def by_name(name):
    return next(s for s in SCENARIOS if s.name == name)


class TestScenarioCatalogue:
    def test_smoke_is_a_subset(self):
        names = {scenario.name for scenario in SCENARIOS}
        assert set(SMOKE_SCENARIOS) <= names

    def test_names_unique(self):
        names = [scenario.name for scenario in SCENARIOS]
        assert len(names) == len(set(names))

    def test_allowance_is_parametric(self):
        scenario = by_name("clean_restarts")
        allowance = recovery_allowance_us(scenario)
        # The bound is built from configured constants: breaker
        # cooldown plus one worst-case slow call plus slack — so it
        # moves when the policies move, never by empirical tuning.
        assert allowance > 150_000  # at least the breaker cooldown
        assert allowance < 2_000_000  # and far below a whole run


class TestCleanRestarts:
    """One full scenario execution, shared across the assertions."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_scenario(by_name("clean_restarts"))

    def test_passes_its_slo(self, report):
        assert report["status"] == "pass"
        assert report["violations"] == []

    def test_crashes_really_happened(self, report):
        counters = report["counters"]
        assert counters["recovery.crashes_injected"] == 2
        assert counters["recovery.restarts_injected"] == 2
        assert counters["cluster.volume_failures"] == 2
        # The workload really hit the dead volumes: failovers and
        # skip-down routing occurred, then resync repaired the replicas.
        assert counters["replication.failovers"] > 0
        assert counters["replication.resyncs_verified"] > 0
        assert counters["health.recoveries"] >= 2

    def test_writes_made_progress(self, report):
        acked = report["final_versions"]["acked"]
        assert all(version > 0 for version in acked.values())
        assert report["final_versions"]["agent_writes_acked"] > 0

    def test_unavailability_bounded(self, report):
        unavailability = report["unavailability"]
        assert unavailability["out_of_bound"] == []
        allowance = recovery_allowance_us(by_name("clean_restarts"))
        assert unavailability["allowance_us"] == allowance

    def test_deterministic_and_json_clean(self, report):
        # Byte-for-byte reproducibility is the whole contract: the
        # same scenario serialises identically on a second run.
        again = run_scenario(by_name("clean_restarts"))
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestCampaign:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            run_campaign(["no_such_scenario"])

    def test_document_shape(self):
        document = run_campaign(["clean_restarts"])
        assert document["schema_version"] == 1
        assert document["suite"] == "repro-availability"
        assert set(document["scenarios"]) == {"clean_restarts"}
