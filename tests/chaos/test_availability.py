"""The availability campaign: determinism, SLO verdicts, CLI surface."""

import json

import pytest

from repro.chaos.availability import (
    RAID_SCENARIOS,
    RAID_SMOKE,
    SCENARIOS,
    SCRUB_SCENARIOS,
    SCRUB_SMOKE,
    SHARD_SCENARIOS,
    SHARD_SMOKE,
    SMOKE_SCENARIOS,
    recovery_allowance_us,
    run_campaign,
    run_scenario,
)


def by_name(name):
    return next(s for s in SCENARIOS if s.name == name)


class TestScenarioCatalogue:
    def test_smoke_is_a_subset(self):
        names = {scenario.name for scenario in SCENARIOS}
        assert set(SMOKE_SCENARIOS) <= names

    def test_names_unique(self):
        names = [scenario.name for scenario in SCENARIOS]
        assert len(names) == len(set(names))

    def test_allowance_is_parametric(self):
        scenario = by_name("clean_restarts")
        allowance = recovery_allowance_us(scenario)
        # The bound is built from configured constants: breaker
        # cooldown plus one worst-case slow call plus slack — so it
        # moves when the policies move, never by empirical tuning.
        assert allowance > 150_000  # at least the breaker cooldown
        assert allowance < 2_000_000  # and far below a whole run


class TestCleanRestarts:
    """One full scenario execution, shared across the assertions."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_scenario(by_name("clean_restarts"))

    def test_passes_its_slo(self, report):
        assert report["status"] == "pass"
        assert report["violations"] == []

    def test_crashes_really_happened(self, report):
        counters = report["counters"]
        assert counters["recovery.crashes_injected"] == 2
        assert counters["recovery.restarts_injected"] == 2
        assert counters["cluster.volume_failures"] == 2
        # The workload really hit the dead volumes: failovers and
        # skip-down routing occurred, then resync repaired the replicas.
        assert counters["replication.failovers"] > 0
        assert counters["replication.resyncs_verified"] > 0
        assert counters["health.recoveries"] >= 2

    def test_writes_made_progress(self, report):
        acked = report["final_versions"]["acked"]
        assert all(version > 0 for version in acked.values())
        assert report["final_versions"]["agent_writes_acked"] > 0

    def test_unavailability_bounded(self, report):
        unavailability = report["unavailability"]
        assert unavailability["out_of_bound"] == []
        allowance = recovery_allowance_us(by_name("clean_restarts"))
        assert unavailability["allowance_us"] == allowance

    def test_deterministic_and_json_clean(self, report):
        # Byte-for-byte reproducibility is the whole contract: the
        # same scenario serialises identically on a second run.
        again = run_scenario(by_name("clean_restarts"))
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestScrubScenarios:
    """PR 6: the two media-failure scenarios and their SLOs."""

    @pytest.fixture(scope="class")
    def rot_report(self):
        return run_scenario(next(
            s for s in SCRUB_SCENARIOS if s.name == "scrub_latent_rot"
        ))

    @pytest.fixture(scope="class")
    def media_report(self):
        return run_scenario(next(
            s for s in SCRUB_SCENARIOS if s.name == "scrub_media_errors"
        ))

    def test_scrub_smoke_names_the_catalogue(self):
        assert set(SCRUB_SMOKE) == {s.name for s in SCRUB_SCENARIOS}
        # No collisions with the crash/restart scenario namespace.
        assert not set(SCRUB_SMOKE) & {s.name for s in SCENARIOS}

    def test_rot_scenario_passes_both_slos(self, rot_report):
        assert rot_report["status"] == "pass"
        assert rot_report["violations"] == []

    def test_injected_corruptions_all_found_and_repaired(self, rot_report):
        scenario = next(
            s for s in SCRUB_SCENARIOS if s.name == "scrub_latent_rot"
        )
        injected = set(rot_report["injected"]["fragments"])
        assert len(injected) == scenario.targets
        found = {start for _, _, _, start, _, _ in rot_report["findings"]}
        assert injected <= found
        # SLO-1: the volume is clean within the bounded cycle budget.
        assert 1 <= rot_report["cycles_to_clean"] <= scenario.max_cycles

    def test_repairs_used_both_redundancy_tiers(self, rot_report):
        counters = rot_report["counters"]
        # Mirrored extents (the FIT) healed locally from stable...
        assert counters["disk_server.0.stable_repairs"] >= 1
        # ...and plain data fragments were quarantined and resynced
        # from a peer replica through the recovery health machinery.
        assert rot_report["routed_to_replication"] > 0
        assert counters["replication.media_quarantines"] >= 1
        assert counters["replication.resyncs_verified"] >= 1

    def test_no_corrupt_byte_reached_a_client(self, rot_report):
        # SLO-2: every client-path read during the scenario was either
        # bit-exact or a loud error — reads_checked counts the former,
        # direct_read_errors the latter; a silent wrong byte would have
        # been a violation.
        assert rot_report["reads_checked"] > 0
        assert rot_report["violations"] == []

    def test_media_error_scenario_passes(self, media_report):
        assert media_report["status"] == "pass"
        assert media_report["violations"] == []
        assert media_report["injected"]["kind"] == "media"
        assert any(
            kind == "media" for _, _, kind, _, _, _ in media_report["findings"]
        )

    def test_scrub_reports_are_deterministic(self, rot_report):
        again = run_scenario(next(
            s for s in SCRUB_SCENARIOS if s.name == "scrub_latent_rot"
        ))
        assert json.dumps(rot_report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestRaidScenarios:
    """PR 9: the two RAID-tier scenarios and their SLOs."""

    @pytest.fixture(scope="class")
    def loss_report(self):
        return run_scenario(next(
            s for s in RAID_SCENARIOS if s.name == "raid_member_loss"
        ))

    @pytest.fixture(scope="class")
    def interrupted_report(self):
        return run_scenario(next(
            s for s in RAID_SCENARIOS if s.name == "raid_rebuild_interrupted"
        ))

    def test_raid_smoke_names_the_catalogue(self):
        assert set(RAID_SMOKE) == {s.name for s in RAID_SCENARIOS}
        taken = {s.name for s in SCENARIOS} | {s.name for s in SCRUB_SCENARIOS}
        assert not set(RAID_SMOKE) & taken

    def test_member_loss_passes_its_slo(self, loss_report):
        assert loss_report["status"] == "pass"
        assert loss_report["violations"] == []

    def test_volume_served_through_the_degraded_window(self, loss_report):
        # Zero failed operations is the whole point: unlike a volume
        # crash, member loss must cost no availability at all — and the
        # coverage counters prove the window was actually traversed.
        ops = loss_report["ops"]
        assert ops["reads_degraded"] > 0
        assert ops["writes_degraded"] > 0
        counters = loss_report["counters"]
        assert counters["raid.0.degraded_reads"] > 0
        assert counters["raid.0.degraded_writes"] > 0
        # Degraded partial-row updates armed the write-intent journal.
        assert counters["raid.0.journal_arms"] > 0

    def test_member_loss_walks_the_state_machine(self, loss_report):
        transitions = [
            (old, new) for _, old, new in loss_report["state_log"]
        ]
        assert transitions == [
            ("OPTIMAL", "DEGRADED"),
            ("DEGRADED", "REBUILDING"),
            ("REBUILDING", "OPTIMAL"),
        ]
        assert loss_report["counters"]["raid.0.rebuild.chunks"] > 0
        assert len(loss_report["member_windows"]) == 1

    def test_interrupted_rebuild_degrades_instead_of_failing(
        self, interrupted_report
    ):
        assert interrupted_report["status"] == "pass"
        assert interrupted_report["violations"] == []
        transitions = [
            (old, new) for _, old, new in interrupted_report["state_log"]
        ]
        # The second kill lands mid-rebuild: REBUILDING -> DEGRADED
        # (never FAILED — three healthy members remain), then the
        # second replacement rebuilds to OPTIMAL before the finale.
        assert ("REBUILDING", "DEGRADED") in transitions
        assert transitions.count(("REBUILDING", "OPTIMAL")) == 1
        scripted = transitions[: transitions.index(("REBUILDING", "OPTIMAL")) + 1]
        assert all(new != "FAILED" for _, new in scripted)
        assert interrupted_report["counters"]["cluster.member_replacements"] == 2

    def test_exhausted_redundancy_fails_loudly(self, interrupted_report):
        finale = interrupted_report["finale"]
        assert finale["state"] == "FAILED"
        assert finale["reads_served"] == 0
        assert finale["reads_refused"] > 0
        assert finale["health_down"] is True

    def test_raid_reports_are_deterministic(self, loss_report):
        again = run_scenario(next(
            s for s in RAID_SCENARIOS if s.name == "raid_member_loss"
        ))
        assert json.dumps(loss_report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestShardScenarios:
    """PR 10: the two sharded-namespace scenarios and their SLOs."""

    @pytest.fixture(scope="class")
    def storm_report(self):
        return run_scenario(next(
            s for s in SHARD_SCENARIOS if s.name == "shard_death_metadata_storm"
        ))

    @pytest.fixture(scope="class")
    def rebalance_report(self):
        return run_scenario(next(
            s for s in SHARD_SCENARIOS if s.name == "rebalance_interrupted"
        ))

    def test_shard_smoke_names_the_catalogue(self):
        assert set(SHARD_SMOKE) == {s.name for s in SHARD_SCENARIOS}
        taken = (
            {s.name for s in SCENARIOS}
            | {s.name for s in SCRUB_SCENARIOS}
            | {s.name for s in RAID_SCENARIOS}
        )
        assert not set(SHARD_SMOKE) & taken

    def test_storm_passes_its_slo(self, storm_report):
        assert storm_report["status"] == "pass"
        assert storm_report["violations"] == []

    def test_storm_really_killed_a_shard(self, storm_report):
        counters = storm_report["counters"]
        assert counters["recovery.shard_kills_injected"] == 1
        assert counters["recovery.shard_restarts_injected"] == 1
        assert counters["cluster.shard_failures"] == 1
        # Reads of acked names crossed the dead shard and failed over
        # to the replica peer; the restart resynced the primary table.
        assert counters["naming_shard.failovers"] > 0
        assert counters["naming_shard.resyncs"] >= 1
        assert len(storm_report["shard_windows"]) == 1

    def test_storm_resolves_never_failed(self, storm_report):
        ops = storm_report["ops"]
        assert ops["failed_resolves"] == 0
        assert ops["resolves"] > 0
        # Binds may fail while the shard is down — but only there; an
        # out-of-window failure would have been a violation.
        assert storm_report["final_versions"]["acked_bindings"] > 0

    def test_rebalance_passes_its_slo(self, rebalance_report):
        assert rebalance_report["status"] == "pass"
        assert rebalance_report["violations"] == []

    def test_rebalance_aborted_then_completed(self, rebalance_report):
        counters = rebalance_report["counters"]
        assert counters["naming_shard.migrations_started"] == 2
        assert counters["naming_shard.migrations_aborted"] == 1
        assert counters["naming_shard.migrations_completed"] == 1
        assert counters["cluster.shards_added"] == 1
        # Not one resolve missed at any watermark position.
        assert rebalance_report["ops"]["failed_resolves"] == 0

    def test_shard_reports_are_deterministic(self, storm_report):
        again = run_scenario(next(
            s for s in SHARD_SCENARIOS if s.name == "shard_death_metadata_storm"
        ))
        assert json.dumps(storm_report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestCampaign:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            run_campaign(["no_such_scenario"])

    def test_document_shape(self):
        document = run_campaign(["clean_restarts"])
        assert document["schema_version"] == 1
        assert document["suite"] == "repro-availability"
        assert set(document["scenarios"]) == {"clean_restarts"}

    def test_campaign_dispatches_scrub_scenarios(self):
        document = run_campaign(["scrub_media_errors"])
        assert set(document["scenarios"]) == {"scrub_media_errors"}
        assert document["scenarios"]["scrub_media_errors"]["status"] == "pass"
