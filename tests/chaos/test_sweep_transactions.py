"""Exhaustive crash sweeps over the transaction-service workloads.

All-or-nothing at every crash point: the intentions-list protocol on a
single volume, and the decision-record discipline across two volumes
(a crash between the per-volume flag flips must not split the
outcome).  The final test proves the harness has teeth: with the
deliberately broken recovery path enabled, the sweep reports
violations instead of passing vacuously.
"""

from repro.chaos.scheduler import CrashScheduler
from repro.chaos.workloads import (
    TransactionCommitWorkload,
    TwoVolumeCommitWorkload,
)


class TestSingleVolumeCommit:
    def test_every_crash_point_is_all_or_nothing(self):
        scheduler = CrashScheduler(TransactionCommitWorkload)
        report = scheduler.sweep()
        assert report.points_run == report.total_points > 0
        assert report.violations == []

    def test_sweep_visits_the_commit_machinery(self):
        """The counting run must include the stable-storage writes of
        intention records and flags, not just data blocks."""
        workload = TransactionCommitWorkload()
        workload.run()
        syncs = {
            entry.label
            for entry in workload.monitor.trace
            if entry.kind == "stable-sync"
        }
        assert any(label.startswith("intent:") for label in syncs)
        assert any(label.startswith("txnflag:") for label in syncs)


class TestTwoVolumeCommit:
    def test_cross_volume_atomicity_at_every_crash_point(self):
        """One transaction spanning two volumes: after a crash at any
        write — including between the two flag flips — recovery yields
        jointly all-old or all-new contents on both volumes."""
        scheduler = CrashScheduler(TwoVolumeCommitWorkload)
        report = scheduler.sweep()
        assert report.points_run == report.total_points > 0
        assert report.violations == []

    def test_decision_record_is_written_and_collected(self):
        workload = TwoVolumeCommitWorkload()
        workload.run()
        syncs = {
            entry.label
            for entry in workload.monitor.trace
            if entry.kind == "stable-sync"
        }
        assert any(label.startswith("txndecision:") for label in syncs)
        # After a clean run nothing remains: records, flags and the
        # decision were all garbage-collected.
        for volume in workload.volumes:
            keys = list(volume.stable.keys())
            assert not [
                k
                for k in keys
                if k.startswith(("intent:", "txnflag:", "txndecision:"))
            ]


class TestBrokenRecoveryIsDetected:
    def test_skip_redo_bug_is_caught_by_the_sweep(self):
        """Demonstrably catch a broken recovery path: with redo
        deliberately skipped, some crash point leaves partial commit
        state and the sweep must flag it."""
        scheduler = CrashScheduler(
            TransactionCommitWorkload, break_recovery=True
        )
        report = scheduler.sweep()
        assert report.violations, (
            "the sweep passed with recovery redo disabled — the harness "
            "has no teeth"
        )
        # Failure messages carry the crash point and an exact repro
        # command (the fault-injection seed surfacing requirement).
        for violation in report.violations:
            assert "crash point" in violation
            assert "--only" in violation and "--break-recovery" in violation
