"""Exhaustive crash sweep over the basic file service workload.

Every physical write the append-overwrite workload performs — data
disk and both stable mirrors — is crashed exactly once (torn), the
volume recovered, and the full invariant set checked: stable mirror
agreement, free-extent/bitmap reconciliation, zero fsck errors, and
flushed file contents surviving bit-exact.
"""

from repro.chaos.scheduler import CrashScheduler
from repro.chaos.trace import CrashPointMonitor
from repro.chaos.workloads import AppendOverwriteWorkload
from repro.common.metrics import Metrics


class TestCountingRun:
    def test_workload_is_deterministic(self):
        """Two counting runs must produce identical write traces —
        the property that makes crash-point replay sound."""
        first = AppendOverwriteWorkload()
        first.run()
        second = AppendOverwriteWorkload()
        second.run()
        trace_a = [
            (e.disk_id, e.start, e.n_sectors) for e in first.monitor.write_entries()
        ]
        trace_b = [
            (e.disk_id, e.start, e.n_sectors) for e in second.monitor.write_entries()
        ]
        assert trace_a == trace_b
        assert len(trace_a) > 0

    def test_trace_covers_data_disk_and_stable_mirrors(self):
        workload = AppendOverwriteWorkload()
        workload.run()
        layers = {entry.layer() for entry in workload.monitor.write_entries()}
        assert layers == {"data disk", "stable mirror"}
        syncs = [e for e in workload.monitor.trace if e.kind == "stable-sync"]
        assert syncs, "careful writes must mark their sync boundaries"

    def test_torn_prefix_is_deterministic_and_in_range(self):
        for point in range(1, 200):
            for n_sectors in (1, 4, 9, 16):
                torn = CrashPointMonitor.torn_sectors(point, n_sectors)
                assert 0 <= torn <= n_sectors
                assert torn == CrashPointMonitor.torn_sectors(point, n_sectors)

    def test_unfinished_workload_raises_on_unreached_point(self):
        scheduler = CrashScheduler(AppendOverwriteWorkload)
        total = scheduler.count_crash_points()
        import pytest

        with pytest.raises(RuntimeError, match="without reaching"):
            scheduler.run_at(total + 1000)


class TestExhaustiveSweep:
    def test_every_crash_point_recovers_cleanly(self):
        """The acceptance sweep: every write crash point, zero
        invariant violations, coverage spanning both layers."""
        metrics = Metrics()
        scheduler = CrashScheduler(AppendOverwriteWorkload, metrics=metrics)
        report = scheduler.sweep()
        assert report.points_run == report.total_points > 0
        assert report.violations == []
        layers = dict(
            (layer, points) for layer, points, _ in report.layer_rows()
        )
        assert layers.get("data disk", 0) > 0
        assert layers.get("stable mirror", 0) > 0
        # Coverage lands in the metrics registry.
        prefix = "chaos.sweep.append-overwrite"
        assert metrics.get(f"{prefix}.points") == report.points_run
        assert metrics.get(f"{prefix}.violations") == 0
        assert metrics.get(f"{prefix}.layer.data_disk") == layers["data disk"]

    def test_coverage_table_renders(self):
        scheduler = CrashScheduler(AppendOverwriteWorkload)
        report = scheduler.sweep(max_points=3)
        table = report.coverage_table()
        assert "append-overwrite" in table
        assert "layer" in table and "total" in table

    def test_bounded_sweep_reports_its_bound(self):
        scheduler = CrashScheduler(AppendOverwriteWorkload)
        report = scheduler.sweep(max_points=5)
        assert report.points_run == 5
        assert report.total_points > 5  # the bound is visible, not silent
