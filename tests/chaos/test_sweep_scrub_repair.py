"""Exhaustive crash sweep over the scrubber's repair writes.

The scrubber's whole value proposition is that its repairs are writes
like any other: routed through the ordinary put machinery, numbered by
the crash-point monitor, and therefore provably crash-safe.  This
sweep corrupts a mirrored extent, schedules a latent media error under
another, lets the scrubber repair both, and crashes the volume at
every physical write of the run — including mid-repair — asserting
recovery (plus a post-recovery re-scrub) always converges to durable,
bit-exact content.
"""

from repro.chaos.scheduler import CrashScheduler
from repro.chaos.workloads import ScrubRepairWorkload
from repro.common.metrics import Metrics


class TestCountingRun:
    def test_workload_is_deterministic(self):
        first = ScrubRepairWorkload()
        first.run()
        second = ScrubRepairWorkload()
        second.run()
        trace_a = [
            (e.disk_id, e.start, e.n_sectors) for e in first.monitor.write_entries()
        ]
        trace_b = [
            (e.disk_id, e.start, e.n_sectors) for e in second.monitor.write_entries()
        ]
        assert trace_a == trace_b
        assert len(trace_a) > 0

    def test_scrub_repairs_appear_as_numbered_writes(self):
        """The repair path must not bypass the crash-point discipline:
        the counting run happens with faults already injected, so the
        repair writes show up on the data disk's numbered trace."""
        workload = ScrubRepairWorkload()
        workload.run()
        layers = {entry.layer() for entry in workload.monitor.write_entries()}
        assert layers == {"data disk", "stable mirror"}
        # And the scrubber really repaired during the counting run.
        metrics = workload.metrics
        assert metrics.get("scrub.chaos0.repairs") >= 2
        assert metrics.get("disk_server.chaos0.stable_repairs") >= 2


class TestExhaustiveSweep:
    def test_every_crash_point_recovers_cleanly(self):
        """The PR 6 acceptance sweep: a crash at any write — including
        mid-repair — leaves zero invariant violations."""
        metrics = Metrics()
        scheduler = CrashScheduler(ScrubRepairWorkload, metrics=metrics)
        report = scheduler.sweep()
        assert report.points_run == report.total_points > 0
        assert report.violations == []
        layers = dict(
            (layer, points) for layer, points, _ in report.layer_rows()
        )
        assert layers.get("data disk", 0) > 0
        assert layers.get("stable mirror", 0) > 0
        prefix = "chaos.sweep.scrub-repair"
        assert metrics.get(f"{prefix}.points") == report.points_run
        assert metrics.get(f"{prefix}.violations") == 0
