"""The replication service: read-one/write-all, failover, resync."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ReplicationError
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.replication.service import ReplicationService
from tests.conftest import build_file_server

NAME = AttributedName.file("/replicated/data")


def build(n_volumes=3, degree=3, **server_kwargs):
    clock, metrics = SimClock(), Metrics()
    servers = {
        volume: build_file_server(
            clock, metrics, volume_id=volume, **server_kwargs
        )
        for volume in range(n_volumes)
    }
    naming = NamingService(metrics)
    service = ReplicationService(
        naming, servers, clock, metrics, default_degree=degree
    )
    return service, servers, naming, metrics


class TestCreateReadWrite:
    def test_create_places_replicas_on_distinct_volumes(self):
        service, servers, _, _ = build()
        replica_set = service.create(NAME)
        assert replica_set.degree == 3
        volumes = {replica.volume_id for replica in replica_set.replicas}
        assert len(volumes) == 3

    def test_degree_cannot_exceed_volumes(self):
        service, _, _, _ = build(n_volumes=2, degree=2)
        with pytest.raises(ReplicationError):
            service.create(NAME, degree=5)

    def test_write_all_read_one(self):
        service, servers, _, metrics = build()
        replica_set = service.create(NAME)
        service.write(NAME, 0, b"replicated!")
        assert metrics.get("replication.replica_writes") == 3
        assert service.read(NAME, 0, 11) == b"replicated!"
        # Every replica holds the data independently.
        for replica in replica_set.replicas:
            assert servers[replica.volume_id].read(replica, 0, 11) == b"replicated!"

    def test_get_attribute(self):
        service, _, _, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"12345")
        assert service.get_attribute(NAME).file_size == 5

    def test_delete_removes_all_replicas(self):
        service, servers, naming, _ = build()
        replica_set = service.create(NAME)
        replicas = list(replica_set.replicas)
        service.delete(NAME)
        for replica in replicas:
            assert not servers[replica.volume_id].exists(replica)
        assert len(naming) == 0

    def test_lookup_unknown_name(self):
        service, _, _, _ = build()
        with pytest.raises(ReplicationError):
            service.read(AttributedName.file("/nope"), 0, 1)

    def test_lookup_rebuilds_from_naming(self):
        """A fresh service instance recovers replica sets from naming."""
        service, servers, naming, metrics = build()
        service.create(NAME)
        service.write(NAME, 0, b"persisted")
        fresh = ReplicationService(
            naming, servers, SimClock(), Metrics(), default_degree=3
        )
        assert fresh.read(NAME, 0, 9) == b"persisted"


class TestFailover:
    def test_read_fails_over_when_primary_crashes(self):
        service, servers, _, metrics = build()
        service.create(NAME)
        service.write(NAME, 0, b"survives")
        servers[0].crash()
        assert service.read(NAME, 0, 8) == b"survives"
        assert metrics.get("replication.failovers") >= 1
        assert service.live_replicas(NAME) == 2

    def test_write_continues_on_survivors(self):
        service, servers, _, _ = build()
        replica_set = service.create(NAME)
        servers[1].crash()
        service.write(NAME, 0, b"partial write-all")
        assert service.read(NAME, 0, 17) == b"partial write-all"
        assert service.live_replicas(NAME) == 2

    def test_all_replicas_down_is_an_error(self):
        service, servers, _, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"x")
        for server in servers.values():
            server.crash()
        with pytest.raises(ReplicationError):
            service.read(NAME, 0, 1)

    def test_single_volume_degree_one_still_works(self):
        service, _, _, _ = build(n_volumes=1, degree=1)
        service.create(NAME)
        service.write(NAME, 0, b"solo")
        assert service.read(NAME, 0, 4) == b"solo"


class TestResync:
    def test_resync_repairs_stale_replica(self):
        service, servers, _, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"v1")
        servers[0].crash()
        service.write(NAME, 0, b"v2")  # volume 0 misses this write
        servers[0].disk.disk.repair()
        servers[0].recover()
        repaired = service.resync(NAME)
        assert repaired == 1
        assert service.live_replicas(NAME) == 3
        # Force reading from volume 0's replica: others crash.
        servers[1].crash()
        servers[2].crash()
        assert service.read(NAME, 0, 2) == b"v2"

    def test_resync_noop_when_healthy(self):
        service, _, _, _ = build()
        service.create(NAME)
        assert service.resync(NAME) == 0

    def test_availability_improves_with_degree(self):
        """The point of the replication layer: degree-k tolerates k-1
        volume crashes."""
        for degree in (1, 2, 3):
            service, servers, _, _ = build(degree=degree)
            service.create(NAME, degree=degree)
            service.write(NAME, 0, b"data")
            for volume in range(degree - 1):
                servers[volume].crash()
            assert service.read(NAME, 0, 4) == b"data"


class TestMediaQuarantine:
    """PR 6: rot on one replica means content divergence — quarantine
    the replica and repair it from a clean peer, never serve it."""

    def _rot_replica(self, service, servers, volume_id):
        """Rot the first data block of NAME's replica on one volume."""
        for server in servers.values():
            server.flush()  # reads must come from the platter below
        replica_set = service.lookup(NAME)
        system_name = next(
            replica
            for replica in replica_set.replicas
            if replica.volume_id == volume_id
        )
        server = servers[volume_id]
        descriptor = server.block_descriptor(system_name, 0)
        from repro.disk_service.addresses import Extent

        extent = Extent.for_block_run(descriptor.address, 1)
        server.disk.disk.corrupt_sectors(extent.first_sector, 1)
        # Reads must hit the platter, not a warm cache.
        server.disk.cache.invalidate()
        return replica_set

    def test_media_error_read_quarantines_and_fails_over(self):
        service, servers, _, metrics = build(data_cache_blocks=0)
        service.create(NAME)
        service.write(NAME, 0, b"clean bytes")
        replica_set = self._rot_replica(service, servers, 0)
        # The read fails over to a clean peer — corrupt bytes never
        # reach the client — and the rotten replica is quarantined.
        assert service.read(NAME, 0, 11) == b"clean bytes"
        assert 0 in replica_set.stale
        assert metrics.get("replication.media_quarantines") == 1
        assert metrics.get("disk_server.0.checksum_failures") >= 1

    def test_quarantined_replica_repairs_by_resync(self):
        service, servers, _, _ = build(data_cache_blocks=0)
        service.create(NAME)
        service.write(NAME, 0, b"clean bytes")
        self._rot_replica(service, servers, 0)
        service.read(NAME, 0, 11)
        assert service.resync_all_stale() == 1
        assert service.live_replicas(NAME) == 3
        # Force reading volume 0's repaired copy.
        servers[1].crash()
        servers[2].crash()
        assert service.read(NAME, 0, 11) == b"clean bytes"

    def test_quarantine_volume_media_repairs_from_peers(self):
        service, servers, _, metrics = build(data_cache_blocks=0)
        service.create(NAME)
        service.write(NAME, 0, b"scrub finding")
        self._rot_replica(service, servers, 1)
        # The scrubber's hook: quarantine everything on volume 1 and
        # resync it from clean peers in one administrative sweep.
        assert service.quarantine_volume_media(1) == 1
        assert metrics.get("replication.media_quarantines") == 1
        assert service.lookup(NAME).stale == set()
        servers[0].crash()
        servers[2].crash()
        assert service.read(NAME, 0, 13) == b"scrub finding"

    def test_never_quarantine_the_last_clean_replica(self):
        service, servers, _, metrics = build(n_volumes=2, degree=2)
        service.create(NAME)
        service.write(NAME, 0, b"v1")
        servers[1].crash()
        service.write(NAME, 0, b"v2")  # the only peer is now stale
        deferred = service.quarantine_volume_media(0)
        assert deferred == 0
        assert 0 not in service.lookup(NAME).stale
        assert metrics.get("replication.quarantine_deferrals") == 1
        assert metrics.get("replication.media_quarantines") == 0

    def test_quarantine_skips_volumes_without_members(self):
        service, _, _, metrics = build()
        service.create(NAME, degree=2)
        untouched = next(
            volume
            for volume in (0, 1, 2)
            if volume
            not in {r.volume_id for r in service.lookup(NAME).replicas}
        )
        assert service.quarantine_volume_media(untouched) == 0
        assert metrics.get("replication.media_quarantines") == 0
