"""The replication service: read-one/write-all, failover, resync."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ReplicationError
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.replication.service import ReplicationService
from tests.conftest import build_file_server

NAME = AttributedName.file("/replicated/data")


def build(n_volumes=3, degree=3):
    clock, metrics = SimClock(), Metrics()
    servers = {
        volume: build_file_server(clock, metrics, volume_id=volume)
        for volume in range(n_volumes)
    }
    naming = NamingService(metrics)
    service = ReplicationService(
        naming, servers, clock, metrics, default_degree=degree
    )
    return service, servers, naming, metrics


class TestCreateReadWrite:
    def test_create_places_replicas_on_distinct_volumes(self):
        service, servers, _, _ = build()
        replica_set = service.create(NAME)
        assert replica_set.degree == 3
        volumes = {replica.volume_id for replica in replica_set.replicas}
        assert len(volumes) == 3

    def test_degree_cannot_exceed_volumes(self):
        service, _, _, _ = build(n_volumes=2, degree=2)
        with pytest.raises(ReplicationError):
            service.create(NAME, degree=5)

    def test_write_all_read_one(self):
        service, servers, _, metrics = build()
        replica_set = service.create(NAME)
        service.write(NAME, 0, b"replicated!")
        assert metrics.get("replication.replica_writes") == 3
        assert service.read(NAME, 0, 11) == b"replicated!"
        # Every replica holds the data independently.
        for replica in replica_set.replicas:
            assert servers[replica.volume_id].read(replica, 0, 11) == b"replicated!"

    def test_get_attribute(self):
        service, _, _, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"12345")
        assert service.get_attribute(NAME).file_size == 5

    def test_delete_removes_all_replicas(self):
        service, servers, naming, _ = build()
        replica_set = service.create(NAME)
        replicas = list(replica_set.replicas)
        service.delete(NAME)
        for replica in replicas:
            assert not servers[replica.volume_id].exists(replica)
        assert len(naming) == 0

    def test_lookup_unknown_name(self):
        service, _, _, _ = build()
        with pytest.raises(ReplicationError):
            service.read(AttributedName.file("/nope"), 0, 1)

    def test_lookup_rebuilds_from_naming(self):
        """A fresh service instance recovers replica sets from naming."""
        service, servers, naming, metrics = build()
        service.create(NAME)
        service.write(NAME, 0, b"persisted")
        fresh = ReplicationService(
            naming, servers, SimClock(), Metrics(), default_degree=3
        )
        assert fresh.read(NAME, 0, 9) == b"persisted"


class TestFailover:
    def test_read_fails_over_when_primary_crashes(self):
        service, servers, _, metrics = build()
        service.create(NAME)
        service.write(NAME, 0, b"survives")
        servers[0].crash()
        assert service.read(NAME, 0, 8) == b"survives"
        assert metrics.get("replication.failovers") >= 1
        assert service.live_replicas(NAME) == 2

    def test_write_continues_on_survivors(self):
        service, servers, _, _ = build()
        replica_set = service.create(NAME)
        servers[1].crash()
        service.write(NAME, 0, b"partial write-all")
        assert service.read(NAME, 0, 17) == b"partial write-all"
        assert service.live_replicas(NAME) == 2

    def test_all_replicas_down_is_an_error(self):
        service, servers, _, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"x")
        for server in servers.values():
            server.crash()
        with pytest.raises(ReplicationError):
            service.read(NAME, 0, 1)

    def test_single_volume_degree_one_still_works(self):
        service, _, _, _ = build(n_volumes=1, degree=1)
        service.create(NAME)
        service.write(NAME, 0, b"solo")
        assert service.read(NAME, 0, 4) == b"solo"


class TestResync:
    def test_resync_repairs_stale_replica(self):
        service, servers, _, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"v1")
        servers[0].crash()
        service.write(NAME, 0, b"v2")  # volume 0 misses this write
        servers[0].disk.disk.repair()
        servers[0].recover()
        repaired = service.resync(NAME)
        assert repaired == 1
        assert service.live_replicas(NAME) == 3
        # Force reading from volume 0's replica: others crash.
        servers[1].crash()
        servers[2].crash()
        assert service.read(NAME, 0, 2) == b"v2"

    def test_resync_noop_when_healthy(self):
        service, _, _, _ = build()
        service.create(NAME)
        assert service.resync(NAME) == 0

    def test_availability_improves_with_degree(self):
        """The point of the replication layer: degree-k tolerates k-1
        volume crashes."""
        for degree in (1, 2, 3):
            service, servers, _, _ = build(degree=degree)
            service.create(NAME, degree=degree)
            service.write(NAME, 0, b"data")
            for volume in range(degree - 1):
                servers[volume].crash()
            assert service.read(NAME, 0, 4) == b"data"
