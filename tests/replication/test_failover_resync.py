"""Failure routing: transient vs permanent faults, orphans, auto-repair."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DiskError
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.recovery.health import HealthRegistry, HealthState
from repro.replication.service import ReplicationService, volume_component
from repro.tools.fsck import sweep_replication_orphans
from tests.conftest import build_file_server

NAME = AttributedName.file("/replicated/data")


class _Flaky:
    """Delegates to a real file server, failing the next N operations
    with a transient (non-crash) disk error."""

    def __init__(self, server):
        self._server = server
        self.failures_left = 0

    def __getattr__(self, attr):
        real = getattr(self._server, attr)
        if not callable(real):
            return real

        def guarded(*args, **kwargs):
            if self.failures_left > 0:
                self.failures_left -= 1
                raise DiskError("transient sector hiccup (injected)")
            return real(*args, **kwargs)

        return guarded


def build(n_volumes=3, degree=3, *, tolerance=3, transient_retries=1):
    clock, metrics = SimClock(), Metrics()
    servers = {
        volume: build_file_server(clock, metrics, volume_id=volume)
        for volume in range(n_volumes)
    }
    flaky = {volume: _Flaky(server) for volume, server in servers.items()}
    health = HealthRegistry(metrics, transient_tolerance=tolerance)
    service = ReplicationService(
        NamingService(metrics),
        flaky,
        clock,
        metrics,
        default_degree=degree,
        health=health,
        transient_retries=transient_retries,
    )
    return service, servers, flaky, health, metrics


class TestTransientFaults:
    def test_transient_read_error_is_retried_in_place(self):
        service, _, flaky, health, metrics = build(transient_retries=1)
        service.create(NAME)
        service.write(NAME, 0, b"steady")
        flaky[0].failures_left = 1
        assert service.read(NAME, 0, 6) == b"steady"
        # The retry absorbed the hiccup: no failover, nothing stale.
        assert metrics.get("replication.transient_retries") == 1
        assert metrics.get("replication.failovers") == 0
        assert service.live_replicas(NAME) == 3
        assert health.state(volume_component(0)) is HealthState.UP

    def test_failed_read_fails_over_without_staling(self):
        """Satellite (b): a read failure does not mean missed writes —
        the replica's content is still current, so it must not be
        marked stale."""
        service, _, flaky, health, metrics = build(transient_retries=0)
        service.create(NAME)
        service.write(NAME, 0, b"current")
        flaky[0].failures_left = 1
        assert service.read(NAME, 0, 7) == b"current"
        assert metrics.get("replication.failovers") == 1
        # No staleness, and the volume is merely SUSPECT, not down.
        assert service.live_replicas(NAME) == 3
        assert health.state(volume_component(0)) is HealthState.SUSPECT
        assert service.resync(NAME) == 0

    def test_failed_write_marks_stale(self):
        service, _, flaky, _, _ = build(transient_retries=0)
        service.create(NAME)
        flaky[1].failures_left = 1
        service.write(NAME, 0, b"missed by volume 1")
        assert service.live_replicas(NAME) == 2

    def test_persistent_transient_errors_escalate_to_down(self):
        # Reads, not writes: a failed write stales the replica, and
        # stale replicas are skipped — reads keep probing the volume.
        service, _, flaky, health, _ = build(tolerance=2, transient_retries=0)
        service.create(NAME)
        service.write(NAME, 0, b"x")
        flaky[0].failures_left = 100
        service.read(NAME, 0, 1)  # transient error #1: SUSPECT
        service.read(NAME, 0, 1)  # transient error #2: escalates
        assert health.is_down(volume_component(0))
        # Once down, the volume is skipped, not retried.
        before = flaky[0].failures_left
        service.read(NAME, 0, 1)
        assert flaky[0].failures_left == before

    def test_crash_is_permanent_immediately(self):
        service, servers, _, health, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"v1")
        servers[0].crash()
        assert service.read(NAME, 0, 2) == b"v1"
        assert health.is_down(volume_component(0))


class TestOrphans:
    def test_delete_records_unreachable_replicas(self):
        """Satellite (a): delete no longer swallows per-replica errors."""
        service, servers, _, _, metrics = build()
        replica_set = service.create(NAME)
        service.write(NAME, 0, b"doomed")
        servers[2].crash()
        service.delete(NAME)
        # The name is gone either way; the unreachable replica is
        # recorded, not forgotten.
        orphans = service.orphans()
        assert [orphan.volume_id for orphan in orphans] == [2]
        assert metrics.get("replication.orphans_recorded") == 1
        for replica in replica_set.replicas[:2]:
            assert not servers[replica.volume_id].exists(replica)

    def test_sweep_reclaims_orphans_after_recovery(self):
        service, servers, _, _, metrics = build()
        service.create(NAME)
        service.write(NAME, 0, b"doomed")
        servers[2].crash()
        service.delete(NAME)
        orphan = service.orphans()[0]
        servers[2].disk.disk.repair()
        servers[2].recover()
        assert service.sweep_orphans() == 1
        assert service.orphans() == []
        assert not servers[2].exists(orphan)
        assert metrics.get("replication.orphans_swept") == 1

    def test_sweep_can_target_one_volume(self):
        service, servers, _, _, _ = build()
        service.create(NAME)
        other = AttributedName.file("/replicated/other")
        service.create(other)
        servers[1].crash()
        servers[2].crash()
        service.delete(NAME)
        service.delete(other)
        assert len(service.orphans()) == 4
        servers[1].disk.disk.repair()
        servers[1].recover()
        assert service.sweep_orphans(volume_id=1) == 2
        assert {o.volume_id for o in service.orphans()} == {2}

    def test_sweep_keeps_orphans_on_still_down_volumes(self):
        service, servers, _, _, _ = build()
        service.create(NAME)
        service.write(NAME, 0, b"x")
        servers[2].crash()
        service.delete(NAME)
        assert service.sweep_orphans() == 0
        assert len(service.orphans()) == 1

    def test_fsck_sweeps_replication_orphans(self):
        service, servers, _, _, _ = build()
        service.create(NAME)
        servers[0].crash()
        service.delete(NAME)
        servers[0].disk.disk.repair()
        servers[0].recover()
        swept, still_orphaned = sweep_replication_orphans(service)
        assert (swept, still_orphaned) == (1, 0)


class TestAutoRepair:
    def test_recovery_event_triggers_resync(self):
        """The tentpole's repair path: a volume coming back resyncs its
        stale replicas without anyone calling resync explicitly."""
        service, servers, _, health, metrics = build()
        service.create(NAME)
        service.write(NAME, 0, b"v1")
        servers[0].crash()
        service.write(NAME, 0, b"v2")
        assert service.live_replicas(NAME) == 2
        servers[0].disk.disk.repair()
        servers[0].recover()
        health.note_recovered(volume_component(0))
        assert service.live_replicas(NAME) == 3
        assert metrics.get("replication.resyncs_verified") == 1
        # Force a read from the repaired replica: others crash.
        servers[1].crash()
        servers[2].crash()
        assert service.read(NAME, 0, 2) == b"v2"

    def test_recovery_event_sweeps_orphans_too(self):
        service, servers, _, health, _ = build()
        service.create(NAME)
        servers[0].crash()
        service.delete(NAME)
        assert len(service.orphans()) == 1
        servers[0].disk.disk.repair()
        servers[0].recover()
        health.note_recovered(volume_component(0))
        assert service.orphans() == []

    def test_resync_deferred_while_primary_down_then_converges(self):
        service, servers, _, health, metrics = build(n_volumes=2, degree=2)
        service.create(NAME)
        service.write(NAME, 0, b"v1")
        servers[0].crash()
        service.write(NAME, 0, b"v2")  # volume 0 stale; 1 is primary source
        servers[1].flush()  # FIT metadata is write-back: persist it
        servers[1].crash()
        # Volume 0 restarts first — but the only fresh copy (volume 1)
        # is down, so the resync defers instead of corrupting.
        servers[0].disk.disk.repair()
        servers[0].recover()
        health.note_recovered(volume_component(0))
        assert metrics.get("replication.resync_deferrals") >= 1
        assert service.live_replicas(NAME) < 2
        # Volume 1 returns: now the repair converges.
        servers[1].disk.disk.repair()
        servers[1].recover()
        health.note_recovered(volume_component(1))
        assert service.live_replicas(NAME) == 2
        # The repaired replica (volume 0) really holds the missed write.
        servers[1].crash()
        assert service.read(NAME, 0, 2) == b"v2"
