"""Concurrency across machines: transactions from several agents."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.simkernel.runner import InterleavedRunner
from repro.transactions.lock_manager import TimeoutPolicy
from repro.workloads.transactions import (
    ACCOUNT_BYTES,
    make_accounts_file,
    read_balance,
    total_balance,
    transfer_script,
)

NAME = AttributedName.file("/shared/accounts")


def build(n_machines=3):
    cluster = RhodosCluster(
        ClusterConfig(
            n_machines=n_machines,
            geometry=DiskGeometry.medium(),
            timeout_policy=TimeoutPolicy(lt_us=800_000, max_renewals=4),
        )
    )
    make_accounts_file(cluster.machines[0].transactions, NAME, 50)
    return cluster


def make_runner(cluster):
    def on_stall(now):
        next_expiry = cluster.coordinator.next_expiry_us()
        if next_expiry is None:
            return False
        cluster.clock.advance_to(next_expiry)
        cluster.coordinator.expire_locks(cluster.clock.now_us)
        return True

    return InterleavedRunner(
        cluster.clock,
        think_time_us=100,
        on_stall=on_stall,
        on_step=lambda now: cluster.coordinator.expire_locks(now),
    )


class TestCrossMachineTransactions:
    def test_agents_on_different_machines_share_locks(self):
        """The lock tables live at the file server, so transactions from
        different machines' agents conflict correctly."""
        cluster = build()
        host_a = cluster.machines[0].transactions
        host_b = cluster.machines[1].transactions
        t_a = host_a.tbegin()
        d_a = host_a.topen(t_a, NAME)
        host_a.tpwrite(t_a, d_a, b"A" * ACCOUNT_BYTES, 0)
        t_b = host_b.tbegin()
        d_b = host_b.topen(t_b, NAME)
        from repro.simkernel.runner import LockWaitPending

        with pytest.raises(LockWaitPending):
            host_b.tpread(t_b, d_b, ACCOUNT_BYTES, 0)
        host_a.tend(t_a)
        assert host_b.tpread(t_b, d_b, ACCOUNT_BYTES, 0) == b"A" * ACCOUNT_BYTES
        host_b.tend(t_b)

    def test_interleaved_transfers_across_machines_conserve_money(self):
        cluster = build(n_machines=3)
        runner = make_runner(cluster)
        for machine_index, machine in enumerate(cluster.machines):
            runner.add_client(
                transfer_script(
                    machine.transactions, NAME, machine_index, machine_index + 10
                ),
                repeats=4,
            )
        report = runner.run()
        assert report.total_commits == 12
        assert (
            total_balance(cluster.machines[0].transactions, NAME, 50)
            == 50 * 1000
        )

    def test_each_machine_gets_its_own_agent_lifecycle(self):
        cluster = build(n_machines=2)
        host_a = cluster.machines[0].transactions
        host_b = cluster.machines[1].transactions
        tid = host_a.tbegin()
        assert host_a.agent_exists
        assert not host_b.agent_exists
        host_a.tabort(tid)

    def test_contended_hot_account_across_machines(self):
        cluster = build(n_machines=4)
        runner = make_runner(cluster)
        for machine_index, machine in enumerate(cluster.machines):
            # Everyone debits account 0: total contention on one record.
            runner.add_client(
                transfer_script(machine.transactions, NAME, 0, machine_index + 1),
                repeats=3,
            )
        report = runner.run()
        assert report.total_commits == 12
        host = cluster.machines[0].transactions
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        raw = host.tpread(tid, descriptor, ACCOUNT_BYTES, 0)
        host.tend(tid)
        assert read_balance(raw) == 1000 - 12  # every transfer debited it
