"""Transactions spanning several volumes.

A transaction may touch files on different disks; each involved
volume's stable store gets intention records and a commit flag, and
each volume recovers independently.  (The paper's design is
single-file-server per file; cross-volume atomicity here is per-volume
commit + idempotent redo — the documented best-effort semantics.)
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.errors import DiskCrashedError
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry

NAME_A = AttributedName.file("/on-zero", volume="0")
NAME_B = AttributedName.file("/on-one", volume="1")


@pytest.fixture
def cluster():
    return RhodosCluster(
        ClusterConfig(n_disks=2, geometry=DiskGeometry.medium())
    )


def seed(cluster):
    host = cluster.machine.transactions
    tid = host.tbegin()
    da = host.tcreate(tid, NAME_A, volume_id=0, locking_level=LockingLevel.PAGE)
    db = host.tcreate(tid, NAME_B, volume_id=1, locking_level=LockingLevel.PAGE)
    host.twrite(tid, da, b"A" * 64)
    host.twrite(tid, db, b"B" * 64)
    host.tend(tid)
    return host


class TestMultiVolumeCommit:
    def test_single_transaction_updates_both_volumes(self, cluster):
        host = seed(cluster)
        tid = host.tbegin()
        da = host.topen(tid, NAME_A)
        db = host.topen(tid, NAME_B)
        host.tpwrite(tid, da, b"a2", 0)
        host.tpwrite(tid, db, b"b2", 0)
        host.tend(tid)
        name_a = cluster.naming.resolve_file(NAME_A)
        name_b = cluster.naming.resolve_file(NAME_B)
        assert cluster.file_servers[0].read(name_a, 0, 2) == b"a2"
        assert cluster.file_servers[1].read(name_b, 0, 2) == b"b2"

    def test_abort_discards_on_both_volumes(self, cluster):
        host = seed(cluster)
        tid = host.tbegin()
        da = host.topen(tid, NAME_A)
        db = host.topen(tid, NAME_B)
        host.tpwrite(tid, da, b"xx", 0)
        host.tpwrite(tid, db, b"yy", 0)
        host.tabort(tid)
        assert cluster.file_servers[0].read(
            cluster.naming.resolve_file(NAME_A), 0, 2
        ) == b"AA"
        assert cluster.file_servers[1].read(
            cluster.naming.resolve_file(NAME_B), 0, 2
        ) == b"BB"

    def test_no_residue_on_either_stable_store(self, cluster):
        host = seed(cluster)
        tid = host.tbegin()
        da = host.topen(tid, NAME_A)
        db = host.topen(tid, NAME_B)
        host.tpwrite(tid, da, b"11", 0)
        host.tpwrite(tid, db, b"22", 0)
        host.tend(tid)
        for volume in (0, 1):
            stable = cluster.disk_servers[volume].stable
            leftovers = [
                key
                for key in stable.keys()
                if key.startswith(("intent:", "txnflag:"))
            ]
            assert leftovers == []

    @pytest.mark.parametrize("crash_volume", [0, 1])
    @pytest.mark.parametrize("crash_at_write", [1, 2, 3])
    def test_per_volume_crash_recovery(self, cluster, crash_volume, crash_at_write):
        """Crash one of the two volumes during a cross-volume commit:
        after per-volume recovery, each volume individually holds its
        old or its new value (per-volume atomicity)."""
        host = seed(cluster)
        tid = host.tbegin()
        da = host.topen(tid, NAME_A)
        db = host.topen(tid, NAME_B)
        host.tpwrite(tid, da, b"N" * 64, 0)
        host.tpwrite(tid, db, b"M" * 64, 0)
        cluster.disks[crash_volume].faults.crash_after_writes(crash_at_write)
        try:
            host.tend(tid)
        except DiskCrashedError:
            pass
        cluster.disks[crash_volume].repair()
        cluster.coordinator.recover_volume(0)
        cluster.coordinator.recover_volume(1)
        content_a = cluster.file_servers[0].read(
            cluster.naming.resolve_file(NAME_A), 0, 64
        )
        content_b = cluster.file_servers[1].read(
            cluster.naming.resolve_file(NAME_B), 0, 64
        )
        assert content_a in (b"A" * 64, b"N" * 64)
        assert content_b in (b"B" * 64, b"M" * 64)

    def test_locks_span_volumes(self, cluster):
        from repro.simkernel.runner import LockWaitPending

        host = seed(cluster)
        tid = host.tbegin()
        da = host.topen(tid, NAME_A)
        db = host.topen(tid, NAME_B)
        host.tpwrite(tid, da, b"zz", 0)
        host.tpwrite(tid, db, b"ww", 0)
        other = host.tbegin()
        oa = host.topen(other, NAME_A)
        ob = host.topen(other, NAME_B)
        with pytest.raises(LockWaitPending):
            host.tpread(other, oa, 2, 0)
        with pytest.raises(LockWaitPending):
            host.tpread(other, ob, 2, 0)
        host.tend(tid)
        assert host.tpread(other, oa, 2, 0) == b"zz"
        assert host.tpread(other, ob, 2, 0) == b"ww"
        host.tend(other)
