"""A day in the life: every subsystem in one continuous scenario.

Exercises — in a single story — directories, basic files, agents and
caching, transactions (flat and nested), striping, replication,
ports, crash recovery, fsck and backup.  The point is not any single
assertion but that all the moving parts compose.
"""

import pytest

from repro.agents.ports import connect_machines
from repro.cluster.config import ClusterConfig
from repro.cluster.striping import StripedFile
from repro.cluster.system import RhodosCluster
from repro.common.units import BLOCK_SIZE, MIB
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.naming.tdirectory import TransactionalDirectory
from repro.simdisk.geometry import DiskGeometry
from repro.tools.backup import dump_volume, restore_volume
from repro.tools.fsck import fsck_volume
from repro.workloads.transactions import make_accounts_file, total_balance


def test_day_in_the_life():
    cluster = RhodosCluster(
        ClusterConfig(n_machines=2, n_disks=3, geometry=DiskGeometry.medium())
    )
    alice = cluster.machines[0]
    bob = cluster.machines[1]

    # 08:00 — Alice lays out her project tree (directories live in files).
    directories = cluster.directories
    directories.mkdir("/home")
    directories.mkdir("/home/alice")
    notes = directories.create_file("/home/alice/notes.md")
    cluster.file_servers[0].write(notes, 0, b"# plan\n- reproduce RHODOS\n")

    # 09:00 — she drafts a report through her file agent (client cache).
    report_fd = alice.file_agent.create(AttributedName.file("/home/alice/report"))
    for paragraph in range(20):
        alice.file_agent.write(report_fd, f"paragraph {paragraph}\n".encode())
    alice.file_agent.close(report_fd)

    # 10:00 — payroll runs transactionally; a nested correction aborts.
    accounts = AttributedName.file("/payroll/accounts")
    make_accounts_file(alice.transactions, accounts, 32)
    parent = alice.transactions.tbegin()
    child = alice.transactions.tbegin(parent=parent)
    descriptor = alice.transactions.topen(child, accounts)
    alice.transactions.tpwrite(child, descriptor, b"\xff" * 8, 0)  # bad fix
    alice.transactions.tabort(child)  # corrected: discard it
    alice.transactions.tend(parent)
    assert total_balance(alice.transactions, accounts, 32) == 32 * 1000

    # 11:00 — Bob archives a dataset too big for one disk (striping).
    dataset = StripedFile.create(
        cluster.naming,
        cluster.file_servers,
        AttributedName.file("/datasets/huge"),
        stripe_bytes=8 * BLOCK_SIZE,
    )
    payload = bytes(range(256)) * (2 * MIB // 256)
    dataset.write(0, payload)

    # 12:00 — the ops config is replicated across all three volumes.
    config_name = AttributedName.file("/etc/cluster.conf")
    cluster.replication.create(config_name, degree=3)
    cluster.replication.write(config_name, 0, b"quorum=2\n")

    # 13:00 — Bob pings Alice over a serial port.
    fd_a, fd_b = connect_machines(
        "ops-line", alice.device_agent, bob.device_agent,
        cluster.clock, cluster.metrics,
    )
    bob.device_agent.write(fd_b, b"lunch?")
    assert alice.device_agent.read(fd_a, 16) == b"lunch?"

    # 14:00 — disaster drill: volume 0 crashes mid-afternoon.
    cluster.flush_all()
    cluster.crash_volume(0)
    # Replicated config still readable (failover).
    assert cluster.replication.read(config_name, 0, 9) == b"quorum=2\n"
    cluster.recover_volume(0)
    cluster.replication.resync(config_name)

    # 15:00 — everything survived: directory tree, report, dataset.
    assert cluster.file_servers[0].read(notes, 0, 6) == b"# plan"
    report_fd = alice.file_agent.open(AttributedName.file("/home/alice/report"))
    assert alice.file_agent.read(report_fd, 12) == b"paragraph 0\n"
    alice.file_agent.close(report_fd)
    assert dataset.read(0, len(payload)) == payload

    # 16:00 — an atomic namespace reorganisation.
    tdir = TransactionalDirectory(directories, alice.transactions)
    directories.mkdir("/archive")
    with tdir.transaction() as view:
        view.rename("/home/alice/notes.md", "/archive/notes.md")
        view.create_file("/home/alice/notes.md")  # fresh notes for tomorrow
    assert directories.exists("/archive/notes.md")

    # 17:00 — nightly maintenance: fsck every volume, then back up vol 0.
    for volume, server in cluster.file_servers.items():
        server.flush()
        report = fsck_volume(server)
        assert report.clean, f"volume {volume}: {report.errors}"
    archive = dump_volume(cluster.file_servers[0])
    mapping = restore_volume(cluster.file_servers[2], archive)
    assert len(mapping) >= 4  # root dir, notes, report, payroll, ...

    # The books balance and the clock only ever moved forward.
    assert total_balance(alice.transactions, accounts, 32) == 32 * 1000
    assert cluster.clock.now_us > 0
