"""End-to-end trace reconstruction across the full layer stack."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName


def uncached_cluster(**overrides):
    """A tracing cluster with every cache level off, so a read must
    descend agent -> file service -> disk service -> physical disk."""
    return RhodosCluster(ClusterConfig(
        tracing=True,
        disk_cache_tracks=0,
        disk_readahead=False,
        server_cache_blocks=0,
        client_cache_blocks=0,
        **overrides,
    ))


class TestFullStackSpanChain:
    def test_single_read_spans_every_layer(self):
        """One agent read reconstructs as a single trace whose primary
        chain touches file_agent, file_service, disk_service and
        simdisk, in architecture order (paper Fig. 1)."""
        cluster = uncached_cluster()
        agent = cluster.machine.file_agent
        name = AttributedName.file("/traced")
        descriptor = agent.create(name)
        agent.write(descriptor, b"payload" * 100)
        agent.close(descriptor)

        cluster.tracer.reset()
        descriptor = agent.open(name)
        data = agent.read(descriptor, 64)
        agent.close(descriptor)
        assert data == (b"payload" * 100)[:64]

        read_roots = [
            span for span in cluster.tracer.roots()
            if span.layer == "file_agent" and span.op == "read"
        ]
        assert len(read_roots) == 1
        root = read_roots[0]
        assert cluster.tracer.layer_path(root.trace_id) == [
            "file_agent", "file_service", "disk_service", "simdisk",
        ]

    def test_span_tree_structure_and_annotations(self):
        cluster = uncached_cluster()
        agent = cluster.machine.file_agent
        name = AttributedName.file("/traced")
        descriptor = agent.create(name)
        agent.write(descriptor, b"x" * 4096)
        agent.close(descriptor)

        cluster.tracer.reset()
        descriptor = agent.open(name)
        agent.read(descriptor, 512)
        agent.close(descriptor)

        tracer = cluster.tracer
        root = next(
            span for span in tracer.roots()
            if span.layer == "file_agent" and span.op == "read"
        )
        spans = tracer.trace(root.trace_id)
        # Every span of the request shares the root's trace id, and
        # every non-root span has a resolvable parent in the trace.
        ids = {span.span_id for span in spans}
        for span in spans:
            assert span.trace_id == root.trace_id
            if span.parent_id is not None:
                assert span.parent_id in ids
            assert span.end_us is not None
            assert span.end_us >= span.start_us

        fs_span = next(span for span in spans if span.layer == "file_service")
        assert fs_span.annotations["disk_references"] >= 1
        ds_span = next(span for span in spans if span.layer == "disk_service")
        assert ds_span.annotations["track_cache"] == "bypassed"
        disk_span = next(span for span in spans if span.layer == "simdisk")
        assert disk_span.op == "read"

    def test_block_pool_annotation_reports_the_serving_cache_level(self):
        """With only the server cache on, a read the pool can answer is
        annotated block_pool_hits and never reaches the disk service."""
        cluster = RhodosCluster(ClusterConfig(
            tracing=True, client_cache_blocks=0,
        ))
        agent = cluster.machine.file_agent
        name = AttributedName.file("/pooled")
        descriptor = agent.create(name)
        agent.write(descriptor, b"p" * 512)
        agent.close(descriptor)  # write-through leaves the pool warm

        cluster.tracer.reset()
        descriptor = agent.open(name)
        agent.read(descriptor, 256)
        agent.close(descriptor)

        root = next(
            span for span in cluster.tracer.roots()
            if span.layer == "file_agent" and span.op == "read"
        )
        fs_span = next(
            span for span in cluster.tracer.trace(root.trace_id)
            if span.layer == "file_service"
        )
        assert fs_span.annotations["block_pool_hits"] >= 1
        assert fs_span.annotations["disk_references"] == 0

    def test_cache_hit_stops_chain_at_the_agent(self):
        """A warm agent-cache read never leaves the client machine, and
        the trace shows exactly that."""
        cluster = RhodosCluster(ClusterConfig(tracing=True))
        agent = cluster.machine.file_agent
        name = AttributedName.file("/warm")
        descriptor = agent.create(name)
        agent.write(descriptor, b"w" * 512)
        agent.close(descriptor)

        descriptor = agent.open(name)
        agent.read(descriptor, 100)  # populate the agent cache
        cluster.tracer.reset()
        agent.read(descriptor, 100)  # same block: served from the cache
        agent.close(descriptor)

        root = next(
            span for span in cluster.tracer.roots()
            if span.layer == "file_agent" and span.op == "read"
        )
        assert cluster.tracer.layer_path(root.trace_id) == ["file_agent"]
        assert root.annotations["agent_cache_hits"] >= 1

    def test_tracing_disabled_is_the_default_and_records_nothing(self):
        cluster = RhodosCluster(ClusterConfig())
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/quiet"))
        agent.write(descriptor, b"data")
        agent.close(descriptor)
        assert cluster.tracer.enabled is False
        assert cluster.tracer.spans() == []

    def test_traces_are_deterministic_across_identical_runs(self):
        def run():
            cluster = uncached_cluster()
            agent = cluster.machine.file_agent
            descriptor = agent.create(AttributedName.file("/det"))
            agent.write(descriptor, b"d" * 2048)
            agent.close(descriptor)
            descriptor = agent.open(AttributedName.file("/det"))
            agent.read(descriptor, 1024)
            agent.close(descriptor)
            return [
                (s.span_id, s.parent_id, s.trace_id, s.layer, s.op,
                 s.start_us, s.end_us, tuple(sorted(
                     (k, v) for k, v in s.annotations.items())))
                for s in cluster.tracer.spans()
            ]

        assert run() == run()


class TestTransactionAndRpcSpans:
    def test_commit_produces_a_transactions_root_span(self):
        cluster = RhodosCluster(ClusterConfig(tracing=True))
        host = cluster.machine.transactions
        tid = host.tbegin()
        descriptor = host.tcreate(tid, AttributedName.file("/txn"))
        host.twrite(tid, descriptor, b"committed")
        host.tend(tid)
        commit_spans = [
            span for span in cluster.tracer.spans()
            if span.layer == "transactions" and span.op == "commit"
        ]
        assert commit_spans
        assert all(span.end_us is not None for span in commit_spans)

    def test_rpc_transmit_spans_carry_outcome(self):
        from repro.rpc.bus import FaultProfile

        cluster = RhodosCluster(ClusterConfig(
            tracing=True, fault_profile=FaultProfile(), seed=7,
        ))
        agent = cluster.machine.file_agent
        descriptor = agent.create(AttributedName.file("/remote"))
        agent.write(descriptor, b"over the wire")
        agent.close(descriptor)
        rpc_spans = [
            span for span in cluster.tracer.spans() if span.layer == "rpc"
        ]
        assert rpc_spans
        assert all(
            span.annotations["outcome"] in {"ok", "request_lost", "reply_lost"}
            for span in rpc_spans
        )
