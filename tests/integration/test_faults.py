"""Fault-injection integration: idempotency and replication under failures."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.rpc.bus import FaultProfile
from repro.simdisk.geometry import DiskGeometry


def checksum_state(cluster, name, size):
    agent = cluster.machine.file_agent
    descriptor = agent.open(name)
    data = agent.read(descriptor, size)
    agent.close(descriptor)
    return data


class TestIdempotencyUnderMessageFaults:
    """E12: 'repetition in RHODOS does not produce any uncertain effect'."""

    def run_workload(self, profile, seed=0):
        cluster = RhodosCluster(
            ClusterConfig(
                fault_profile=profile,
                seed=seed,
                geometry=DiskGeometry.small(),
                client_cache_blocks=0,  # every op really goes to the wire
            )
        )
        agent = cluster.machine.file_agent
        name = AttributedName.file("/target")
        descriptor = agent.create(name)
        for index in range(20):
            agent.pwrite(descriptor, bytes([index]) * 97, index * 131)
        agent.close(descriptor)
        descriptor = agent.open(name)
        data = agent.read(descriptor, 20 * 131 + 97)
        agent.close(descriptor)
        return data, cluster

    def test_final_state_identical_with_and_without_faults(self):
        clean, _ = self.run_workload(FaultProfile.reliable())
        for seed in range(3):
            faulty, cluster = self.run_workload(
                FaultProfile(
                    request_loss=0.15, reply_loss=0.15, duplication=0.15
                ),
                seed=seed,
            )
            assert faulty == clean
            assert cluster.metrics.get("rpc.retransmissions") > 0

    def test_duplicated_executions_really_happened(self):
        _, cluster = self.run_workload(FaultProfile(duplication=0.3), seed=1)
        assert cluster.metrics.get("rpc.duplicated_executions") > 0


class TestReplicationUnderVolumeCrash:
    def test_service_continues_through_rolling_crashes(self):
        cluster = RhodosCluster(
            ClusterConfig(n_disks=3, geometry=DiskGeometry.small())
        )
        name = AttributedName.file("/replicated")
        cluster.replication.create(name, degree=3)
        cluster.replication.write(name, 0, b"generation-0")
        for generation in range(1, 3):
            crash_volume = generation % 3
            cluster.disks[crash_volume].crash()
            payload = f"generation-{generation}".encode()
            cluster.replication.write(name, 0, payload)
            assert cluster.replication.read(name, 0, len(payload)) == payload
            cluster.disks[crash_volume].repair()
            cluster.file_servers[crash_volume].recover()
            cluster.replication.resync(name)
        assert cluster.replication.live_replicas(name) == 3


class TestBadSectors:
    def test_stable_storage_survives_bad_sectors_on_one_mirror(self):
        cluster = RhodosCluster(ClusterConfig(geometry=DiskGeometry.small()))
        agent = cluster.machine.file_agent
        name = AttributedName.file("/vital")
        descriptor = agent.create(name)
        agent.write(descriptor, b"vital structural info")
        agent.close(descriptor)
        cluster.flush_all()
        stable = cluster.disk_servers[0].stable
        # Corrupt the first 64 sectors of mirror A.
        for sector in range(64):
            stable.mirror_a.faults.mark_bad(sector)
        # Reads fall back to mirror B transparently.
        system_name = cluster.naming.resolve_path("/vital")
        fit_key = f"ext:{system_name.fit_address}:1"
        assert stable.get(fit_key) is not None
