"""End-to-end flows across every layer of the facility."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry


@pytest.fixture
def cluster():
    return RhodosCluster(ClusterConfig(n_machines=2, n_disks=2))


class TestBasicFileLifecycle:
    def test_create_write_reopen_read_delete(self, cluster):
        agent = cluster.machine.file_agent
        name = AttributedName.file("/project/report.txt", owner="raj")
        descriptor = agent.create(name)
        agent.write(descriptor, b"chapter one\n")
        agent.write(descriptor, b"chapter two\n")
        agent.close(descriptor)

        descriptor = agent.open(AttributedName.file(owner="raj"))
        assert agent.read(descriptor, 100) == b"chapter one\nchapter two\n"
        agent.close(descriptor)
        agent.delete(name)
        from repro.common.errors import NameNotFoundError

        with pytest.raises(NameNotFoundError):
            agent.open(name)

    def test_cross_machine_visibility_after_close(self, cluster):
        """Close flushes the writer's delayed writes, so a reader on
        another machine sees them (session semantics)."""
        writer = cluster.machines[0].file_agent
        reader = cluster.machines[1].file_agent
        name = AttributedName.file("/shared/doc")
        descriptor = writer.create(name)
        writer.write(descriptor, b"v1 content")
        writer.close(descriptor)
        other = reader.open(name)
        assert reader.read(other, 10) == b"v1 content"
        reader.close(other)

    def test_mixed_transaction_and_basic_usage(self, cluster):
        """A file written transactionally is readable as a basic file
        afterwards — 'at any moment a file can be used either as a basic
        file or as a transaction file' (section 2.2)."""
        host = cluster.machine.transactions
        agent = cluster.machine.file_agent
        name = AttributedName.file("/ledger")
        tid = host.tbegin()
        descriptor = host.tcreate(tid, name)
        host.twrite(tid, descriptor, b"committed ledger")
        host.tend(tid)
        basic = agent.open(name)
        assert agent.read(basic, 16) == b"committed ledger"
        agent.close(basic)


class TestFullStackDurability:
    def test_everything_survives_crash_recover(self, cluster):
        agent = cluster.machine.file_agent
        host = cluster.machine.transactions
        basic_name = AttributedName.file("/basic")
        txn_name = AttributedName.file("/transactional")

        descriptor = agent.create(basic_name)
        agent.write(descriptor, b"basic data")
        agent.close(descriptor)

        tid = host.tbegin()
        descriptor = host.tcreate(tid, txn_name)
        host.twrite(tid, descriptor, b"txn data")
        host.tend(tid)

        cluster.flush_all()
        cluster.crash_volume(0)
        cluster.recover_volume(0)

        descriptor = agent.open(basic_name)
        assert agent.read(descriptor, 10) == b"basic data"
        agent.close(descriptor)
        descriptor = agent.open(txn_name)
        assert agent.read(descriptor, 8) == b"txn data"
        agent.close(descriptor)

    def test_naming_database_stored_in_a_rhodos_file(self, cluster):
        """The naming service's own database round-trips through the
        facility it names."""
        agent = cluster.machine.file_agent
        for index in range(5):
            descriptor = agent.create(AttributedName.file(f"/f{index}"))
            agent.write(descriptor, bytes([index]))
            agent.close(descriptor)
        blob = cluster.naming.to_bytes()
        meta = agent.create(AttributedName.file("/etc/naming.db"))
        agent.write(meta, blob)
        agent.close(meta)

        meta = agent.open(AttributedName.file("/etc/naming.db"))
        restored_blob = agent.read(meta, 10**6)
        from repro.naming.service import NamingService

        restored = NamingService.from_bytes(restored_blob)
        assert restored.resolve_path("/f3") == cluster.naming.resolve_path("/f3")


class TestManyFilesManyMachines:
    def test_interleaved_writers_on_distinct_files(self, cluster):
        agents = [machine.file_agent for machine in cluster.machines]
        descriptors = []
        for index, agent in enumerate(agents):
            descriptor = agent.create(AttributedName.file(f"/m{index}/file"))
            descriptors.append((agent, descriptor, index))
        for round_number in range(5):
            for agent, descriptor, index in descriptors:
                agent.write(descriptor, bytes([index]) * 100)
        for agent, descriptor, index in descriptors:
            agent.lseek(descriptor, 0)
            assert agent.read(descriptor, 500) == bytes([index]) * 500
            agent.close(descriptor)

    def test_hundred_small_files(self, cluster):
        agent = cluster.machine.file_agent
        for index in range(100):
            descriptor = agent.create(AttributedName.file(f"/many/{index}"))
            agent.write(descriptor, f"file {index}".encode())
            agent.close(descriptor)
        for index in (0, 42, 99):
            descriptor = agent.open(AttributedName.file(f"/many/{index}"))
            assert agent.read(descriptor, 32) == f"file {index}".encode()
            agent.close(descriptor)
        assert len(cluster.naming.list_directory("/many")) == 100
