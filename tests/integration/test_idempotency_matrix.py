"""The idempotency matrix: every fault combination x several seeds.

The paper's statelessness argument (section 3/5) is that all file
service requests are positional, so a client may freely retransmit:
"repetition in RHODOS does not produce any uncertain effect".  This
suite drives one fixed file-agent script through the message bus under
every combination of request loss, reply loss and duplication, across
several RNG seeds, and requires the named files' final contents to be
byte-identical to a fault-free run — i.e. independent of the fault
schedule.

Comparison is by named-file content, not whole-volume state: a
duplicated ``create`` legitimately leaks an orphan file server-side
(the client binds only one of the two system names), which is a space
leak, not a correctness violation — fsck reports it as a warning.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.rpc.bus import FaultProfile
from repro.simdisk.geometry import DiskGeometry

#: The matrix rows: each single fault alone, pairs, and all three at
#: once.  Rates are high enough that every run really exercises the
#: retransmission machinery (asserted below, so passing is not vacuous).
PROFILES = {
    "request-loss": FaultProfile(request_loss=0.25),
    "reply-loss": FaultProfile(reply_loss=0.25),
    "duplication": FaultProfile(duplication=0.25),
    "request+reply": FaultProfile(request_loss=0.15, reply_loss=0.15),
    "reply+duplication": FaultProfile(reply_loss=0.15, duplication=0.15),
    "all-three": FaultProfile(
        request_loss=0.12, reply_loss=0.12, duplication=0.12
    ),
}

SEEDS = (0, 1, 2)

#: (path, final content) for every named file the script leaves behind.
_FILES = ("/m/alpha", "/m/beta", "/m/gamma")


def run_script(profile, seed):
    """One fixed client script; returns {path: final bytes} plus metrics."""
    cluster = RhodosCluster(
        ClusterConfig(
            n_disks=2,
            geometry=DiskGeometry.small(),
            fault_profile=profile,
            seed=seed,
            client_cache_blocks=0,  # every operation goes over the bus
        )
    )
    agent = cluster.machine.file_agent
    names = {path: AttributedName.file(path) for path in _FILES}
    # Spread the files over both volumes so two endpoints are exercised.
    alpha = agent.create(names["/m/alpha"], volume_id=0)
    beta = agent.create(names["/m/beta"], volume_id=1)
    gamma = agent.create(names["/m/gamma"], volume_id=0)
    # Interleaved positional writes: appends, overlapping overwrites,
    # and a rewrite of the same range with different bytes (the case
    # where executing a stale duplicate *after* the newer write would
    # corrupt state — the bus only duplicates back-to-back, which is
    # the at-least-once semantics the design argues is safe).
    for index in range(12):
        agent.pwrite(alpha, bytes([index + 1]) * 97, index * 131)
        agent.pwrite(beta, bytes([0x40 + index]) * 53, index * 47)
    agent.pwrite(alpha, b"X" * 200, 100)  # overwrite spanning old writes
    agent.pwrite(gamma, b"g" * 700, 0)
    agent.pwrite(gamma, b"G" * 300, 350)  # punch a hole in the middle
    for descriptor in (alpha, beta, gamma):
        agent.close(descriptor)
    # Read everything back through fresh descriptors.
    contents = {}
    for path, name in names.items():
        descriptor = agent.open(name)
        size = agent.get_attribute(descriptor).file_size
        contents[path] = agent.pread(descriptor, size, 0)
        agent.close(descriptor)
    return contents, cluster.metrics


class TestIdempotencyMatrix:
    """Final state must be independent of the fault schedule."""

    @pytest.fixture(scope="class")
    def baseline(self):
        contents, _ = run_script(FaultProfile.reliable(), seed=0)
        assert all(content for content in contents.values())
        return contents

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "label", sorted(PROFILES), ids=sorted(PROFILES)
    )
    def test_contents_match_fault_free_run(self, baseline, label, seed):
        profile = PROFILES[label]
        contents, metrics = run_script(profile, seed=seed)
        for path in _FILES:
            assert contents[path] == baseline[path], (
                f"file {path} diverged under profile {label!r} with "
                f"seed {seed} — the fault schedule leaked into the "
                f"final state"
            )
        # The run must actually have injected faults, or the pass is
        # vacuous for this (profile, seed) cell.
        injected = (
            metrics.get("rpc.requests_lost")
            + metrics.get("rpc.replies_lost")
            + metrics.get("rpc.duplicated_executions")
        )
        assert injected > 0, f"profile {label!r} seed {seed} injected nothing"

    def test_baseline_is_seed_independent(self, baseline):
        """Without faults, the seed must not matter at all."""
        contents, _ = run_script(FaultProfile.reliable(), seed=99)
        assert contents == baseline

    def test_timeout_error_names_the_fault_seed(self):
        """A run that exhausts its retransmission budget must name the
        bus seed in the failure, so the schedule can be replayed."""
        from repro.rpc.bus import MessageBus
        from repro.rpc.endpoint import RpcClient, RpcServer
        from repro.common.clock import SimClock
        from repro.common.errors import RpcTimeoutError
        from repro.common.metrics import Metrics

        bus = MessageBus(
            SimClock(),
            Metrics(),
            FaultProfile(request_loss=0.9),
            seed=1234,
        )
        server = RpcServer(bus, "victim")
        server.expose("ping", lambda payload: payload)
        client = RpcClient(bus, max_attempts=2)
        with pytest.raises(RpcTimeoutError, match="seed 1234"):
            for _ in range(200):  # 0.9 loss: two attempts soon both fail
                client.call("victim", "ping", b"x")
