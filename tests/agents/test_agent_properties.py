"""Property test: the file agent's client cache against an oracle.

Random sequences of pwrite/pread/flush/close/reopen through the agent
must behave exactly like a plain bytearray, regardless of cache size
(including pathological capacities that force constant eviction).
"""

from hypothesis import given, settings, strategies as st

from repro.agents.file_agent import FileAgent
from repro.agents.routing import DirectRouter
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from tests.conftest import build_file_server

SPAN = 3 * BLOCK_SIZE  # the byte range ops play within


@st.composite
def agent_ops(draw):
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(["write", "write", "read", "flush", "reopen"])
        )
        offset = draw(st.integers(min_value=0, max_value=SPAN))
        length = draw(st.integers(min_value=1, max_value=BLOCK_SIZE))
        fill = draw(st.integers(min_value=1, max_value=255))
        ops.append((kind, offset, length, fill))
    return ops


def run_against_oracle(ops, cache_blocks):
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    agent = FileAgent(
        "m0",
        naming,
        DirectRouter({0: server}),
        clock,
        metrics,
        cache_blocks=cache_blocks,
    )
    name = AttributedName.file("/oracle")
    descriptor = agent.create(name)
    oracle = bytearray()
    for kind, offset, length, fill in ops:
        if kind == "write":
            payload = bytes([fill]) * length
            agent.pwrite(descriptor, payload, offset)
            if len(oracle) < offset + length:
                oracle.extend(bytes(offset + length - len(oracle)))
            oracle[offset : offset + length] = payload
        elif kind == "read":
            got = agent.pread(descriptor, length, offset)
            expected = bytes(oracle[offset : offset + length])
            assert got == expected, (
                f"read({offset},{length}) -> {got[:20]!r} != {expected[:20]!r}"
            )
        elif kind == "flush":
            agent.flush()
        elif kind == "reopen":
            agent.close(descriptor)
            descriptor = agent.open(name)
    # Final state: everything readable and correct.
    agent.close(descriptor)
    descriptor = agent.open(name)
    assert agent.pread(descriptor, len(oracle) + 64, 0) == bytes(oracle)
    agent.close(descriptor)


class TestFileAgentOracle:
    @given(agent_ops())
    @settings(max_examples=30, deadline=None)
    def test_normal_cache(self, ops):
        run_against_oracle(ops, cache_blocks=64)

    @given(agent_ops())
    @settings(max_examples=30, deadline=None)
    def test_tiny_cache_thrashes_but_stays_correct(self, ops):
        run_against_oracle(ops, cache_blocks=1)

    @given(agent_ops())
    @settings(max_examples=20, deadline=None)
    def test_no_cache(self, ops):
        run_against_oracle(ops, cache_blocks=0)
