"""Routers: direct and RPC-backed, same surface."""

import pytest

from repro.agents.routing import (
    DirectRouter,
    FILE_SERVER_OPS,
    RpcRouter,
    expose_file_server,
)
from repro.common.clock import SimClock
from repro.common.errors import FileNotFoundError_, FileServiceError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.rpc.bus import MessageBus
from repro.rpc.endpoint import RpcClient, RpcServer
from tests.conftest import build_file_server


def build_direct(n_volumes=2):
    clock, metrics = SimClock(), Metrics()
    servers = {
        volume: build_file_server(clock, metrics, volume_id=volume)
        for volume in range(n_volumes)
    }
    return DirectRouter(servers), servers, clock, metrics


def build_rpc(n_volumes=2):
    clock, metrics = SimClock(), Metrics()
    bus = MessageBus(clock, metrics)
    servers = {}
    addresses = {}
    for volume in range(n_volumes):
        server = build_file_server(clock, metrics, volume_id=volume)
        address = f"fs.{volume}"
        expose_file_server(server, RpcServer(bus, address))
        servers[volume] = server
        addresses[volume] = address
    return RpcRouter(RpcClient(bus), addresses), servers, clock, metrics


@pytest.mark.parametrize("builder", [build_direct, build_rpc])
class TestRouterSurface:
    def test_create_routes_to_volume(self, builder):
        router, servers, _, _ = builder()
        name = router.create(1)
        assert name.volume_id == 1
        assert servers[1].exists(name)

    def test_read_write_round_trip(self, builder):
        router, _, _, _ = builder()
        name = router.create(0)
        router.open(name)
        assert router.write(name, 0, b"via router") == 10
        assert router.read(name, 0, 10) == b"via router"
        assert router.get_attribute(name).file_size == 10
        router.close(name)

    def test_delete(self, builder):
        router, servers, _, _ = builder()
        name = router.create(0)
        router.delete(name)
        assert not servers[0].exists(name)

    def test_volume_ids(self, builder):
        router, _, _, _ = builder()
        assert router.volume_ids() == [0, 1]

    def test_unknown_volume(self, builder):
        router, _, _, _ = builder()
        with pytest.raises(FileServiceError):
            router.read(SystemName(9, 0, 1), 0, 1)

    def test_remote_errors_propagate(self, builder):
        router, _, _, _ = builder()
        stale = SystemName(0, 0, 999_999)
        with pytest.raises(FileNotFoundError_):
            router.open(stale)

    def test_flush_volume(self, builder):
        router, servers, _, metrics = builder()
        name = router.create(0)
        router.write(name, 0, b"x")
        router.flush_volume(0)
        assert metrics.get("file_server.0.flushes") >= 1


class TestRpcSpecifics:
    def test_calls_cross_the_bus(self):
        router, _, _, metrics = build_rpc()
        name = router.create(0)
        router.write(name, 0, b"x")
        assert metrics.get("rpc.messages") >= 2

    def test_ops_table_complete(self):
        """Every op the router calls must be in the exposure table."""
        for op in ("create", "open", "close", "delete", "read", "write",
                   "get_attribute", "flush"):
            assert op in FILE_SERVER_OPS
