"""The device agent and TTY objects."""

import pytest

from repro.common.errors import BadDescriptorError, NamingError
from repro.common.ids import DEVICE_DESCRIPTOR_LIMIT
from repro.common.metrics import Metrics
from repro.agents.devices import DeviceAgent, SimTTY
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService


@pytest.fixture
def agent():
    return DeviceAgent("m0", NamingService(), Metrics())


class TestSimTTY:
    def test_write_appends_output(self):
        tty = SimTTY("m0:console")
        tty.write(b"hello ")
        tty.write(b"world")
        assert bytes(tty.output) == b"hello world"

    def test_read_consumes_input(self):
        tty = SimTTY("m0:kbd")
        tty.feed_input(b"abcdef")
        assert tty.read(3) == b"abc"
        assert tty.read(10) == b"def"
        assert tty.read(5) == b""


class TestStandardStreams:
    def test_preopened_descriptors(self, agent):
        assert agent.is_open(0)
        assert agent.is_open(1)
        assert agent.is_open(2)

    def test_console_write_via_stdout(self, agent):
        agent.write(1, b"out")
        assert bytes(agent.console.output) == b"out"

    def test_console_read_via_stdin(self, agent):
        agent.console.feed_input(b"typed")
        assert agent.read(0, 5) == b"typed"

    def test_standard_streams_cannot_close(self, agent):
        for descriptor in (0, 1, 2):
            with pytest.raises(BadDescriptorError):
                agent.close(descriptor)


class TestOpenClose:
    def test_open_by_attributed_name(self, agent):
        tty = SimTTY("m0:serial1")
        agent.register_device(tty, AttributedName.tty("serial1"))
        descriptor = agent.open(AttributedName.tty("serial1"))
        assert 3 <= descriptor < DEVICE_DESCRIPTOR_LIMIT
        agent.write(descriptor, b"data")
        assert bytes(tty.output) == b"data"

    def test_descriptors_below_limit(self, agent):
        """Paper section 3: device descriptors < 100 000."""
        tty = SimTTY("m0:serial2")
        agent.register_device(tty, AttributedName.tty("serial2"))
        descriptors = [agent.open(AttributedName.tty("serial2")) for _ in range(5)]
        assert all(d < DEVICE_DESCRIPTOR_LIMIT for d in descriptors)
        assert len(set(descriptors)) == 5

    def test_open_file_name_rejected(self, agent):
        with pytest.raises(NamingError):
            agent.open(AttributedName.file("/not-a-device"))

    def test_open_unattached_device_rejected(self, agent):
        agent.naming.rebind(AttributedName.tty("ghost"), "other-machine:ghost")
        with pytest.raises(NamingError):
            agent.open(AttributedName.tty("ghost"))

    def test_close_releases(self, agent):
        tty = SimTTY("m0:s3")
        agent.register_device(tty, AttributedName.tty("s3"))
        descriptor = agent.open(AttributedName.tty("s3"))
        agent.close(descriptor)
        with pytest.raises(BadDescriptorError):
            agent.write(descriptor, b"x")

    def test_double_close_rejected(self, agent):
        tty = SimTTY("m0:s4")
        agent.register_device(tty, AttributedName.tty("s4"))
        descriptor = agent.open(AttributedName.tty("s4"))
        agent.close(descriptor)
        with pytest.raises(BadDescriptorError):
            agent.close(descriptor)

    def test_unknown_descriptor(self, agent):
        with pytest.raises(BadDescriptorError):
            agent.read(999, 1)
