"""The process model: environment, redirection, process_twin."""

import pytest

from repro.agents.devices import DeviceAgent
from repro.agents.file_agent import FileAgent
from repro.agents.process import Process
from repro.agents.routing import DirectRouter
from repro.common.clock import SimClock
from repro.common.errors import BadDescriptorError, ProcessError
from repro.common.ids import (
    REDIRECTED_STDERR,
    REDIRECTED_STDIN,
    REDIRECTED_STDOUT,
)
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from tests.conftest import build_file_server


@pytest.fixture
def setup():
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    device_agent = DeviceAgent("m0", naming, metrics)
    file_agent = FileAgent(
        "m0", naming, DirectRouter({0: server}), clock, metrics
    )
    return Process(device_agent, file_agent), device_agent, file_agent, server


class TestEnvironment:
    def test_default_env(self, setup):
        process, *_ = setup
        assert process.env == {"stdin": 0, "stdout": 1, "stderr": 2}

    def test_stdio_to_console(self, setup):
        process, device_agent, *_ = setup
        process.stdout_write(b"to console")
        assert bytes(device_agent.console.output) == b"to console"

    def test_stdin_from_console(self, setup):
        process, device_agent, *_ = setup
        device_agent.console.feed_input(b"keys")
        assert process.stdin_read(4) == b"keys"


class TestRedirection:
    def test_stdout_redirect_sets_100001(self, setup):
        """Paper section 3, verbatim descriptor values."""
        process, _, file_agent, server = setup
        fd = process.create(AttributedName.file("/log"))
        process.redirect_stdout(fd)
        assert process.env["stdout"] == REDIRECTED_STDOUT == 100_001
        process.stdout_write(b"logged")
        file_agent.flush()
        assert server.read(file_agent.system_name(fd), 0, 6) == b"logged"

    def test_stdin_redirect_sets_100002(self, setup):
        process, _, file_agent, server = setup
        fd = process.create(AttributedName.file("/input"))
        process.write(fd, b"scripted input")
        file_agent.lseek(fd, 0)
        process.redirect_stdin(fd)
        assert process.env["stdin"] == REDIRECTED_STDIN == 100_002
        assert process.stdin_read(8) == b"scripted"

    def test_stderr_redirect_sets_100003(self, setup):
        process, *_ = setup
        fd = process.create(AttributedName.file("/errors"))
        process.redirect_stderr(fd)
        assert process.env["stderr"] == REDIRECTED_STDERR == 100_003

    def test_redirect_to_device_rejected(self, setup):
        process, *_ = setup
        with pytest.raises(BadDescriptorError):
            process.redirect_stdout(1)


class TestProcessTwin:
    def test_child_inherits_descriptors(self, setup):
        """Mediumweight children inherit the parent's object descriptors."""
        process, _, file_agent, _ = setup
        fd = process.create(AttributedName.file("/shared"))
        process.write(fd, b"parent wrote")
        child = process.process_twin()
        file_agent.lseek(fd, 0)
        assert child.read(fd, 12) == b"parent wrote"

    def test_child_shares_descriptor_table(self, setup):
        process, *_ = setup
        child = process.process_twin()
        fd = child.create(AttributedName.file("/from-child"))
        assert fd in process._owned_descriptors  # shared data space

    def test_child_gets_fresh_pid(self, setup):
        process, *_ = setup
        child = process.process_twin()
        assert child.pid != process.pid
        assert child.parent is process

    def test_twin_forbidden_with_live_transactions(self, setup):
        """Paper section 3: inheritance of transaction descriptors
        threatens serializability, so only basic-file processes may
        invoke process-twin."""
        process, *_ = setup
        process.note_transaction_started(42)
        with pytest.raises(ProcessError):
            process.process_twin()
        process.note_transaction_finished(42)
        process.process_twin()  # allowed again

    def test_twin_sees_parents_env_at_fork(self, setup):
        process, *_ = setup
        fd = process.create(AttributedName.file("/out"))
        process.redirect_stdout(fd)
        child = process.process_twin()
        assert child.env["stdout"] == REDIRECTED_STDOUT

    def test_grandchildren(self, setup):
        process, *_ = setup
        child = process.process_twin()
        grandchild = child.process_twin()
        assert grandchild.pid not in (process.pid, child.pid)
