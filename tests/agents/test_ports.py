"""Communication ports between machines."""

import pytest

from repro.agents.ports import connect_machines
from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.simdisk.geometry import DiskGeometry


@pytest.fixture
def linked():
    cluster = RhodosCluster(
        ClusterConfig(n_machines=2, geometry=DiskGeometry.small())
    )
    agent_a = cluster.machines[0].device_agent
    agent_b = cluster.machines[1].device_agent
    fd_a, fd_b = connect_machines(
        "serial0", agent_a, agent_b, cluster.clock, cluster.metrics
    )
    return cluster, agent_a, agent_b, fd_a, fd_b


class TestPorts:
    def test_bytes_flow_a_to_b(self, linked):
        cluster, agent_a, agent_b, fd_a, fd_b = linked
        agent_a.write(fd_a, b"hello other machine")
        assert agent_b.read(fd_b, 64) == b"hello other machine"

    def test_full_duplex(self, linked):
        cluster, agent_a, agent_b, fd_a, fd_b = linked
        agent_a.write(fd_a, b"ping")
        agent_b.write(fd_b, b"pong")
        assert agent_b.read(fd_b, 4) == b"ping"
        assert agent_a.read(fd_a, 4) == b"pong"

    def test_reads_consume(self, linked):
        cluster, agent_a, agent_b, fd_a, fd_b = linked
        agent_a.write(fd_a, b"abcdef")
        assert agent_b.read(fd_b, 3) == b"abc"
        assert agent_b.read(fd_b, 10) == b"def"
        assert agent_b.read(fd_b, 1) == b""

    def test_transfer_charges_simulated_time(self, linked):
        cluster, agent_a, _, fd_a, _ = linked
        before = cluster.clock.now_us
        agent_a.write(fd_a, b"x" * 1000)
        assert cluster.clock.now_us - before >= 8000  # ~8.7 us/byte

    def test_capacity_backpressure(self):
        cluster = RhodosCluster(
            ClusterConfig(n_machines=2, geometry=DiskGeometry.small())
        )
        fd_a, fd_b = connect_machines(
            "tiny",
            cluster.machines[0].device_agent,
            cluster.machines[1].device_agent,
            cluster.clock,
            cluster.metrics,
            capacity=8,
        )
        wrote = cluster.machines[0].device_agent.write(fd_a, b"0123456789")
        assert wrote == 8  # two bytes refused: channel full
        assert cluster.machines[1].device_agent.read(fd_b, 20) == b"01234567"

    def test_descriptors_are_device_class(self, linked):
        _, _, _, fd_a, fd_b = linked
        assert fd_a < 100_000 and fd_b < 100_000

    def test_process_io_over_a_port(self, linked):
        """Ports behave as ordinary devices for processes too."""
        cluster, agent_a, agent_b, fd_a, fd_b = linked
        process = cluster.machines[0].spawn_process()
        process.write(fd_a, b"from a process")
        assert agent_b.read(fd_b, 64) == b"from a process"

    def test_metrics_account_both_directions(self, linked):
        cluster, agent_a, agent_b, fd_a, fd_b = linked
        agent_a.write(fd_a, b"12345")
        agent_b.read(fd_b, 5)
        assert cluster.metrics.get("port.serial0.a2b.bytes_sent") == 5
        assert cluster.metrics.get("port.serial0.a2b.bytes_received") == 5
