"""The file agent: descriptors, positions, client caching, delayed write."""

import os

import pytest

from repro.agents.file_agent import FileAgent
from repro.agents.routing import DirectRouter
from repro.common.clock import SimClock
from repro.common.errors import BadDescriptorError, FileSizeError
from repro.common.ids import DEVICE_DESCRIPTOR_LIMIT
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from tests.conftest import build_file_server


def build_agent(cache_blocks=64):
    clock, metrics = SimClock(), Metrics()
    server = build_file_server(clock, metrics)
    naming = NamingService(metrics)
    agent = FileAgent(
        "m0",
        naming,
        DirectRouter({0: server}),
        clock,
        metrics,
        cache_blocks=cache_blocks,
    )
    return agent, server, metrics


class TestDescriptors:
    def test_file_descriptors_above_limit(self):
        """Paper section 3: file descriptors > 100 000."""
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        assert descriptor > DEVICE_DESCRIPTOR_LIMIT

    def test_unknown_descriptor_rejected(self):
        agent, _, _ = build_agent()
        with pytest.raises(BadDescriptorError):
            agent.read(123456, 1)

    def test_close_releases_descriptor(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.close(descriptor)
        with pytest.raises(BadDescriptorError):
            agent.read(descriptor, 1)

    def test_open_descriptors_listing(self):
        agent, _, _ = build_agent()
        d1 = agent.create(AttributedName.file("/a"))
        d2 = agent.create(AttributedName.file("/b"))
        assert agent.open_descriptors() == [d1, d2]


class TestPositionSemantics:
    def test_read_write_advance_position(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"hello")
        assert agent.position(descriptor) == 5
        agent.lseek(descriptor, 0)
        assert agent.read(descriptor, 2) == b"he"
        assert agent.position(descriptor) == 2

    def test_pread_pwrite_do_not_move_position(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"0123456789")
        agent.lseek(descriptor, 4)
        assert agent.pread(descriptor, 3, 0) == b"012"
        assert agent.position(descriptor) == 4
        agent.pwrite(descriptor, b"XY", 8)
        assert agent.position(descriptor) == 4
        assert agent.pread(descriptor, 10, 0) == b"01234567XY"

    def test_lseek_whences(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"0123456789")
        assert agent.lseek(descriptor, 3, os.SEEK_SET) == 3
        assert agent.lseek(descriptor, 2, os.SEEK_CUR) == 5
        assert agent.lseek(descriptor, -1, os.SEEK_END) == 9
        assert agent.read(descriptor, 1) == b"9"

    def test_negative_seek_rejected(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        with pytest.raises(FileSizeError):
            agent.lseek(descriptor, -1, os.SEEK_SET)

    def test_independent_positions_per_descriptor(self):
        agent, _, _ = build_agent()
        d1 = agent.create(AttributedName.file("/a"))
        agent.write(d1, b"abcdef")
        agent.close(d1)
        d2 = agent.open(AttributedName.file("/a"))
        d3 = agent.open(AttributedName.file("/a"))
        assert agent.read(d2, 3) == b"abc"
        assert agent.read(d3, 2) == b"ab"  # own position


class TestClientCache:
    def test_reread_served_from_cache(self):
        agent, _, metrics = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"x" * BLOCK_SIZE)
        agent.pread(descriptor, 100, 0)
        hits_before = metrics.get("file_agent.m0.cache.hits")
        agent.pread(descriptor, 100, 0)
        assert metrics.get("file_agent.m0.cache.hits") == hits_before + 1

    def test_delayed_write_reaches_server_on_close(self):
        agent, server, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"deferred")
        name = agent.system_name(descriptor)
        assert server.read(name, 0, 8) == b""  # not yet written back
        agent.close(descriptor)
        assert server.read(name, 0, 8) == b"deferred"

    def test_flush_without_close(self):
        agent, server, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"flush me")
        agent.flush()
        assert server.read(agent.system_name(descriptor), 0, 8) == b"flush me"

    def test_read_your_own_delayed_writes(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"not yet on server")
        assert agent.pread(descriptor, 17, 0) == b"not yet on server"

    def test_disjoint_writes_in_one_block_do_not_corrupt(self):
        agent, server, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.close(descriptor)
        # Seed the server with known content, bypassing the agent cache.
        name = agent.naming.resolve_path("/a")
        server.write(name, 0, b"a" * 1000)
        descriptor = agent.open(AttributedName.file("/a"))
        agent.pwrite(descriptor, b"X", 10)
        agent.pwrite(descriptor, b"Y", 900)  # disjoint: forces block fetch
        agent.close(descriptor)
        content = server.read(name, 0, 1000)
        assert content[10:11] == b"X"
        assert content[900:901] == b"Y"
        assert content[11:900] == b"a" * 889  # the gap kept server data

    def test_eviction_writes_back(self):
        agent, server, _ = build_agent(cache_blocks=2)
        descriptor = agent.create(AttributedName.file("/a"))
        for block in range(4):
            agent.pwrite(descriptor, b"Z" * 10, block * BLOCK_SIZE)
        name = agent.system_name(descriptor)
        # At least the first two blocks were evicted and written back.
        assert server.read(name, 0, 10) == b"Z" * 10

    def test_invalidate_volume_drops_cached_blocks(self):
        """A crashed volume's blocks must not be served from the client
        cache — the server-side state they describe may be gone."""
        agent, _, metrics = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"x" * BLOCK_SIZE)
        agent.flush()
        agent.pread(descriptor, 100, 0)  # cached, clean
        dropped = agent.invalidate_volume(0)
        assert dropped >= 1
        assert metrics.get("file_agent.m0.cache.invalidations") == dropped
        # Other volumes are untouched (and there is nothing left here).
        assert agent.invalidate_volume(7) == 0
        # The next read refetches from the server, not the dead cache.
        hits_before = metrics.get("file_agent.m0.cache.hits")
        assert agent.pread(descriptor, 100, 0) == b"x" * 100
        assert metrics.get("file_agent.m0.cache.hits") == hits_before

    def test_no_cache_mode_goes_straight_through(self):
        agent, server, metrics = build_agent(cache_blocks=0)
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"direct")
        assert server.read(agent.system_name(descriptor), 0, 6) == b"direct"
        assert metrics.get("file_agent.m0.cache.hits") == 0


class TestAttributesAndDelete:
    def test_get_attribute_sees_delayed_size(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        agent.write(descriptor, b"123456")
        assert agent.get_attribute(descriptor).file_size == 6

    def test_delete_requires_closed(self):
        agent, _, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        with pytest.raises(BadDescriptorError):
            agent.delete(AttributedName.file("/a"))
        agent.close(descriptor)
        agent.delete(AttributedName.file("/a"))

    def test_delete_removes_binding_and_file(self):
        agent, server, _ = build_agent()
        descriptor = agent.create(AttributedName.file("/a"))
        name = agent.system_name(descriptor)
        agent.close(descriptor)
        agent.delete(AttributedName.file("/a"))
        assert not server.exists(name)
        assert AttributedName.file("/a") not in agent.naming
