"""Unit coverage of the access monitor: tasks, edges, chains, recording."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ALL_CELLS_HI,
    AccessMonitor,
    NULL_MONITOR,
    active,
    install,
    uninstall,
)
from repro.analysis import monitor as monitor_module


class TestTasks:
    def test_mainline_is_task_zero(self):
        monitor = AccessMonitor()
        assert monitor.current() == 0
        assert monitor.task_labels[0] == "main"

    def test_open_task_binds_to_opener_by_default(self):
        monitor = AccessMonitor()
        tid = monitor.open_task("child")
        assert (0, tid) in monitor.edges
        assert monitor.current() == tid
        monitor.close_task()
        assert monitor.current() == 0

    def test_bind_false_records_only_the_afters(self):
        monitor = AccessMonitor()
        spawn = monitor.open_task("spawner")
        monitor.close_task()
        with monitor.task("event", after=(spawn,), bind=False) as tid:
            assert monitor.current() == tid
        assert (spawn, tid) in monitor.edges
        assert (0, tid) not in monitor.edges

    def test_rejoin_splits_the_segment(self):
        monitor = AccessMonitor()
        branch = monitor.open_task("branch")
        monitor.close_task()
        joined = monitor.rejoin("join", after=(branch,))
        assert monitor.current() == joined
        assert (0, joined) in monitor.edges  # old segment feeds the new one
        assert (branch, joined) in monitor.edges

    def test_barrier_orders_after_every_existing_task(self):
        monitor = AccessMonitor()
        tasks = []
        for index in range(3):
            tasks.append(monitor.open_task(f"t{index}"))
            monitor.close_task()
        barrier = monitor.rejoin("pre", ())  # split once first
        barrier = monitor.barrier("restart")
        for task in tasks:
            assert (task, barrier) in monitor.edges

    def test_close_never_pops_the_mainline(self):
        monitor = AccessMonitor()
        monitor.close_task()
        monitor.close_task()
        assert monitor.current() == 0

    def test_backward_edge_is_rejected(self):
        monitor = AccessMonitor()
        with pytest.raises(ValueError):
            monitor._edge(3, 1)


class TestChain:
    def test_consecutive_chain_members_get_an_edge(self):
        monitor = AccessMonitor()
        resource = object()
        first = monitor.open_task("a")
        monitor.chain(resource)
        monitor.close_task()
        second = monitor.open_task("b")
        monitor.chain(resource)
        monitor.close_task()
        assert (first, second) in monitor.edges

    def test_parent_resuming_after_child_skips_backward_pair(self):
        monitor = AccessMonitor()
        resource = object()
        child = monitor.open_task("child")
        monitor.chain(resource)
        monitor.close_task()
        # mainline (task 0) touches the chain after its own child did:
        # no backward edge, no exception, chain advances
        monitor.chain(resource)
        later = monitor.open_task("later")
        monitor.chain(resource)
        assert (0, later) in monitor.edges
        assert all(src < dst for src, dst in monitor.edges)
        assert (child, 0) not in monitor.edges

    def test_distinct_names_are_distinct_chains(self):
        monitor = AccessMonitor()
        resource = object()
        first = monitor.open_task("a")
        monitor.chain(resource, name="x")
        monitor.close_task()
        second = monitor.open_task("b")
        monitor.chain(resource, name="y")
        monitor.close_task()
        assert (first, second) not in monitor.edges


class TestCompletions:
    def test_settled_task_is_recorded(self):
        monitor = AccessMonitor()
        completion = object()
        tid = monitor.open_task("finisher")
        monitor.note_settled(completion)
        monitor.close_task()
        assert monitor.settled_task(completion) == tid
        assert monitor.settled_task(object()) is None


class TestRecording:
    def test_intervals_and_kinds(self):
        monitor = AccessMonitor()
        structure = object()
        monitor.read(structure, 3, site="s.read")
        monitor.write(structure, 5, 9, site="s.write")
        monitor.read_all(structure, site="s.scan")
        kinds = [(a.lo, a.hi, a.kind) for a in monitor.accesses]
        assert kinds == [(3, 4, "r"), (5, 9, "w"), (0, ALL_CELLS_HI, "r")]

    def test_duplicate_accesses_dedup_within_a_task(self):
        monitor = AccessMonitor()
        structure = object()
        for _ in range(5):
            monitor.write(structure, 1, site="s.put")
        assert len(monitor.accesses) == 1
        monitor.open_task("other")
        monitor.write(structure, 1, site="s.put")
        assert len(monitor.accesses) == 2

    def test_key_accesses_intern_per_structure_cells(self):
        monitor = AccessMonitor()
        structure = object()
        monitor.key_write(structure, "alpha", name="dir", site="d.put")
        monitor.key_write(structure, "beta", name="dir", site="d.put")
        monitor.key_read(structure, "alpha", name="dir", site="d.get")
        cells = [(a.lo, a.kind) for a in monitor.accesses]
        assert cells == [(0, "w"), (1, "w"), (0, "r")]

    def test_structure_labels_are_deterministic(self):
        monitor = AccessMonitor()
        structure = object()
        monitor.read(structure, 0, name="protection", site="x")
        assert monitor.structure_labels == ["object.protection#0"]

    def test_time_stamps_come_from_now_fn(self):
        ticks = iter(range(10, 100, 10))
        monitor = AccessMonitor(now_fn=lambda: next(ticks))
        structure = object()
        monitor.read(structure, 0, site="x")
        assert monitor.accesses[0].time_us == 10


class TestInstall:
    def test_null_monitor_is_default_and_inert(self):
        assert active() is NULL_MONITOR
        assert not active().enabled
        with active().task("ignored") as tid:
            assert tid == 0
        active().read(object(), 0)
        assert active().rejoin("x") == 0
        assert active().barrier("x") == 0

    def test_install_uninstall_roundtrip(self):
        monitor = AccessMonitor()
        try:
            assert install(monitor) is monitor
            assert active() is monitor
            with pytest.raises(RuntimeError):
                install(AccessMonitor())
        finally:
            uninstall()
        assert monitor_module.active() is NULL_MONITOR
        uninstall()  # idempotent
