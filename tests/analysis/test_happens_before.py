"""Detector semantics on hand-built monitors: what is and isn't a race."""

from __future__ import annotations

import pytest

from repro.analysis import AccessMonitor, HBGraph, detect, report, validate


def two_unordered_writers() -> AccessMonitor:
    """Tasks 1 and 2, siblings under main, both writing cell 5."""
    monitor = AccessMonitor()
    shared = object()
    monitor.open_task("writer-a")
    monitor.write(shared, 5, site="a.put")
    monitor.close_task()
    monitor.open_task("writer-b")
    monitor.write(shared, 5, site="b.put")
    monitor.close_task()
    return monitor


class TestHBGraph:
    def test_direct_and_transitive_order(self):
        graph = HBGraph(4, [(0, 1), (1, 3)])
        assert graph.ordered(0, 1)
        assert graph.ordered(0, 3)  # transitive
        assert graph.ordered(1, 3)
        assert not graph.ordered(1, 2)
        assert graph.ordered(2, 2)  # reflexive

    def test_direction_agnostic(self):
        graph = HBGraph(3, [(0, 2)])
        assert graph.ordered(2, 0) == graph.ordered(0, 2)

    def test_malformed_edge_rejected(self):
        with pytest.raises(ValueError):
            HBGraph(2, [(1, 1)])
        with pytest.raises(ValueError):
            HBGraph(2, [(0, 5)])


class TestDetect:
    def test_unordered_write_write_is_a_race(self):
        monitor = two_unordered_writers()
        findings = detect(monitor)
        assert len(findings) == 1
        finding = findings[0]
        assert {finding.first.site, finding.second.site} == {"a.put", "b.put"}
        assert finding.pairs == 1

    def test_an_edge_between_the_writers_clears_it(self):
        monitor = two_unordered_writers()
        monitor._edge(1, 2)
        assert detect(monitor) == []

    def test_read_read_is_never_a_race(self):
        monitor = AccessMonitor()
        shared = object()
        monitor.open_task("reader-a")
        monitor.read(shared, 5, site="a.get")
        monitor.close_task()
        monitor.open_task("reader-b")
        monitor.read(shared, 5, site="b.get")
        monitor.close_task()
        assert detect(monitor) == []

    def test_disjoint_intervals_do_not_conflict(self):
        monitor = AccessMonitor()
        shared = object()
        monitor.open_task("low")
        monitor.write(shared, 0, 4, site="low.put")
        monitor.close_task()
        monitor.open_task("high")
        monitor.write(shared, 4, 8, site="high.put")
        monitor.close_task()
        assert detect(monitor) == []

    def test_whole_structure_access_overlaps_everything(self):
        monitor = AccessMonitor()
        shared = object()
        monitor.open_task("scanner")
        monitor.read_all(shared, site="scan")
        monitor.close_task()
        monitor.open_task("writer")
        monitor.write(shared, 1_000_000, site="put")
        monitor.close_task()
        assert len(detect(monitor)) == 1

    def test_same_task_conflicts_are_program_ordered(self):
        monitor = AccessMonitor()
        shared = object()
        monitor.write(shared, 5, site="put")
        monitor.read(shared, 5, site="get")
        assert detect(monitor) == []

    def test_pair_count_aggregates_one_signature(self):
        monitor = AccessMonitor()
        shared = object()
        monitor.open_task("writer")
        monitor.write(shared, 0, 10, site="put")
        monitor.close_task()
        for index in range(3):
            monitor.open_task(f"reader{index}")
            monitor.read(shared, index, site="get")
            monitor.close_task()
        findings = detect(monitor)
        assert len(findings) == 1
        assert findings[0].pairs == 3


class TestValidateAndReport:
    def test_clean_monitor_validates_empty(self):
        monitor = two_unordered_writers()
        assert validate(monitor) == []

    def test_time_travel_is_reported(self):
        times = iter([5, 0])
        monitor = AccessMonitor(now_fn=lambda: next(times))
        monitor.open_task("early")  # stamped 5
        monitor.rejoin("later")  # stamped 0: the segment went backward
        problems = validate(monitor)
        assert problems and "back in time" in problems[0]

    def test_report_shape_and_determinism(self):
        monitor = two_unordered_writers()
        first = report(monitor, detect(monitor))
        second = report(monitor, detect(monitor))
        assert first == second
        assert first["tasks"] == 3
        assert first["hb_violations"] == []
        assert len(first["findings"]) == 1
        endpoint = first["findings"][0]["first"]
        assert set(endpoint) == {
            "task", "task_label", "kind", "lo", "hi", "time_us", "site"
        }
