"""End-to-end detector checks through the real concurrent pipeline.

The positive control: racecheck's ``plant`` scenario wires a rogue
``add_done_callback`` callback that mutates the disk server's
protection map from the completion-delivery task while a concurrent
batch reads it — the detector MUST flag it, or it could not be trusted
to clear the real pipeline.  The negative side: the genuine pipeline
and scrubber traffic must come out clean, and byte-identically so.
"""

from __future__ import annotations

import json

from repro.tools import racecheck


class TestPlantedInterference:
    def test_the_plant_is_flagged(self):
        result = racecheck.run_scenario("plant")
        assert result["expect_findings"] is True
        assert result["ok"] is True
        assert result["findings"], "the planted race went undetected"
        finding = result["findings"][0]
        sites = {finding["first"]["site"], finding["second"]["site"]}
        assert "server.record_checksums" in sites
        assert "server.verify_extent" in sites
        assert finding["structure"].startswith("DiskServer.protection")

    def test_plant_endpoints_are_the_rogue_tasks(self):
        result = racecheck.run_scenario("plant")
        finding = result["findings"][0]
        labels = {
            finding["first"]["task_label"],
            finding["second"]["task_label"],
        }
        # one side delivered in an event task, the other a service batch
        assert any("event" in label for label in labels)
        assert any("batch" in label for label in labels)

    def test_no_hb_invariant_violations(self):
        result = racecheck.run_scenario("plant")
        assert result["hb_violations"] == []


class TestRealPipelineIsClean:
    def test_pipeline_scenario_has_no_findings(self):
        result = racecheck.run_scenario("pipeline")
        assert result["findings"] == []
        assert result["hb_violations"] == []
        assert result["ok"] is True
        # the scenario exercised real concurrency, not a trivial run
        assert result["tasks"] > 10
        assert result["accesses"] > 50

    def test_report_is_byte_deterministic(self):
        first = json.dumps(racecheck.run(["plant"]), sort_keys=True)
        second = json.dumps(racecheck.run(["plant"]), sort_keys=True)
        assert first == second
