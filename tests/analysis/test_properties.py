"""Property tests: the happens-before graph is sound by construction.

Whatever sequence of task operations a run performs — opens (bound or
not), closes, rejoins, barriers, resource chains, accesses — the
monitor must come out of it with a graph the detector can trust:
every edge forward (acyclic), stamps non-decreasing along edges,
``validate`` empty, and reachability consistent with the edge list.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import AccessMonitor, HBGraph, detect, validate


@st.composite
def monitor_scripts(draw):
    """A random but *legal* sequence of monitor operations."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        ops.append(
            draw(
                st.sampled_from(
                    ["open", "open_unbound", "close", "rejoin", "barrier",
                     "chain", "read", "write", "tick"]
                )
            )
        )
    return ops


def run_script(ops) -> AccessMonitor:
    clock = {"now": 0}
    monitor = AccessMonitor(now_fn=lambda: clock["now"])
    resources = [object(), object()]
    shared = [object(), object(), object()]
    opened = 0
    for index, op in enumerate(ops):
        if op == "open":
            monitor.open_task(f"t{index}")
            opened += 1
        elif op == "open_unbound":
            # after= any subset of existing tasks: spawn-style ordering
            after = tuple(
                tid for tid in range(len(monitor.task_labels))
                if (index + tid) % 3 == 0
            )
            monitor.open_task(f"e{index}", after=after, bind=False)
            opened += 1
        elif op == "close":
            if opened:
                monitor.close_task()
                opened -= 1
        elif op == "rejoin":
            after = tuple(
                tid for tid in range(len(monitor.task_labels))
                if (index + tid) % 4 == 0
            )
            monitor.rejoin(f"j{index}", after=after)
        elif op == "barrier":
            monitor.barrier(f"b{index}")
        elif op == "chain":
            monitor.chain(resources[index % len(resources)])
        elif op == "read":
            monitor.read(shared[index % len(shared)], index % 7, site=f"r{index % 3}")
        elif op == "write":
            monitor.write(shared[index % len(shared)], index % 7, site=f"w{index % 3}")
        elif op == "tick":
            clock["now"] += index + 1
    return monitor


@given(monitor_scripts())
@settings(max_examples=60, deadline=None)
def test_graph_invariants_hold_for_any_script(ops):
    monitor = run_script(ops)

    # every edge forward: the graph is acyclic by construction
    assert all(src < dst for src, dst in monitor.edges)
    # stamps non-decreasing along edges (sim time flows with creation)
    stamps = monitor.task_stamps
    assert all(stamps[src] <= stamps[dst] for src, dst in monitor.edges)
    # the packaged validator agrees
    assert validate(monitor) == []
    # every access belongs to a real task and a real structure
    for access in monitor.accesses:
        assert 0 <= access.task < len(monitor.task_labels)
        assert 0 <= access.structure < len(monitor.structure_labels)

    graph = HBGraph(len(monitor.task_labels), monitor.edges)
    # reachability includes every recorded edge
    assert all(graph.ordered(src, dst) for src, dst in monitor.edges)
    # mainline program order: every bound child is ordered with task 0
    # (task 0 is everyone's ancestor except unbound spawns)


@given(monitor_scripts())
@settings(max_examples=30, deadline=None)
def test_detection_is_deterministic(ops):
    findings_a = detect(run_script(ops))
    findings_b = detect(run_script(ops))
    assert [f.as_dict() for f in findings_a] == [f.as_dict() for f in findings_b]


@given(monitor_scripts())
@settings(max_examples=30, deadline=None)
def test_barrier_clears_every_prior_conflict(ops):
    monitor = run_script(ops)
    monitor.barrier("final")
    shared = object()
    monitor.write(shared, 0, site="after.barrier")
    graph = HBGraph(len(monitor.task_labels), monitor.edges)
    final = monitor.current()
    # after a full barrier the current task is ordered with *every* task
    assert all(
        graph.ordered(tid, final) for tid in range(len(monitor.task_labels))
    )
