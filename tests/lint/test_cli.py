"""CLI contract: exit codes, rendering, --json, --strict, baselines."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD_FIXTURES = sorted(FIXTURES.rglob("bad_*.py"))
GOOD_FIXTURES = sorted(FIXTURES.rglob("good_*.py"))


@pytest.mark.parametrize(
    "path", BAD_FIXTURES, ids=[p.parent.name for p in BAD_FIXTURES]
)
def test_each_rule_violation_fixture_fails_with_location(path, capsys):
    exit_code = main(["--strict", str(path)])
    out = capsys.readouterr().out
    assert exit_code == 1
    # file:line plus the rule id, per the acceptance criteria
    rel = path.relative_to(Path(__file__).resolve().parents[2])
    assert f"{rel.as_posix()}:" in out
    assert f"[{_rule_of(path)}]" in out


@pytest.mark.parametrize(
    "path", GOOD_FIXTURES, ids=[p.parent.name for p in GOOD_FIXTURES]
)
def test_good_fixtures_exit_zero(path):
    assert main(["--strict", str(path)]) == 0


def _rule_of(path: Path) -> str:
    return {
        "layering": "layering",
        "wallclock": "no-wall-clock",
        "randomness": "no-ambient-randomness",
        "taxonomy": "error-taxonomy",
        "crashpoint": "crash-point-discipline",
        "metrics": "metrics-naming",
        "clock_advance": "clock-advance-discipline",
        "shared_state": "shared-state-discipline",
        "callback_purity": "completion-callback-purity",
        "frame_discipline": "frame-discipline",
    }[path.parent.name]


def test_json_output_is_machine_readable(capsys):
    path = FIXTURES / "taxonomy" / "bad_raise.py"
    exit_code = main(["--strict", "--json", str(path)])
    findings = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert {f["rule"] for f in findings} == {"error-taxonomy"}
    assert all(
        {"path", "line", "col", "rule", "message", "hint"} <= set(f)
        for f in findings
    )


def test_default_walk_is_clean_in_strict_mode(capsys):
    # The acceptance criterion: the whole repo lints clean.
    assert main(["--strict"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_missing_path_is_a_usage_error(capsys):
    assert main(["definitely/not/a/path.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_all_seven(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "layering", "no-wall-clock", "no-ambient-randomness",
        "error-taxonomy", "crash-point-discipline", "metrics-naming",
        "clock-advance-discipline",
    ):
        assert rule_id in out


def test_write_baseline_then_default_run_passes(tmp_path, capsys):
    bad = FIXTURES / "metrics" / "bad_metric_names.py"
    baseline = tmp_path / "baseline.json"
    assert main(["--baseline", str(baseline), "--write-baseline", str(bad)]) == 0
    assert baseline.is_file()
    # grandfathered: default mode passes, strict still fails
    assert main(["--baseline", str(baseline), str(bad)]) == 0
    assert main(["--baseline", str(baseline), "--strict", str(bad)]) == 1
    capsys.readouterr()


def test_list_rules_names_the_concurrency_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "shared-state-discipline", "completion-callback-purity",
        "frame-discipline",
    ):
        assert rule_id in out


def test_check_baseline_fails_on_orphaned_entries(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "findings": [{
            "path": "src/repro/long_gone.py", "line": 1, "col": 0,
            "rule": "layering", "message": "a finding nothing matches",
            "hint": "",
        }]
    }))
    clean = FIXTURES / "taxonomy" / "good_raise.py"
    assert main(["--baseline", str(baseline), str(clean)]) == 0
    assert main(
        ["--check-baseline", "--baseline", str(baseline), str(clean)]
    ) == 1
    err = capsys.readouterr().err
    assert "orphaned" in err and "long_gone" in err


def test_check_baseline_passes_when_baseline_is_live(tmp_path, capsys):
    bad = FIXTURES / "metrics" / "bad_metric_names.py"
    baseline = tmp_path / "baseline.json"
    assert main(["--baseline", str(baseline), "--write-baseline", str(bad)]) == 0
    # every entry still matches a finding: the check passes in both modes
    assert main(
        ["--check-baseline", "--baseline", str(baseline), str(bad)]
    ) == 0
    assert main(
        ["--check-baseline", "--strict", "--baseline", str(baseline), str(bad)]
    ) == 1  # strict still fails on the findings themselves, not staleness
    err = capsys.readouterr().err
    assert "orphaned" not in err
