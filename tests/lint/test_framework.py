"""Framework mechanics: suppressions, baseline round-trip, module naming."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, lint_source, load_baseline, save_baseline
from repro.lint.framework import (
    FRAMEWORK_RULE,
    module_name_for,
    parse_module,
    repo_root,
)

BAD_RAISE = 'raise Exception("boom")\n'


class TestSuppressions:
    def test_inline_suppression_silences_the_finding(self):
        findings = lint_source(
            BAD_RAISE.rstrip("\n")
            + "  # repro-lint: allow[error-taxonomy] fixture exercising it\n",
            module="repro.common.fake",
        )
        assert findings == []

    def test_standalone_suppression_covers_next_line(self):
        findings = lint_source(
            "# repro-lint: allow[error-taxonomy] fixture exercising it\n"
            + BAD_RAISE,
            module="repro.common.fake",
        )
        assert findings == []

    def test_suppression_without_reason_is_a_finding(self):
        findings = lint_source(
            BAD_RAISE.rstrip("\n") + "  # repro-lint: allow[error-taxonomy]\n",
            module="repro.common.fake",
        )
        rules = {finding.rule for finding in findings}
        # the original violation still stands, plus the framework report
        assert rules == {FRAMEWORK_RULE, "error-taxonomy"}

    def test_suppression_of_unknown_rule_is_a_finding(self):
        findings = lint_source(
            "x = 1  # repro-lint: allow[not-a-rule] whatever\n",
            module="repro.common.fake",
        )
        assert [finding.rule for finding in findings] == [FRAMEWORK_RULE]

    def test_directive_inside_string_literal_is_ignored(self):
        # Only real comments count: a directive smuggled into a string
        # neither suppresses nor registers.
        findings = lint_source(
            'doc = "# repro-lint: allow[error-taxonomy] nope"\n' + BAD_RAISE,
            module="repro.common.fake",
        )
        assert [finding.rule for finding in findings] == ["error-taxonomy"]

    def test_suppression_only_silences_the_named_rule(self):
        findings = lint_source(
            BAD_RAISE.rstrip("\n")
            + "  # repro-lint: allow[metrics-naming] wrong rule named\n",
            module="repro.common.fake",
        )
        assert [finding.rule for finding in findings] == ["error-taxonomy"]


class TestModuleNaming:
    def test_src_file_maps_to_dotted_module(self):
        root = repo_root()
        path = root / "src" / "repro" / "simdisk" / "disk.py"
        assert module_name_for(path, root) == "repro.simdisk.disk"

    def test_package_init_maps_to_package(self):
        root = repo_root()
        path = root / "src" / "repro" / "simdisk" / "__init__.py"
        assert module_name_for(path, root) == "repro.simdisk"

    def test_test_file_has_no_module_name(self):
        root = repo_root()
        assert module_name_for(Path(__file__), root) is None

    def test_fixture_header_overrides_module(self, tmp_path):
        path = tmp_path / "impostor.py"
        path.write_text("# lint-fixture-module: repro.simdisk.impostor\n")
        parsed = parse_module(path, root=repo_root())
        assert parsed.module == "repro.simdisk.impostor"
        assert parsed.package == "simdisk"


class TestBaseline:
    def _violating_file(self, tmp_path: Path) -> Path:
        path = tmp_path / "legacy.py"
        path.write_text(
            "# lint-fixture-module: repro.common.legacy\n" + BAD_RAISE
        )
        return path

    def test_round_trip_grandfathers_findings(self, tmp_path):
        path = self._violating_file(tmp_path)
        first = lint_paths([path], root=repo_root())
        assert len(first.findings) == 1

        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, first.findings)
        assert load_baseline(baseline) == [first.findings[0].key()]

        second = lint_paths([path], root=repo_root(), baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.stale_baseline == []

    def test_strict_ignores_the_baseline(self, tmp_path):
        path = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, lint_paths([path], root=repo_root()).findings)
        strict = lint_paths(
            [path], root=repo_root(), baseline=baseline, strict=True
        )
        assert len(strict.findings) == 1

    def test_fixed_finding_leaves_a_stale_entry(self, tmp_path):
        path = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, lint_paths([path], root=repo_root()).findings)
        path.write_text(
            "# lint-fixture-module: repro.common.legacy\nx = 1\n"
        )
        result = lint_paths([path], root=repo_root(), baseline=baseline)
        assert result.findings == []
        assert len(result.stale_baseline) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []


class TestParsing:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        result = lint_paths([path], root=repo_root())
        assert [finding.rule for finding in result.findings] == [FRAMEWORK_RULE]
        assert "syntax error" in result.findings[0].message

    def test_directory_walk_skips_lint_fixtures(self):
        root = repo_root()
        result = lint_paths([root / "tests" / "lint"], root=root, strict=True)
        # the deliberately-bad fixtures are excluded from walks
        assert result.findings == []
