"""The repo must lint itself clean in --strict mode (tier-1 gate).

This is the test CI leans on: any layering back-edge, wall-clock read,
ambient RNG, stray exception type, unregistered write site, or malformed
counter name introduced anywhere in ``src/`` or ``tests/`` fails the
suite with the offending file:line in the assertion message.
"""

from __future__ import annotations

from repro.lint import lint_paths
from repro.lint.framework import repo_root


def test_src_and_tests_are_clean_in_strict_mode():
    root = repo_root()
    result = lint_paths([root / "src", root / "tests"], root=root, strict=True)
    rendered = "\n".join(finding.render() for finding in result.findings)
    assert result.findings == [], f"repro.lint --strict findings:\n{rendered}"
    # sanity: the walk actually covered the tree
    assert result.files > 100
