# lint-fixture-module: repro.disk_service.scrub
"""Fixture: the reviewed repair site, under its registered name."""


class Scrubber:
    def __init__(self, server) -> None:
        self.server = server

    def _repair_mirrored(self, extent, expected) -> bool:
        written = self.server.repair_from_stable(extent)
        return expected is None or written == expected
