# lint-fixture-module: repro.disk_service.fake_repairer
"""Fixture: scrub-repair writes issued from an unreviewed site."""


class RogueHealer:
    def __init__(self, server) -> None:
        self.server = server

    def heal(self, extent) -> bytes:
        return self.server.repair_from_stable(extent)  # lint-expect: crash-point-discipline


def quick_fix(server, extent) -> None:
    server.repair_from_stable(extent)  # lint-expect: crash-point-discipline
