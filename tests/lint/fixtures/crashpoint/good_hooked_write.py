# lint-fixture-module: repro.simdisk.fake_hooked_disk
"""Fixture: a raw mutation guarded by the crash-point hook."""


class FakeDisk:
    def __init__(self) -> None:
        self._sectors = {}
        self.faults = None

    def write(self, sector: int, data: bytes) -> None:
        torn = self.faults.note_write(1, disk_id="fake", start=sector)
        if torn is None:
            self._sectors[sector] = data

    def read(self, sector: int) -> bytes:
        return self._sectors.get(sector, b"")
