# lint-fixture-module: repro.simdisk.fake_disk
"""Fixture: physical writes the crash-point monitor would never see."""


class FakeDisk:
    def __init__(self) -> None:
        self._sectors = {}
        self.faults = None

    def poke(self, sector: int, data: bytes) -> None:
        self._sectors[sector] = data  # lint-expect: crash-point-discipline

    def wipe(self) -> None:
        self._sectors.clear()  # lint-expect: crash-point-discipline


def bypass(disk, data: bytes) -> None:
    disk.write_sectors(0, data)  # lint-expect: crash-point-discipline
