# lint-fixture-module: repro.file_service.fake_downward
"""Fixture: the same shape of code importing strictly downward."""

from repro.common.metrics import Metrics
from repro.disk_service.server import DiskServer


def peek(server: DiskServer, metrics: Metrics) -> object:
    return server and metrics
