# lint-fixture-module: repro.recovery.fake_shard_back_edge
"""Fixture: recovery reaching back up into the shard layer.

PR 10 legalised ``naming -> recovery`` (the shard servers feed the
failure detector); this proves the *reverse* edge is still rejected.
"""

from repro.naming.shard import NamingShard  # lint-expect: layering

import repro.naming.service  # lint-expect: layering


def peek(shard: NamingShard) -> object:
    return repro.naming.service and shard
