# lint-fixture-module: repro.disk_service.fake_upward
"""Fixture: a disk-service module reaching up into higher layers."""

from repro.file_service.server import FileServer  # lint-expect: layering

import repro.agents.ports  # lint-expect: layering


def peek(server: FileServer) -> object:
    return repro.agents.ports and server
