# lint-fixture-module: repro.naming.fake_shard_imports
"""Fixture: the naming layer using its PR 10 edges legitimately."""

from repro.common.metrics import Metrics
from repro.file_service.server import FileServer
from repro.recovery.health import HealthRegistry


def peek(server: FileServer, health: HealthRegistry, metrics: Metrics) -> object:
    return server and health and metrics
