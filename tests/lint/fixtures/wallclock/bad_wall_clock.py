# lint-fixture-module: repro.simkernel.fake_timer
"""Fixture: simulated code reading host time three different ways."""

import time  # lint-expect: no-wall-clock

from datetime import datetime  # lint-expect: no-wall-clock


def stamp() -> float:
    started = time.perf_counter()  # lint-expect: no-wall-clock
    return started


def today() -> str:
    return str(datetime)
