# lint-fixture-module: repro.simkernel.fake_sim_timer
"""Fixture: the same component on simulated time."""

from repro.common.clock import SimClock


def stamp(clock: SimClock) -> int:
    return clock.now_us
