# lint-fixture-module: repro.simkernel.fake_pure_callbacks
"""Fixture: done-callbacks that only note the result."""


def plant(completion, results, metrics) -> None:
    completion.add_done_callback(lambda c: results.append(c))
    completion.add_done_callback(lambda _c: metrics.add("requests.settled"))

    def note(c) -> None:
        results.append(c.result())

    completion.add_done_callback(note)
