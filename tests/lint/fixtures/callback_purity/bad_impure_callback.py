# lint-fixture-module: repro.simkernel.fake_callbacks
"""Fixture: done-callbacks doing real work inside the settling task."""


def _patch_protection(server, extent, data) -> None:
    server._record_checksums(extent, data)  # lint-expect: completion-callback-purity


def plant(completion, server, extent, data, clock, disk, loop) -> None:
    completion.add_done_callback(
        lambda _c: server._record_checksums(extent, data)  # lint-expect: completion-callback-purity
    )
    completion.add_done_callback(
        lambda _c: clock.advance_us(10)  # lint-expect: completion-callback-purity, clock-advance-discipline
    )
    completion.add_done_callback(
        lambda _c: disk.write_sectors(0, b"x")  # lint-expect: completion-callback-purity
    )
    completion.add_done_callback(
        lambda _c: loop.run_until_idle()  # lint-expect: completion-callback-purity
    )
    completion.add_done_callback(_patch_protection)
