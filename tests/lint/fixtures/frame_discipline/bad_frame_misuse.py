# lint-fixture-module: repro.replication.fake_frames
"""Fixture: unjoined forks, unscoped branches, cursor pokes."""


def fan_out_without_join(clock, replicas) -> None:
    fork = FrameFork(clock)  # lint-expect: frame-discipline
    for replica in replicas:
        with fork.branch():
            replica.write(b"x")


def branch_without_with(fork, replica) -> None:
    fork.branch()  # lint-expect: frame-discipline
    replica.write(b"x")
    fork.join()


def teleport(frame) -> None:
    frame.cursor_us = 1_000_000  # lint-expect: frame-discipline


class FakeService:
    def serve(self, frame, delta_us: int) -> None:
        frame.cursor_us += delta_us  # lint-expect: frame-discipline
