# lint-fixture-module: repro.replication.fake_frames_ok
"""Fixture: forks joined, branches scoped, no inline charging."""


def fan_out(clock, replicas) -> None:
    fork = FrameFork(clock)
    for replica in replicas:
        with fork.branch():
            replica.write(b"x")
    fork.join()


def serve(clock, timeline, n_sectors, think_us) -> None:
    # pricing goes through the charging substrate, never the cursor
    timeline.charge(n_sectors)
    charge_elapsed(clock, think_us)
