# lint-fixture-module: repro.disk_service.fake_owner
"""Fixture: owners mutate their own structures; outsiders only read."""


class Owner:
    def __init__(self) -> None:
        self._checksums = {}
        self._mirrored = set()
        self._tracks = {}

    def record(self, fragment: int, crc: int) -> None:
        self._checksums[fragment] = crc

    def mark(self, start: int, length: int) -> None:
        self._mirrored.add((start, length))

    def reset(self) -> None:
        self._tracks.clear()


def audit(owner) -> int:
    # reads through a foreign reference are fine — only mutation is owned
    return len(owner._checksums)
