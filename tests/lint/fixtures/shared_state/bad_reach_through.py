# lint-fixture-module: repro.disk_service.fake_meddler
"""Fixture: mutating another object's shared structures directly."""


class Meddler:
    def __init__(self, server, cache, stable) -> None:
        self.server = server
        self.cache = cache
        self.stable = stable

    def forge_checksum(self, fragment: int, crc: int) -> None:
        self.server._checksums[fragment] = crc  # lint-expect: shared-state-discipline

    def forget_mirror(self, start: int, length: int) -> None:
        self.server._mirrored.discard((start, length))  # lint-expect: shared-state-discipline

    def flush_cache(self) -> None:
        self.cache._tracks.clear()  # lint-expect: shared-state-discipline

    def swap_directory(self) -> None:
        self.stable._directory = {}  # lint-expect: shared-state-discipline


def drop_pending(queue) -> None:
    queue._pending.pop()  # lint-expect: shared-state-discipline
