# lint-fixture-module: repro.workloads.fake_seeded_gen
"""Fixture: seeded, explicitly-threaded randomness (the blessed shape)."""

import random


def scramble(items: list, seed: int) -> list:
    rng = random.Random(seed)
    rng.shuffle(items)
    return items


def roll(rng: random.Random) -> int:
    return rng.randint(1, 6)
