# lint-fixture-module: repro.workloads.fake_gen
"""Fixture: every flavour of ambient randomness the rule bans."""

import random

from random import randint  # lint-expect: no-ambient-randomness


def scramble(items: list) -> list:
    random.shuffle(items)  # lint-expect: no-ambient-randomness
    return items


def fresh_rng() -> random.Random:
    return random.Random()  # lint-expect: no-ambient-randomness


def roll() -> int:
    return randint(1, 6)
