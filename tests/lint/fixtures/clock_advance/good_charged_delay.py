# lint-fixture-module: repro.disk_service.charged_delay
"""Fixture: the same component charging its delay frame-aware."""

from repro.common.clock import SimClock
from repro.common.frames import charge_elapsed


def serve(clock: SimClock, service_us: int) -> None:
    charge_elapsed(clock, service_us)
