# lint-fixture-module: repro.disk_service.sneaky_delay
"""Fixture: a service path advancing the global clock inline."""

from repro.common.clock import SimClock


def serve(clock: SimClock, service_us: int) -> None:
    clock.advance_us(service_us)  # lint-expect: clock-advance-discipline


def settle(clock: SimClock, when_us: int) -> None:
    clock.advance_to(when_us)  # lint-expect: clock-advance-discipline
