# lint-fixture-module: repro.file_service.fake_good_paths
"""Fixture: raises inside the taxonomy — facility, local, and assertion."""

from repro.common.errors import FileServiceError, FileSizeError


class FakePathError(FileServiceError):
    """Locally-derived facility errors are recognised too."""


def open_path(path: str) -> None:
    if not path:
        raise ValueError("empty path")  # precondition: stdlib is fine
    if path.startswith("//"):
        raise FakePathError("double slash")
    raise FileSizeError(path)


def reraise(error: FileSizeError) -> None:
    try:
        raise error  # caught-object re-raise is exempt
    except FileSizeError:
        raise
