# lint-fixture-module: repro.simdisk.fake_platter
"""Fixture: media failures raised outside the MediaError branch."""


def read_sector(sector: int, rotted: bool, unreadable: bool) -> bytes:
    if unreadable:
        raise IOError(f"sector {sector} unreadable")  # lint-expect: error-taxonomy
    if rotted:
        raise ArithmeticError(f"sector {sector} failed its CRC")  # lint-expect: error-taxonomy
    return b""
