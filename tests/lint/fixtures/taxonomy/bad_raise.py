# lint-fixture-module: repro.file_service.fake_paths
"""Fixture: raises that escape the Rhodos error taxonomy."""


def open_path(path: str) -> None:
    if not path:
        raise Exception("empty path")  # lint-expect: error-taxonomy
    if path.startswith("//"):
        raise OSError("double slash")  # lint-expect: error-taxonomy
    raise KeyError(path)  # lint-expect: error-taxonomy
