# lint-fixture-module: repro.simdisk.fake_good_platter
"""Fixture: media failures speak the MediaError branch of the taxonomy."""

from repro.common.errors import BadSectorError, ChecksumError, MediaError


class FakeRotError(MediaError):
    """Locally-derived media errors are part of the branch too."""


def read_sector(sector: int, rotted: bool, unreadable: bool) -> bytes:
    if unreadable:
        raise BadSectorError(f"sector {sector} unreadable")
    if rotted:
        raise ChecksumError(f"sector {sector} failed its CRC")
    if sector < 0:
        raise FakeRotError(f"sector {sector} decayed")
    return b""
