# lint-fixture-module: repro.replication.fake_metrics
"""Fixture: counter names outside the layer.noun_verb grammar."""


def record(metrics, prefix: str) -> None:
    metrics.add("Replication.Writes")  # lint-expect: metrics-naming
    metrics.add("writes")  # lint-expect: metrics-naming
    metrics.add(f"{prefix}.Bad-Name")  # lint-expect: metrics-naming
    metrics.total("Replication.")  # lint-expect: metrics-naming
