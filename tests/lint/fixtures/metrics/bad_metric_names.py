# lint-fixture-module: repro.replication.fake_metrics
"""Fixture: instrument names outside the layer.noun_verb grammar."""


def record(metrics, prefix: str) -> None:
    metrics.add("Replication.Writes")  # lint-expect: metrics-naming
    metrics.add("writes")  # lint-expect: metrics-naming
    metrics.add(f"{prefix}.Bad-Name")  # lint-expect: metrics-naming
    metrics.total("Replication.")  # lint-expect: metrics-naming
    metrics.observe("CopyMicros", 12)  # lint-expect: metrics-naming
    metrics.gauge("replication.Replica-Count", 1)  # lint-expect: metrics-naming


def timed(metrics, clock) -> None:
    with metrics.timer("Replicate.Us", clock):  # lint-expect: metrics-naming
        pass
