# lint-fixture-module: repro.replication.fake_good_metrics
"""Fixture: instrument names inside the grammar, literal and interpolated."""


def record(metrics, prefix: str, disk_id: str) -> None:
    metrics.add("replication.replica_writes")
    metrics.add(f"{prefix}.sectors_written", 4)
    metrics.add(f"disk.{disk_id}.busy_us")
    metrics.total("replication.")
    metrics.observe("replication.copy_us", 12)
    metrics.observe(f"disk.{disk_id}.service_us", 7)
    metrics.gauge("replication.replica_count", 2)
    metrics.get_gauge(f"disk.{disk_id}.free_fragments")
    metrics.histogram("replication.copy_us")


def timed(metrics, clock, prefix: str) -> None:
    with metrics.timer(f"{prefix}.replicate_us", clock):
        pass
    with metrics.timer("replication.repair_us", clock):
        pass
