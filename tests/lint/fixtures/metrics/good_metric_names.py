# lint-fixture-module: repro.replication.fake_good_metrics
"""Fixture: counter names inside the grammar, literal and interpolated."""


def record(metrics, prefix: str, disk_id: str) -> None:
    metrics.add("replication.replica_writes")
    metrics.add(f"{prefix}.sectors_written", 4)
    metrics.add(f"disk.{disk_id}.busy_us")
    metrics.total("replication.")
