"""Per-rule fixtures: every bad snippet is flagged, every good one clean.

Each fixture under ``fixtures/`` impersonates a repro module through a
``# lint-fixture-module:`` header and marks each expected violation
with a trailing ``# lint-expect: <rule-id>`` comment; the harness
asserts the linter reports exactly the marked (line, rule) pairs —
no misses, no extras.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.framework import repo_root
from repro.lint.rules.layering import LAYER_DEPS, validate_dag

FIXTURES = Path(__file__).resolve().parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*lint-expect:\s*([\w, .-]+)")


def expected_findings(path: Path) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                expected.add((lineno, rule_id.strip()))
    return expected


def actual_findings(path: Path) -> set[tuple[int, str]]:
    result = lint_paths([path], root=repo_root(), strict=True)
    return {(finding.line, finding.rule) for finding in result.findings}


ALL_FIXTURES = sorted(FIXTURES.rglob("*.py"))
BAD_FIXTURES = [p for p in ALL_FIXTURES if p.name.startswith("bad_")]
GOOD_FIXTURES = [p for p in ALL_FIXTURES if p.name.startswith("good_")]


def test_every_rule_has_a_bad_and_a_good_fixture():
    rules_covered = {p.parent.name for p in BAD_FIXTURES}
    assert rules_covered == {
        "layering", "wallclock", "randomness",
        "taxonomy", "crashpoint", "metrics", "clock_advance",
        "shared_state", "callback_purity", "frame_discipline",
    }
    assert {p.parent.name for p in GOOD_FIXTURES} == rules_covered


@pytest.mark.parametrize(
    "path", BAD_FIXTURES, ids=[p.parent.name for p in BAD_FIXTURES]
)
def test_bad_fixture_is_flagged_exactly(path):
    expected = expected_findings(path)
    assert expected, f"{path} has no lint-expect markers"
    assert actual_findings(path) == expected


@pytest.mark.parametrize(
    "path", GOOD_FIXTURES, ids=[p.parent.name for p in GOOD_FIXTURES]
)
def test_good_fixture_is_clean(path):
    assert actual_findings(path) == set()


# ---------------------------------------------------------- layer DAG


def test_layer_dag_is_acyclic():
    order = validate_dag()
    assert set(order) == set(LAYER_DEPS)
    # every package appears after all of its dependencies
    position = {package: index for index, package in enumerate(order)}
    for package, deps in LAYER_DEPS.items():
        for dep in deps:
            assert position[dep] < position[package]


def test_layer_dag_declares_every_source_package():
    packages = {
        child.name
        for child in (repo_root() / "src" / "repro").iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    assert packages == set(LAYER_DEPS), (
        "src/repro packages and the declared layer DAG diverged; "
        "update repro.lint.rules.layering.LAYER_DEPS deliberately"
    )


def test_layer_dag_rejects_declared_cycles(monkeypatch):
    monkeypatch.setitem(LAYER_DEPS, "common", {"cluster"})
    with pytest.raises(ValueError, match="cycle"):
        validate_dag()


def test_injected_back_edge_is_rejected(tmp_path):
    # The CI negative check in file form: a disk_service module that
    # imports the file service must produce a layering finding.
    snippet = tmp_path / "snippet.py"
    snippet.write_text(
        "# lint-fixture-module: repro.disk_service.injected\n"
        "from repro.file_service.server import FileServer\n"
    )
    result = lint_paths([snippet], root=repo_root(), strict=True)
    assert [f.rule for f in result.findings] == ["layering"]
    assert result.findings[0].line == 2
