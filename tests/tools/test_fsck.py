"""The volume checker: clean volumes pass, every corruption is found."""

import pytest

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.disk_service.addresses import Extent
from repro.tools.fsck import fsck_volume, verify_checksums
from tests.conftest import build_file_server


@pytest.fixture
def server():
    return build_file_server(SimClock(), Metrics())


def make_files(server, count=5, blocks=3):
    names = []
    for index in range(count):
        name = server.create()
        server.write(name, 0, bytes([index + 1]) * (blocks * BLOCK_SIZE))
        names.append(name)
    server.flush()
    return names


class TestCleanVolume:
    def test_empty_volume_is_clean(self, server):
        report = fsck_volume(server)
        assert report.clean
        assert report.files_found == 0

    def test_populated_volume_is_clean(self, server):
        make_files(server)
        report = fsck_volume(server)
        assert report.clean, report.errors
        assert report.files_found == 5
        # 3 written blocks per file plus any growth-batch preallocation.
        assert report.blocks_referenced >= 15
        assert report.orphaned_fragments == 0

    def test_after_deletes_still_clean(self, server):
        names = make_files(server)
        server.delete(names[2])
        server.flush()
        report = fsck_volume(server)
        assert report.clean
        assert report.files_found == 4

    def test_indirect_files_walked(self, server):
        name = server.create()
        server.write(name, 0, b"\x33" * (70 * BLOCK_SIZE))  # past direct
        server.flush()
        report = fsck_volume(server)
        assert report.clean, report.errors
        assert report.blocks_referenced >= 70

    def test_summary_format(self, server):
        make_files(server, count=2, blocks=1)
        summary = fsck_volume(server).summary()
        assert "CLEAN" in summary
        assert "2 files" in summary


class TestCorruptionDetection:
    def test_lost_block_detected(self, server):
        [name] = make_files(server, count=1)
        descriptor = server.block_descriptor(name, 1)
        server.disk.free(Extent.for_block_run(descriptor.address, 1))
        report = fsck_volume(server)
        assert not report.clean
        assert any("lost block" in error for error in report.errors)

    def test_cross_linked_files_detected(self, server):
        name_a, name_b = make_files(server, count=2)
        stolen = server.block_descriptor(name_a, 0)
        old = server.replace_block_descriptor(name_b, 0, stolen.address)
        server.disk.free(Extent.for_block_run(old, 1))
        server.flush()
        report = fsck_volume(server)
        assert any("cross-linked" in error for error in report.errors)

    def test_size_beyond_map_detected(self, server):
        [name] = make_files(server, count=1, blocks=1)
        server.set_file_size_at_least(name, 50 * BLOCK_SIZE)
        server.flush()
        report = fsck_volume(server)
        assert any("exceeds the mapped area" in error for error in report.errors)

    def test_orphaned_space_warned(self, server):
        make_files(server, count=1)
        server.disk.allocate(8)  # leak: allocated, never referenced
        report = fsck_volume(server)
        assert report.clean  # a warning, not an error
        assert report.orphaned_fragments == 8

    def test_stale_counts_warned(self, server):
        [name] = make_files(server, count=1, blocks=4)
        fit = server.load_fit(name)
        from repro.file_service.fit import BlockDescriptor

        # Corrupt the stored count without moving the block.
        fit.direct[0] = BlockDescriptor(fit.direct[0].address, 1)
        state = server._files[name.fit_address]
        state.fit_dirty = True
        server._store_fit(name.fit_address, state)
        report = fsck_volume(server)
        assert any("stale contiguity count" in w for w in report.warnings)


class TestMediaVerification:
    """PR 6: the optional checksum pass reports latent rot — it never
    repairs, reconciles, or caches anything as a side effect."""

    def _data_fragment(self, server):
        """A checksummed fragment holding file data (not a live FIT)."""
        [name] = make_files(server, count=1)
        descriptor = server.block_descriptor(name, 0)
        assert server.disk.has_checksum(descriptor.address)
        return descriptor.address

    def test_clean_volume_has_no_findings(self, server):
        self._data_fragment(server)
        assert verify_checksums(server.disk) == []
        assert fsck_volume(server, verify_media=True).clean

    def test_latent_rot_reported_as_error(self, server):
        fragment = self._data_fragment(server)
        extent = Extent(fragment, 1)
        server.disk.disk.corrupt_sectors(extent.first_sector, 1)
        report = fsck_volume(server, verify_media=True)
        assert not report.clean
        assert any(
            f"fragment {fragment}" in error and "checksum mismatch" in error
            for error in report.errors
        )
        # Without the media pass the rot stays latent: fsck's own walk
        # reads other fragments, so the default report is still clean.
        assert fsck_volume(server).clean

    def test_reporting_never_repairs(self, server):
        fragment = self._data_fragment(server)
        extent = Extent(fragment, 1)
        disk = server.disk
        recorded = disk.recorded_checksum(fragment)
        disk.disk.corrupt_sectors(extent.first_sector, 1)
        rotten = disk.disk.read_sectors(extent.first_sector, extent.n_sectors)
        assert verify_checksums(disk) != []
        # Raw bytes, the recorded CRC, and the repair counters are all
        # untouched — finding rot is the whole job.
        assert (
            disk.disk.read_sectors(extent.first_sector, extent.n_sectors)
            == rotten
        )
        assert disk.recorded_checksum(fragment) == recorded
        assert server.metrics.get("disk_server.0.read_repairs") == 0
        assert server.metrics.get("disk_server.0.stable_repairs") == 0

    def test_unreadable_fragment_reported(self, server):
        fragment = self._data_fragment(server)
        extent = Extent(fragment, 1)
        server.disk.disk.faults.schedule_media_error(extent.first_sector)
        findings = verify_checksums(server.disk)
        assert any(
            f"fragment {fragment}" in finding and "unreadable" in finding
            for finding in findings
        )

    def test_unreconciled_checksums_are_skipped(self, server):
        """Post-crash, a stale recorded CRC may simply lag an in-flux
        write — the raw pass cannot call that rot yet."""
        fragment = self._data_fragment(server)
        extent = Extent(fragment, 1)
        disk = server.disk
        disk.disk.corrupt_sectors(extent.first_sector, 1)
        disk.recover()  # reload the checkpoint: everything unreconciled
        assert disk.is_unreconciled(fragment)
        assert verify_checksums(disk) == []

    def test_fit_magic_with_garbage_body_is_a_warning(self, server):
        """The narrowed decode taxonomy: structural garbage behind the
        magic is reported as a torn write, never swallowed blindly and
        never a crash."""
        make_files(server, count=1)
        extent = server.disk.allocate(1)
        payload = b"RFIT" + bytes(
            (index * 13 + 7) % 256 for index in range(extent.byte_size - 4)
        )
        server.disk.put(extent, payload)
        report = fsck_volume(server)
        assert any("undecodable" in warning for warning in report.warnings)


class TestDoubleIndirect:
    def test_double_indirect_file_is_clean(self, server):
        from repro.file_service.fit import (
            DESCRIPTORS_PER_INDIRECT,
            DIRECT_DESCRIPTORS,
            SINGLE_INDIRECT_SLOTS,
        )

        boundary = (
            DIRECT_DESCRIPTORS + SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT
        )
        name = server.create()
        server.write(name, boundary * BLOCK_SIZE, b"deep" * 2048)
        server.flush()
        report = fsck_volume(server)
        assert report.clean, report.errors
        assert report.orphaned_fragments == 0
