"""The volume checker: clean volumes pass, every corruption is found."""

import pytest

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.disk_service.addresses import Extent
from repro.tools.fsck import fsck_volume
from tests.conftest import build_file_server


@pytest.fixture
def server():
    return build_file_server(SimClock(), Metrics())


def make_files(server, count=5, blocks=3):
    names = []
    for index in range(count):
        name = server.create()
        server.write(name, 0, bytes([index + 1]) * (blocks * BLOCK_SIZE))
        names.append(name)
    server.flush()
    return names


class TestCleanVolume:
    def test_empty_volume_is_clean(self, server):
        report = fsck_volume(server)
        assert report.clean
        assert report.files_found == 0

    def test_populated_volume_is_clean(self, server):
        make_files(server)
        report = fsck_volume(server)
        assert report.clean, report.errors
        assert report.files_found == 5
        # 3 written blocks per file plus any growth-batch preallocation.
        assert report.blocks_referenced >= 15
        assert report.orphaned_fragments == 0

    def test_after_deletes_still_clean(self, server):
        names = make_files(server)
        server.delete(names[2])
        server.flush()
        report = fsck_volume(server)
        assert report.clean
        assert report.files_found == 4

    def test_indirect_files_walked(self, server):
        name = server.create()
        server.write(name, 0, b"\x33" * (70 * BLOCK_SIZE))  # past direct
        server.flush()
        report = fsck_volume(server)
        assert report.clean, report.errors
        assert report.blocks_referenced >= 70

    def test_summary_format(self, server):
        make_files(server, count=2, blocks=1)
        summary = fsck_volume(server).summary()
        assert "CLEAN" in summary
        assert "2 files" in summary


class TestCorruptionDetection:
    def test_lost_block_detected(self, server):
        [name] = make_files(server, count=1)
        descriptor = server.block_descriptor(name, 1)
        server.disk.free(Extent.for_block_run(descriptor.address, 1))
        report = fsck_volume(server)
        assert not report.clean
        assert any("lost block" in error for error in report.errors)

    def test_cross_linked_files_detected(self, server):
        name_a, name_b = make_files(server, count=2)
        stolen = server.block_descriptor(name_a, 0)
        old = server.replace_block_descriptor(name_b, 0, stolen.address)
        server.disk.free(Extent.for_block_run(old, 1))
        server.flush()
        report = fsck_volume(server)
        assert any("cross-linked" in error for error in report.errors)

    def test_size_beyond_map_detected(self, server):
        [name] = make_files(server, count=1, blocks=1)
        server.set_file_size_at_least(name, 50 * BLOCK_SIZE)
        server.flush()
        report = fsck_volume(server)
        assert any("exceeds the mapped area" in error for error in report.errors)

    def test_orphaned_space_warned(self, server):
        make_files(server, count=1)
        server.disk.allocate(8)  # leak: allocated, never referenced
        report = fsck_volume(server)
        assert report.clean  # a warning, not an error
        assert report.orphaned_fragments == 8

    def test_stale_counts_warned(self, server):
        [name] = make_files(server, count=1, blocks=4)
        fit = server.load_fit(name)
        from repro.file_service.fit import BlockDescriptor

        # Corrupt the stored count without moving the block.
        fit.direct[0] = BlockDescriptor(fit.direct[0].address, 1)
        state = server._files[name.fit_address]
        state.fit_dirty = True
        server._store_fit(name.fit_address, state)
        report = fsck_volume(server)
        assert any("stale contiguity count" in w for w in report.warnings)


class TestDoubleIndirect:
    def test_double_indirect_file_is_clean(self, server):
        from repro.file_service.fit import (
            DESCRIPTORS_PER_INDIRECT,
            DIRECT_DESCRIPTORS,
            SINGLE_INDIRECT_SLOTS,
        )

        boundary = (
            DIRECT_DESCRIPTORS + SINGLE_INDIRECT_SLOTS * DESCRIPTORS_PER_INDIRECT
        )
        name = server.create()
        server.write(name, boundary * BLOCK_SIZE, b"deep" * 2048)
        server.flush()
        report = fsck_volume(server)
        assert report.clean, report.errors
        assert report.orphaned_fragments == 0
