"""The machine-readable bench runner (``python -m repro.tools.bench``)."""

import json

import pytest

from repro.tools import bench


class TestDiscovery:
    def test_discovers_the_bench_suite(self):
        experiments = bench.discover()
        assert "e1_two_disk_references" in experiments
        assert all(path.name.startswith("bench_") for path in experiments.values())

    def test_smoke_subset_is_a_subset_of_the_suite(self):
        assert set(bench.SMOKE_EXPERIMENTS) <= set(bench.discover())


class TestRunExperiment:
    def test_pass_with_aggregated_instruments(self):
        result = bench.run_experiment(bench.discover()["e14_track_cache"])
        assert result["status"] == "pass"
        assert result["failure"] is None
        assert any(name.startswith("disk.") for name in result["counters"])
        assert "disk" in result["layers"]
        assert result["layers"]["disk"] == sum(
            value for name, value in result["counters"].items()
            if name.split(".", 1)[0] == "disk"
        )
        histogram = next(iter(result["histograms"].values()))
        assert set(histogram) == {"count", "min", "max", "sum", "p50", "p95"}
        assert histogram["min"] <= histogram["p50"] <= histogram["p95"]
        assert histogram["p95"] <= histogram["max"]

    def test_assertion_failure_is_captured_not_raised(self, tmp_path):
        bad = tmp_path / "bench_x1_always_fails.py"
        bad.write_text(
            "def test_claim(benchmark):\n"
            "    assert benchmark.pedantic(lambda: 1, rounds=1) == 2, "
            "'claim does not hold'\n"
        )
        result = bench.run_experiment(bad)
        assert result["status"] == "fail"
        assert result["failure"] == "claim does not hold"

    def test_crash_is_captured_as_error(self, tmp_path):
        bad = tmp_path / "bench_x2_crashes.py"
        bad.write_text(
            "def test_boom(benchmark):\n"
            "    raise RuntimeError('kaboom')\n"
        )
        result = bench.run_experiment(bad)
        assert result["status"] == "error"
        assert result["failure"] == "RuntimeError: kaboom"


class TestRunSuite:
    def test_unknown_id_is_rejected(self):
        with pytest.raises(SystemExit):
            bench.run_suite(["nope_not_real"])

    def test_document_schema(self):
        document = bench.run_suite(["t1_lock_compatibility"])
        assert document["schema_version"] == 1
        assert document["suite"] == "repro-bench"
        outcome = document["experiments"]["t1_lock_compatibility"]
        assert set(outcome) == {
            "status", "failure", "counters", "layers", "histograms", "gauges",
        }


class TestStripWall:
    def test_strips_only_wall_gauges(self):
        document = {
            "experiments": {
                "m1": {
                    "gauges": {
                        "bench.m1_sequential.wall_us_new": 371000,
                        "bench.m1_sequential.wall_speedup_pct": 552,
                        "disk.0.utilization": 37,
                    },
                },
                "e1": {"gauges": {}},
            },
        }
        bench.strip_wall_gauges(document)
        assert document["experiments"]["m1"]["gauges"] == {
            "disk.0.utilization": 37,
        }
        assert document["experiments"]["e1"]["gauges"] == {}


class TestCli:
    def test_smoke_writes_deterministic_json(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert bench.main(["--only", "e14_track_cache", "--out", str(first)]) == 0
        assert bench.main(["--only", "e14_track_cache", "--out", str(second)]) == 0
        assert first.read_text() == second.read_text()
        document = json.loads(first.read_text())
        assert document["experiments"]["e14_track_cache"]["status"] == "pass"

    def test_list_exits_clean(self, capsys):
        assert bench.main(["--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert "e1_two_disk_references" in listed
