"""The report generator's parsing and rendering (no subprocess)."""

from pathlib import Path

import pytest

from repro.tools.report import extract_tables, find_benchmarks_dir, render_markdown

SAMPLE_OUTPUT = """
some pytest noise
=== E1  Cold whole-file read ===
file size  refs
---------------
2 KB       1
512 KB     2
.
=== T1  Table 1 ===
held  req
---------
None  ok
.

---------------------------------------- benchmark: 2 tests ----------
test_e1  1.0
"""


class TestExtractTables:
    def test_finds_every_table(self):
        tables = extract_tables(SAMPLE_OUTPUT)
        titles = [title for title, _ in tables]
        assert titles == ["E1  Cold whole-file read", "T1  Table 1"]

    def test_table_lines_preserved(self):
        tables = dict(extract_tables(SAMPLE_OUTPUT))
        lines = tables["E1  Cold whole-file read"]
        assert "file size  refs" in lines
        assert "512 KB     2" in lines

    def test_pytest_progress_dots_excluded(self):
        tables = dict(extract_tables(SAMPLE_OUTPUT))
        for lines in tables.values():
            assert "." not in lines
            assert "F" not in lines

    def test_empty_output(self):
        assert extract_tables("nothing here") == []


class TestRenderMarkdown:
    def test_renders_sorted_sections(self):
        markdown = render_markdown(
            [("Z last", ["row"]), ("A first", ["row1", "row2"])]
        )
        assert markdown.index("## A first") < markdown.index("## Z last")
        assert "```" in markdown
        assert "row1" in markdown

    def test_header_present(self):
        markdown = render_markdown([("T", ["x"])])
        assert markdown.startswith("# RHODOS DFF")


class TestDiscovery:
    def test_finds_repo_benchmarks(self):
        directory = find_benchmarks_dir()
        assert directory.name == "benchmarks"
        assert any(directory.glob("bench_*.py"))
