"""Volume backup/restore: the defence against catastrophes."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import FileServiceError
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import LockingLevel, ServiceType
from repro.tools.backup import dump_volume, restore_volume
from tests.conftest import build_file_server


def build_pair():
    clock, metrics = SimClock(), Metrics()
    source = build_file_server(clock, metrics, volume_id=0)
    target = build_file_server(clock, metrics, volume_id=1)
    return source, target


class TestDumpRestore:
    def test_round_trip_contents(self):
        source, target = build_pair()
        names = []
        for index in range(5):
            name = source.create()
            source.write(name, 0, bytes([index + 1]) * (index * 1000 + 10))
            names.append(name)
        source.flush()
        archive = dump_volume(source)
        mapping = restore_volume(target, archive)
        assert len(mapping) == 5
        for name in names:
            restored = mapping[(name.fit_address, name.generation)]
            original = source.read(name, 0, 10**6)
            assert target.read(restored, 0, 10**6) == original

    def test_attributes_preserved(self):
        source, target = build_pair()
        name = source.create(
            service_type=ServiceType.TRANSACTION,
            locking_level=LockingLevel.RECORD,
        )
        source.write(name, 0, b"attributed")
        source.flush()
        mapping = restore_volume(target, dump_volume(source))
        restored = mapping[(name.fit_address, name.generation)]
        attrs = target.get_attribute(restored)
        assert attrs.service_type is ServiceType.TRANSACTION
        assert attrs.locking_level is LockingLevel.RECORD
        assert attrs.file_size == 10

    def test_empty_volume(self):
        source, target = build_pair()
        assert restore_volume(target, dump_volume(source)) == {}

    def test_empty_file_restored(self):
        source, target = build_pair()
        name = source.create()
        source.flush()
        mapping = restore_volume(target, dump_volume(source))
        restored = mapping[(name.fit_address, name.generation)]
        assert target.get_attribute(restored).file_size == 0

    def test_large_file(self):
        source, target = build_pair()
        name = source.create()
        payload = bytes(range(256)) * (70 * BLOCK_SIZE // 256)  # indirect range
        source.write(name, 0, payload)
        source.flush()
        mapping = restore_volume(target, dump_volume(source))
        restored = mapping[(name.fit_address, name.generation)]
        assert target.read(restored, 0, len(payload)) == payload

    def test_restore_onto_same_volume_duplicates(self):
        source, _ = build_pair()
        name = source.create()
        source.write(name, 0, b"twin me")
        source.flush()
        mapping = restore_volume(source, dump_volume(source))
        clone = mapping[(name.fit_address, name.generation)]
        assert clone != name
        assert source.read(clone, 0, 7) == b"twin me"
        assert source.read(name, 0, 7) == b"twin me"


class TestCatastrophe:
    def test_survives_total_volume_loss(self):
        """The scenario section 6.6 excludes: volume destroyed outright.
        A backup taken beforehand restores every file elsewhere."""
        source, target = build_pair()
        name = source.create()
        source.write(name, 0, b"the only copy")
        source.flush()
        archive = dump_volume(source)
        # Catastrophe: data disk AND both stable mirrors lost.
        source.disk.disk.crash()
        source.disk.stable.mirror_a.crash()
        source.disk.stable.mirror_b.crash()
        mapping = restore_volume(target, archive)
        restored = mapping[(name.fit_address, name.generation)]
        assert target.read(restored, 0, 13) == b"the only copy"


class TestValidation:
    def test_truncated_archive_rejected(self):
        _, target = build_pair()
        with pytest.raises(FileServiceError):
            restore_volume(target, b"RB")

    def test_wrong_magic_rejected(self):
        _, target = build_pair()
        with pytest.raises(FileServiceError):
            restore_volume(target, b"XXXX" + bytes(10))

    def test_mid_entry_truncation_rejected(self):
        source, target = build_pair()
        name = source.create()
        source.write(name, 0, b"will be cut")
        source.flush()
        archive = dump_volume(source)
        with pytest.raises(FileServiceError):
            restore_volume(target, archive[:-4])
