"""Completion: the resolve-once future behind the request pipeline."""

import pytest

from repro.common.clock import SimClock
from repro.simkernel.future import Completion, wait, wait_all
from repro.simkernel.loop import EventLoop


class TestSettlement:
    def test_resolve_delivers_value(self):
        completion = Completion()
        assert not completion.done
        completion.resolve(b"payload")
        assert completion.done
        assert not completion.failed
        assert completion.result() == b"payload"
        assert completion.exception() is None

    def test_fail_delivers_error(self):
        completion = Completion()
        error = ValueError("disk on fire")
        completion.fail(error)
        assert completion.failed
        assert completion.exception() is error
        with pytest.raises(ValueError, match="disk on fire"):
            completion.result()

    def test_result_while_pending_is_an_error(self):
        with pytest.raises(RuntimeError, match="pending"):
            Completion().result()

    def test_double_settle_is_an_error(self):
        completion = Completion()
        completion.resolve(1)
        with pytest.raises(RuntimeError, match="already settled"):
            completion.resolve(2)
        with pytest.raises(RuntimeError, match="already settled"):
            completion.fail(ValueError())


class TestCallbacks:
    def test_callbacks_run_in_registration_order(self):
        completion = Completion()
        order = []
        completion.add_done_callback(lambda c: order.append("first"))
        completion.add_done_callback(lambda c: order.append("second"))
        completion.resolve(None)
        assert order == ["first", "second"]

    def test_late_callback_runs_immediately(self):
        completion = Completion()
        completion.resolve(7)
        seen = []
        completion.add_done_callback(lambda c: seen.append(c.result()))
        assert seen == [7]


class TestWait:
    def test_wait_advances_the_loop_to_the_settlement_event(self):
        clock = SimClock()
        loop = EventLoop(clock)
        completion = Completion()
        loop.call_at(250, lambda: completion.resolve("done"))
        assert wait(loop, completion) == "done"
        assert clock.now_us == 250

    def test_wait_stops_at_settlement_not_idle(self):
        clock = SimClock()
        loop = EventLoop(clock)
        completion = Completion()
        loop.call_at(100, lambda: completion.resolve(1))
        loop.call_at(9_000, lambda: None)  # unrelated later work stays queued
        wait(loop, completion)
        assert clock.now_us == 100
        assert loop.next_event_time() == 9_000

    def test_wait_on_a_drained_loop_is_a_lost_wakeup_error(self):
        loop = EventLoop(SimClock())
        with pytest.raises(RuntimeError, match="drained"):
            wait(loop, Completion())

    def test_wait_all_returns_results_in_given_order(self):
        clock = SimClock()
        loop = EventLoop(clock)
        first, second = Completion(), Completion()
        # settle out of order: the later completion settles first
        loop.call_at(10, lambda: second.resolve("b"))
        loop.call_at(20, lambda: first.resolve("a"))
        assert wait_all(loop, [first, second]) == ["a", "b"]
        assert clock.now_us == 20

    def test_wait_reraises_failure_at_the_caller(self):
        clock = SimClock()
        loop = EventLoop(clock)
        completion = Completion()
        loop.call_at(5, lambda: completion.fail(OSError("torn write")))
        with pytest.raises(OSError, match="torn write"):
            wait(loop, completion)
