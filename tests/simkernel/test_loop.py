"""The deterministic event loop."""

import pytest

from repro.common.clock import SimClock
from repro.simkernel.loop import EventLoop


@pytest.fixture
def loop():
    return EventLoop(SimClock())


class TestEventLoop:
    def test_call_later_fires_in_order(self, loop):
        fired = []
        loop.call_later(200, lambda: fired.append("b"))
        loop.call_later(100, lambda: fired.append("a"))
        loop.run_until_idle()
        assert fired == ["a", "b"]

    def test_ties_fire_in_scheduling_order(self, loop):
        fired = []
        loop.call_at(50, lambda: fired.append(1))
        loop.call_at(50, lambda: fired.append(2))
        loop.run_until_idle()
        assert fired == [1, 2]

    def test_clock_advances_to_event_time(self, loop):
        loop.call_later(300, lambda: None)
        loop.run_until_idle()
        assert loop.clock.now_us == 300

    def test_cancel(self, loop):
        fired = []
        handle = loop.call_later(10, lambda: fired.append("x"))
        loop.cancel(handle)
        assert loop.run_until_idle() == 0
        assert fired == []

    def test_next_event_time(self, loop):
        loop.call_later(70, lambda: None)
        assert loop.next_event_time() == 70

    def test_next_event_time_skips_cancelled(self, loop):
        handle = loop.call_later(10, lambda: None)
        loop.call_later(90, lambda: None)
        loop.cancel(handle)
        assert loop.next_event_time() == 90

    def test_past_deadline_clamped_to_now(self, loop):
        loop.clock.advance_us(1000)
        fired = []
        loop.call_at(5, lambda: fired.append("late"))
        loop.run_due()
        assert fired == ["late"]

    def test_events_scheduling_events(self, loop):
        fired = []

        def first():
            fired.append("first")
            loop.call_later(10, lambda: fired.append("second"))

        loop.call_later(5, first)
        loop.run_until_idle()
        assert fired == ["first", "second"]
        assert loop.clock.now_us == 15

    def test_run_due_only_runs_due(self, loop):
        fired = []
        loop.call_at(0, lambda: fired.append("now"))
        loop.call_at(500, lambda: fired.append("later"))
        loop.run_due()
        assert fired == ["now"]

    def test_runaway_guard(self, loop):
        def reschedule():
            loop.call_later(1, reschedule)

        loop.call_later(1, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_until_idle(max_events=100)


class TestCancelBookkeeping:
    """The cancellation sets must not leak (regression: PR 2).

    Cancelling a handle whose event already ran — or cancelling the same
    handle twice — used to park the id in ``_cancelled`` forever.  Both
    internal sets are now bounded by the heap: ids drop out when their
    event pops, and cancels of dead handles are no-ops.
    """

    def test_cancel_after_run_does_not_leak(self, loop):
        handle = loop.call_later(10, lambda: None)
        loop.run_until_idle()
        loop.cancel(handle)  # event already ran: must be a no-op
        assert loop._cancelled == set()
        assert loop._pending == set()

    def test_double_cancel_does_not_leak(self, loop):
        handle = loop.call_later(10, lambda: None)
        loop.cancel(handle)
        loop.cancel(handle)
        loop.run_until_idle()
        assert loop._cancelled == set()
        assert loop._pending == set()

    def test_cancel_of_unknown_handle_is_noop(self, loop):
        loop.cancel(12345)
        assert loop._cancelled == set()

    def test_sets_bounded_by_heap(self, loop):
        handles = [loop.call_later(i, lambda: None) for i in range(100)]
        for handle in handles:
            loop.cancel(handle)
            loop.cancel(handle)  # double cancel on every handle
        assert len(loop._cancelled) <= len(loop._heap)
        loop.run_until_idle()
        assert loop._cancelled == set()
        assert loop._pending == set()

    def test_cancelled_event_still_skipped(self, loop):
        fired = []
        keep = loop.call_later(20, lambda: fired.append("keep"))
        drop = loop.call_later(10, lambda: fired.append("drop"))
        loop.cancel(drop)
        loop.run_until_idle()
        assert fired == ["keep"]
        assert keep  # the surviving handle stayed valid
        assert loop._pending == set()
