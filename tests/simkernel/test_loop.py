"""The deterministic event loop."""

import pytest

from repro.common.clock import SimClock
from repro.simkernel.loop import EventLoop


@pytest.fixture
def loop():
    return EventLoop(SimClock())


class TestEventLoop:
    def test_call_later_fires_in_order(self, loop):
        fired = []
        loop.call_later(200, lambda: fired.append("b"))
        loop.call_later(100, lambda: fired.append("a"))
        loop.run_until_idle()
        assert fired == ["a", "b"]

    def test_ties_fire_in_scheduling_order(self, loop):
        fired = []
        loop.call_at(50, lambda: fired.append(1))
        loop.call_at(50, lambda: fired.append(2))
        loop.run_until_idle()
        assert fired == [1, 2]

    def test_clock_advances_to_event_time(self, loop):
        loop.call_later(300, lambda: None)
        loop.run_until_idle()
        assert loop.clock.now_us == 300

    def test_cancel(self, loop):
        fired = []
        handle = loop.call_later(10, lambda: fired.append("x"))
        loop.cancel(handle)
        assert loop.run_until_idle() == 0
        assert fired == []

    def test_next_event_time(self, loop):
        loop.call_later(70, lambda: None)
        assert loop.next_event_time() == 70

    def test_next_event_time_skips_cancelled(self, loop):
        handle = loop.call_later(10, lambda: None)
        loop.call_later(90, lambda: None)
        loop.cancel(handle)
        assert loop.next_event_time() == 90

    def test_past_deadline_clamped_to_now(self, loop):
        loop.clock.advance_us(1000)
        fired = []
        loop.call_at(5, lambda: fired.append("late"))
        loop.run_due()
        assert fired == ["late"]

    def test_events_scheduling_events(self, loop):
        fired = []

        def first():
            fired.append("first")
            loop.call_later(10, lambda: fired.append("second"))

        loop.call_later(5, first)
        loop.run_until_idle()
        assert fired == ["first", "second"]
        assert loop.clock.now_us == 15

    def test_run_due_only_runs_due(self, loop):
        fired = []
        loop.call_at(0, lambda: fired.append("now"))
        loop.call_at(500, lambda: fired.append("later"))
        loop.run_due()
        assert fired == ["now"]

    def test_runaway_guard(self, loop):
        def reschedule():
            loop.call_later(1, reschedule)

        loop.call_later(1, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_until_idle(max_events=100)
