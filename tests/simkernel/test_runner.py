"""The interleaved script runner: parking, retry, abort-restart."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import TransactionAbortedError
from repro.simkernel.runner import InterleavedRunner, LockWaitPending


def make_runner(**kwargs):
    return InterleavedRunner(SimClock(), think_time_us=10, **kwargs)


class TestBasicExecution:
    def test_single_script_runs_to_completion(self):
        log = []

        def script():
            yield lambda: log.append("a")
            yield lambda: log.append("b")

        runner = make_runner()
        runner.add_client(script)
        report = runner.run()
        assert log == ["a", "b"]
        assert report.total_commits == 1
        assert report.total_ops == 2

    def test_thunk_results_flow_back(self):
        got = []

        def script():
            value = yield lambda: 42
            got.append(value)

        runner = make_runner()
        runner.add_client(script)
        runner.run()
        assert got == [42]

    def test_round_robin_interleaving(self):
        log = []

        def script(tag):
            def gen():
                yield lambda: log.append(f"{tag}1")
                yield lambda: log.append(f"{tag}2")

            return gen

        runner = make_runner()
        runner.add_client(script("a"))
        runner.add_client(script("b"))
        runner.run()
        assert log == ["a1", "b1", "a2", "b2"]

    def test_repeats(self):
        count = []

        def script():
            yield lambda: count.append(1)

        runner = make_runner()
        runner.add_client(script, repeats=5)
        report = runner.run()
        assert len(count) == 5
        assert report.clients[0].commits == 5

    def test_think_time_charged(self):
        def script():
            yield lambda: None
            yield lambda: None

        runner = make_runner()
        runner.add_client(script)
        report = runner.run()
        assert report.elapsed_us == 20


class TestLockWaits:
    def test_waiting_client_parks_and_retries_same_thunk(self):
        gate = {"open": False}
        attempts = []

        def blocked():
            def op():
                attempts.append("try")
                if not gate["open"]:
                    raise LockWaitPending("item", lambda: gate["open"])
                return "done"

            result = yield op
            attempts.append(result)

        def opener():
            yield lambda: None
            yield lambda: gate.update(open=True)

        runner = make_runner()
        runner.add_client(blocked)
        runner.add_client(opener)
        report = runner.run()
        assert attempts[-1] == "done"
        assert attempts.count("try") == 2  # once blocked, once after grant
        assert report.clients[0].lock_waits == 1

    def test_all_parked_calls_on_stall(self):
        gate = {"open": False}
        stalls = []

        def blocked():
            def op():
                if not gate["open"]:
                    raise LockWaitPending("item", lambda: gate["open"])

            yield op

        def on_stall(now):
            stalls.append(now)
            gate["open"] = True
            return True

        runner = make_runner(on_stall=on_stall)
        runner.add_client(blocked)
        runner.run()
        assert len(stalls) == 1

    def test_wedged_without_stall_handler_raises(self):
        def blocked():
            yield lambda: (_ for _ in ()).throw(
                LockWaitPending("item", lambda: False)
            )

        runner = make_runner()
        runner.add_client(blocked)
        with pytest.raises(RuntimeError, match="wedged"):
            runner.run()


class TestAbortRestart:
    def test_abort_restarts_script_from_scratch(self):
        state = {"failed": False}
        log = []

        def script():
            yield lambda: log.append("start")

            def op():
                if not state["failed"]:
                    state["failed"] = True
                    raise TransactionAbortedError("deadlock victim")
                return "ok"

            yield op
            yield lambda: log.append("end")

        runner = make_runner()
        runner.add_client(script)
        report = runner.run()
        assert log == ["start", "start", "end"]
        assert report.clients[0].aborts == 1
        assert report.clients[0].commits == 1

    def test_max_restarts_gives_up(self):
        def script():
            yield lambda: (_ for _ in ()).throw(TransactionAbortedError("always"))

        runner = make_runner(max_restarts=3)
        runner.add_client(script)
        report = runner.run()
        assert report.clients[0].commits == 0
        assert report.clients[0].restarts == 4

    def test_on_step_called_per_operation(self):
        steps = []

        def script():
            yield lambda: None
            yield lambda: None

        runner = make_runner(on_step=steps.append)
        runner.add_client(script)
        runner.run()
        assert len(steps) == 2
