"""Shared fixtures: single components and assembled stacks."""

from __future__ import annotations

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.disk_service.server import DiskServer
from repro.file_service.server import FileServer
from repro.naming.service import NamingService
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def metrics() -> Metrics:
    return Metrics()


def build_disk(
    clock: SimClock,
    metrics: Metrics,
    *,
    disk_id: str = "0",
    geometry: DiskGeometry | None = None,
) -> SimDisk:
    return SimDisk(disk_id, geometry or DiskGeometry.small(), clock, metrics)


def build_stable(clock: SimClock, metrics: Metrics, *, tag: str = "0") -> StableStore:
    return StableStore(
        SimDisk(f"{tag}.stable_a", DiskGeometry.small(), clock, metrics),
        SimDisk(f"{tag}.stable_b", DiskGeometry.small(), clock, metrics),
    )


def build_disk_server(
    clock: SimClock,
    metrics: Metrics,
    *,
    disk_id: str = "0",
    geometry: DiskGeometry | None = None,
    **kwargs,
) -> DiskServer:
    disk = build_disk(clock, metrics, disk_id=disk_id, geometry=geometry)
    stable = build_stable(clock, metrics, tag=disk_id)
    return DiskServer(disk, stable, clock, metrics, **kwargs)


def build_file_server(
    clock: SimClock,
    metrics: Metrics,
    *,
    volume_id: int = 0,
    geometry: DiskGeometry | None = None,
    disk_kwargs: dict | None = None,
    **kwargs,
) -> FileServer:
    disk_server = build_disk_server(
        clock,
        metrics,
        disk_id=str(volume_id),
        geometry=geometry or DiskGeometry.medium(),
        **(disk_kwargs or {}),
    )
    return FileServer(volume_id, disk_server, clock, metrics, **kwargs)


@pytest.fixture
def disk(clock, metrics) -> SimDisk:
    return build_disk(clock, metrics)


@pytest.fixture
def stable(clock, metrics) -> StableStore:
    return build_stable(clock, metrics)


@pytest.fixture
def disk_server(clock, metrics) -> DiskServer:
    return build_disk_server(clock, metrics)


@pytest.fixture
def file_server(clock, metrics) -> FileServer:
    return build_file_server(clock, metrics)


@pytest.fixture
def naming(metrics) -> NamingService:
    return NamingService(metrics)


@pytest.fixture
def cluster() -> RhodosCluster:
    return RhodosCluster(ClusterConfig())


@pytest.fixture
def small_cluster() -> RhodosCluster:
    return RhodosCluster(
        ClusterConfig(geometry=DiskGeometry.small(), n_machines=2, n_disks=2)
    )
