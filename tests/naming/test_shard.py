"""The sharded namespace: map, routing, failover, rebalancing."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    NameNotFoundError,
    NamingError,
    ShardDownError,
    WrongShardError,
)
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName
from repro.naming.service import NamingService
from repro.naming.shard import (
    DEFAULT_SLOTS,
    NamingShard,
    PlacementPolicy,
    ShardedNamespace,
    ShardManager,
    ShardMap,
    canonical_key,
    routing_key,
    slot_of,
)
from repro.agents.shard_routing import direct_shard_caller


def make_namespace(n_shards=3, service_us=0, n_slots=DEFAULT_SLOTS):
    clock = SimClock()
    metrics = Metrics()
    shards = {
        shard_id: NamingShard(shard_id, clock, metrics, service_us=service_us)
        for shard_id in range(n_shards)
    }
    manager = ShardManager(shards, n_slots=n_slots, metrics=metrics)
    namespace = ShardedNamespace(
        {sid: direct_shard_caller(shard) for sid, shard in shards.items()},
        manager.get_map,
        peer_of=manager.peer_id_of,
        metrics=metrics,
    )
    return namespace, manager, shards, clock, metrics


def sys_name(index):
    return SystemName(0, index, 1)


class TestKeysAndMap:
    def test_canonical_key_prefers_path(self):
        name = AttributedName.file("/a/b", directory="d", owner="o")
        assert canonical_key(name) == "p:/a/b"

    def test_canonical_key_directory_fallback(self):
        name = AttributedName.file(directory="etc")
        assert canonical_key(name) == "d:etc"

    def test_canonical_key_attrs_fallback(self):
        name = AttributedName.tty("kbd", room="12")
        key = canonical_key(name)
        assert key.startswith("a:") and "room=12" in key

    def test_subset_query_with_path_is_routable(self):
        binding = AttributedName.file("/x", owner="alice")
        query = AttributedName.file("/x")
        assert routing_key(query) == canonical_key(binding)

    def test_pathless_query_fans_out(self):
        assert routing_key(AttributedName.file(owner="alice")) is None

    def test_assign_covers_every_slot(self):
        shard_map = ShardMap.assign((0, 1, 2), n_slots=64)
        assert shard_map.n_slots == 64
        assert set(shard_map.owners) <= {0, 1, 2}
        assert shard_map.shard_ids == (0, 1, 2)

    def test_assign_is_deterministic(self):
        a = ShardMap.assign((0, 1, 2, 3), n_slots=64)
        b = ShardMap.assign((0, 1, 2, 3), n_slots=64)
        assert a.owners == b.owners

    def test_growth_moves_a_minority_of_slots(self):
        before = ShardMap.assign((0, 1, 2, 3), n_slots=256)
        after = ShardMap.assign((0, 1, 2, 3, 4), n_slots=256)
        moved = sum(1 for s in range(256) if before.owners[s] != after.owners[s])
        # consistent hashing: roughly 1/5 of slots move, never a majority
        assert 0 < moved < 128
        # and every moved slot moved *to* the new shard
        assert all(
            after.owners[s] == 4
            for s in range(256)
            if before.owners[s] != after.owners[s]
        )

    def test_moved_bumps_epoch(self):
        shard_map = ShardMap.assign((0, 1), n_slots=8)
        successor = shard_map.moved((0, 1), 1)
        assert successor.epoch == shard_map.epoch + 1
        assert successor.owner_of_slot(0) == 1
        assert successor.owner_of_slot(1) == 1


class TestRoutingEquivalence:
    """The sharded namespace behaves exactly like the flat service."""

    def test_bind_resolve_across_shards(self):
        namespace, _, shards, _, _ = make_namespace()
        for index in range(40):
            namespace.bind_path(f"/f{index}", sys_name(index))
        for index in range(40):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)
        # the bindings really are spread over more than one shard
        occupied = [sid for sid, shard in shards.items() if shard.size() > 0]
        assert len(occupied) > 1

    def test_wrong_shard_raises_out_of_band(self):
        _, manager, shards, _, _ = make_namespace()
        name = AttributedName.file("/x")
        slot = slot_of(canonical_key(name), manager.map.n_slots)
        owner = manager.map.owner_of_slot(slot)
        stranger = next(s for sid, s in shards.items() if sid != owner)
        with pytest.raises(WrongShardError) as exc:
            stranger.bind(name, sys_name(1))
        assert exc.value.slot == slot

    def test_pathless_resolve_fans_out_with_flat_arbitration(self):
        namespace, _, _, _, metrics = make_namespace()
        oracle = NamingService()
        for index in range(10):
            name = AttributedName.file(f"/d/f{index}", owner=f"u{index % 3}")
            namespace.bind(name, sys_name(index))
            oracle.bind(name, sys_name(index))
        query = AttributedName.file(owner="u1")
        with pytest.raises(NamingError):
            oracle.resolve(query)
        with pytest.raises(NamingError):
            namespace.resolve(query)
        assert metrics.get("naming_shard.fan_outs") > 0
        # a unique pathless match resolves identically
        unique = AttributedName.file(owner="only")
        bound = AttributedName.file("/solo", owner="only")
        namespace.bind(bound, sys_name(99))
        oracle.bind(bound, sys_name(99))
        assert namespace.resolve(unique) == oracle.resolve(unique)

    def test_missing_name_raises(self):
        namespace, _, _, _, _ = make_namespace()
        with pytest.raises(NameNotFoundError):
            namespace.resolve_path("/missing")

    def test_lookup_and_iteration_union(self):
        namespace, _, _, _, _ = make_namespace()
        names = [AttributedName.file(f"/u/f{i}", kind="t") for i in range(12)]
        for index, name in enumerate(names):
            namespace.bind(name, sys_name(index))
        assert len(namespace) == 12
        assert set(namespace) == set(names)
        found = namespace.lookup(AttributedName.file(kind="t"))
        assert {name for name, _ in found} == set(names)

    def test_list_directory_merges_shards(self):
        namespace, _, _, _, _ = make_namespace()
        for index in range(9):
            namespace.bind_path(f"/dir/f{index}", sys_name(index))
        flat = NamingService()
        for index in range(9):
            flat.bind_path(f"/dir/f{index}", sys_name(index))
        assert namespace.list_directory("/dir") == flat.list_directory("/dir")

    def test_unbind_path_routes_by_path_key(self):
        namespace, _, _, _, _ = make_namespace()
        namespace.bind_path("/gone", sys_name(7))
        assert namespace.unbind_path("/gone") == sys_name(7)
        with pytest.raises(NameNotFoundError):
            namespace.resolve_path("/gone")


class TestIdempotentDelivery:
    """The reply cache absorbs duplicated/retransmitted mutations."""

    def test_duplicate_bind_with_token_is_absorbed(self):
        _, manager, shards, _, _ = make_namespace()
        name = AttributedName.file("/dup")
        owner = shards[manager.map.owner_of(canonical_key(name))]
        owner.bind(name, sys_name(1), 42)
        owner.bind(name, sys_name(1), 42)  # the duplicate delivery
        assert owner.service.resolve(name) == sys_name(1)

    def test_duplicate_unbind_returns_the_recorded_target(self):
        _, manager, shards, _, _ = make_namespace()
        name = AttributedName.file("/dup")
        owner = shards[manager.map.owner_of(canonical_key(name))]
        owner.bind(name, sys_name(1), 1)
        assert owner.unbind(name, 2) == sys_name(1)
        assert owner.unbind(name, 2) == sys_name(1)  # duplicate
        with pytest.raises(NameNotFoundError):
            owner.unbind(name, 3)  # a *new* unbind still fails

    def test_untokened_calls_keep_flat_semantics(self):
        _, manager, shards, _, _ = make_namespace()
        name = AttributedName.file("/dup")
        owner = shards[manager.map.owner_of(canonical_key(name))]
        owner.bind(name, sys_name(1))
        from repro.common.errors import NameExistsError

        with pytest.raises(NameExistsError):
            owner.bind(name, sys_name(1))


class TestFailover:
    def test_read_fails_over_to_replica_peer(self):
        namespace, _, shards, _, metrics = make_namespace()
        for index in range(20):
            namespace.bind_path(f"/f{index}", sys_name(index))
        victim = max(shards, key=lambda sid: shards[sid].size())
        shards[victim].crash()
        for index in range(20):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)
        assert metrics.get("naming_shard.failovers") > 0

    def test_write_to_dead_shard_raises(self):
        namespace, manager, shards, _, _ = make_namespace()
        namespace.bind_path("/a", sys_name(1))
        name = AttributedName.file("/a")
        victim = manager.map.owner_of(canonical_key(name))
        shards[victim].crash()
        with pytest.raises(ShardDownError):
            namespace.rebind(name, sys_name(2))

    def test_restart_resyncs_from_peer(self):
        namespace, manager, shards, _, _ = make_namespace()
        for index in range(20):
            namespace.bind_path(f"/f{index}", sys_name(index))
        victim = max(shards, key=lambda sid: shards[sid].size())
        held = shards[victim].size()
        shards[victim].crash()
        manager.restart_shard(victim)
        assert shards[victim].size() == held
        for index in range(20):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)

    def test_single_shard_recovers_from_stable_snapshot(self):
        namespace, manager, shards, _, _ = make_namespace(n_shards=1)
        for index in range(5):
            namespace.bind_path(f"/f{index}", sys_name(index))
        shards[0].crash()
        manager.restart_shard(0)
        for index in range(5):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)

    def test_fan_out_survives_a_dead_shard(self):
        namespace, _, shards, _, _ = make_namespace()
        bound = AttributedName.file("/solo", owner="only")
        namespace.bind(bound, sys_name(3))
        victim = max(shards, key=lambda sid: shards[sid].size())
        shards[victim].crash()
        assert namespace.resolve(AttributedName.file(owner="only")) == sys_name(3)
        assert len(namespace) == 1


class TestRebalancing:
    def fill(self, namespace, count=30):
        for index in range(count):
            namespace.bind_path(f"/f{index}", sys_name(index))

    def test_split_to_a_new_shard(self):
        namespace, manager, shards, clock, metrics = make_namespace(n_shards=2)
        self.fill(namespace)
        spare = NamingShard(2, clock, metrics)
        manager.add_shard(spare)
        namespace.add_caller(2, direct_shard_caller(spare))
        slots = manager.begin_rebalance(2)
        assert slots  # the new shard's tokens capture something
        while not manager.rebalance_done:
            manager.step_rebalance(max_bindings=4)
        old_epoch = manager.map.epoch
        manager.complete_rebalance()
        assert manager.map.epoch == old_epoch + 1
        assert spare.size() > 0
        for index in range(30):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)
        assert len(namespace) == 30

    def test_writes_during_migration_are_not_lost(self):
        namespace, manager, shards, clock, metrics = make_namespace(n_shards=2)
        self.fill(namespace, 10)
        spare = NamingShard(2, clock, metrics)
        manager.add_shard(spare)
        namespace.add_caller(2, direct_shard_caller(spare))
        manager.begin_rebalance(2)
        # interleave fresh writes and unbinds with the stream
        namespace.bind_path("/during", sys_name(100))
        namespace.unbind_path("/f3")
        step = 0
        while not manager.rebalance_done:
            manager.step_rebalance(max_bindings=2)
            namespace.bind_path(f"/mid{step}", sys_name(200))
            step += 1
        manager.complete_rebalance()
        assert namespace.resolve_path("/during") == sys_name(100)
        with pytest.raises(NameNotFoundError):
            namespace.resolve_path("/f3")
        for index in range(10):
            if index == 3:
                continue
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)

    def test_reads_never_miss_mid_migration(self):
        namespace, manager, shards, clock, metrics = make_namespace(n_shards=2)
        self.fill(namespace, 25)
        spare = NamingShard(2, clock, metrics)
        manager.add_shard(spare)
        namespace.add_caller(2, direct_shard_caller(spare))
        manager.begin_rebalance(2)
        while not manager.rebalance_done:
            manager.step_rebalance(max_bindings=1)
            for index in range(25):  # every binding resolvable at every step
                assert namespace.resolve_path(f"/f{index}") == sys_name(index)
        manager.complete_rebalance()
        for index in range(25):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)

    def test_dead_destination_aborts_cleanly(self):
        namespace, manager, shards, clock, metrics = make_namespace(n_shards=2)
        self.fill(namespace, 20)
        spare = NamingShard(2, clock, metrics)
        manager.add_shard(spare)
        namespace.add_caller(2, direct_shard_caller(spare))
        manager.begin_rebalance(2)
        manager.step_rebalance(max_bindings=3)
        spare.crash()
        manager.step_rebalance(max_bindings=3)  # detects the death, aborts
        assert not manager.rebalance_in_flight
        assert metrics.get("naming_shard.migrations_aborted") == 1
        # sources kept sole ownership: everything still resolves
        for index in range(20):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)
        # and the aborted rebalance can be re-run after a restart
        manager.restart_shard(2)
        manager.begin_rebalance(2)
        while not manager.rebalance_done:
            manager.step_rebalance()
        manager.complete_rebalance()
        assert spare.size() > 0
        assert len(namespace) == 20

    def test_explicit_slot_migration(self):
        namespace, manager, shards, _, _ = make_namespace(n_shards=2, n_slots=8)
        self.fill(namespace, 16)
        donor = manager.map.owner_of_slot(0)
        receiver = next(sid for sid in shards if sid != donor)
        manager.begin_rebalance(receiver, slots=(0,))
        while not manager.rebalance_done:
            manager.step_rebalance()
        new_map = manager.complete_rebalance()
        assert new_map.owner_of_slot(0) == receiver
        for index in range(16):
            assert namespace.resolve_path(f"/f{index}") == sys_name(index)


class TestShardTimeline:
    def test_blocking_ops_serialize_on_one_shard(self):
        namespace, _, _, clock, _ = make_namespace(n_shards=1, service_us=250)
        before = clock.now_us
        namespace.bind_path("/a", sys_name(1))
        namespace.bind_path("/b", sys_name(2))
        assert clock.now_us == before + 500

    def test_zero_service_time_is_free(self):
        namespace, _, _, clock, _ = make_namespace(n_shards=2, service_us=0)
        namespace.bind_path("/a", sys_name(1))
        assert clock.now_us == 0


class TestPlacementPolicy:
    def test_fixed_always_first(self):
        policy = PlacementPolicy([2, 0, 1], "fixed")
        assert [policy.place() for _ in range(3)] == [0, 0, 0]

    def test_round_robin_cycles(self):
        policy = PlacementPolicy([0, 1, 2], "round_robin")
        assert [policy.place() for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_least_loaded_reads_the_gauges(self):
        metrics = Metrics()
        metrics.gauge("disk.0.queue_depth", 5)
        metrics.gauge("disk.1.queue_depth", 1)
        metrics.gauge("disk.2.queue_depth", 3)
        policy = PlacementPolicy([0, 1, 2], "least_loaded", metrics)
        assert policy.place() == 1
        metrics.gauge("disk.1.queue_depth", 9)
        assert policy.place() == 2

    def test_least_loaded_ties_break_by_volume_id(self):
        policy = PlacementPolicy([3, 1, 2], "least_loaded", Metrics())
        assert policy.place() == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(NamingError):
            PlacementPolicy([0], "random")
