"""Property test: the directory service against a dict-tree oracle."""

from hypothesis import given, settings, strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.errors import NameExistsError, NameNotFoundError, NamingError
from repro.simdisk.geometry import DiskGeometry

NAMES = ["a", "b", "c", "d"]


@st.composite
def directory_ops(draw):
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["mkdir", "create", "unlink", "rmdir", "rename", "list"]
            )
        )
        depth = draw(st.integers(min_value=1, max_value=3))
        path = "/" + "/".join(
            draw(st.sampled_from(NAMES)) for _ in range(depth)
        )
        other = "/" + "/".join(
            draw(st.sampled_from(NAMES))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        ops.append((kind, path, other))
    return ops


class _Oracle:
    """A plain dict-of-dicts model of the tree (files are None values)."""

    def __init__(self):
        self.root: dict = {}

    def _walk(self, path):
        parts = [p for p in path.split("/") if p]
        node = self.root
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                raise KeyError(path)
            node = child
        return node, (parts[-1] if parts else None)

    def mkdir(self, path):
        parent, leaf = self._walk(path)
        if leaf in parent:
            raise FileExistsError(path)
        parent[leaf] = {}

    def create(self, path):
        parent, leaf = self._walk(path)
        if leaf in parent:
            raise FileExistsError(path)
        parent[leaf] = None

    def unlink(self, path):
        parent, leaf = self._walk(path)
        if leaf not in parent or isinstance(parent[leaf], dict):
            raise KeyError(path)
        del parent[leaf]

    def rmdir(self, path):
        parent, leaf = self._walk(path)
        node = parent.get(leaf)
        if not isinstance(node, dict) or node:
            raise KeyError(path)
        del parent[leaf]

    def rename(self, old, new):
        old_parent, old_leaf = self._walk(old)
        if old_leaf not in old_parent:
            raise KeyError(old)
        new_parent, new_leaf = self._walk(new)
        if new_leaf in new_parent:
            raise FileExistsError(new)
        # Moving a directory under itself is undefined; the oracle and
        # the service both simply move the reference.
        new_parent[new_leaf] = old_parent.pop(old_leaf)

    def listing(self, path):
        parent, leaf = self._walk(path)
        node = parent[leaf] if leaf else self.root
        if not isinstance(node, dict):
            raise KeyError(path)
        return sorted(node)


class TestDirectoryOracle:
    @given(directory_ops())
    @settings(max_examples=25, deadline=None)
    def test_matches_dict_tree_oracle(self, ops):
        cluster = RhodosCluster(ClusterConfig(geometry=DiskGeometry.small()))
        service = cluster.directories
        oracle = _Oracle()
        for kind, path, other in ops:
            if kind == "rename" and (other == path or other.startswith(path + "/")):
                continue  # moving into itself: skip (undefined either way)
            service_error = oracle_error = False
            try:
                if kind == "mkdir":
                    service.mkdir(path)
                elif kind == "create":
                    service.create_file(path)
                elif kind == "unlink":
                    service.unlink(path)
                elif kind == "rmdir":
                    service.rmdir(path)
                elif kind == "rename":
                    service.rename(path, other)
                else:
                    listing = [e.name for e in service.list_directory(path)]
            except (NameExistsError, NameNotFoundError, NamingError):
                service_error = True
            try:
                if kind == "mkdir":
                    oracle.mkdir(path)
                elif kind == "create":
                    oracle.create(path)
                elif kind == "unlink":
                    oracle.unlink(path)
                elif kind == "rmdir":
                    oracle.rmdir(path)
                elif kind == "rename":
                    oracle.rename(path, other)
                else:
                    expected = oracle.listing(path)
            except (KeyError, FileExistsError):
                oracle_error = True
            assert service_error == oracle_error, (
                f"{kind} {path} {other}: service_error={service_error}, "
                f"oracle_error={oracle_error}"
            )
            if kind == "list" and not service_error:
                assert listing == expected
        # Final structural agreement.
        def compare(path, node):
            listing = [e.name for e in cluster.directories.list_directory(path)]
            assert listing == sorted(node)
            for name, child in node.items():
                if isinstance(child, dict):
                    compare(f"{path.rstrip('/')}/{name}", child)

        compare("/", oracle.root)
