"""The directory service: hierarchy stored in RHODOS files."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.errors import (
    NameExistsError,
    NameNotFoundError,
    NamingError,
)
from repro.naming.directory import DirectoryService
from repro.simdisk.geometry import DiskGeometry


@pytest.fixture
def cluster():
    return RhodosCluster(
        ClusterConfig(n_disks=2, geometry=DiskGeometry.small())
    )


@pytest.fixture
def directories(cluster):
    return cluster.directories


class TestStructure:
    def test_root_exists(self, directories):
        assert directories.exists("/")
        assert directories.is_directory("/")
        assert directories.list_directory("/") == []

    def test_mkdir_and_list(self, directories):
        directories.mkdir("/home")
        directories.mkdir("/home/raj")
        names = [entry.name for entry in directories.list_directory("/home")]
        assert names == ["raj"]
        assert directories.is_directory("/home/raj")

    def test_mkdir_needs_parent(self, directories):
        with pytest.raises(NameNotFoundError):
            directories.mkdir("/no/such/parent")

    def test_mkdir_duplicate_rejected(self, directories):
        directories.mkdir("/dup")
        with pytest.raises(NameExistsError):
            directories.mkdir("/dup")

    def test_deep_nesting(self, directories):
        path = ""
        for depth in range(8):
            path += f"/d{depth}"
            directories.mkdir(path)
        assert directories.exists(path)
        assert directories.list_directory(path) == []

    def test_entries_sorted(self, directories):
        for name in ("zeta", "alpha", "mid"):
            directories.mkdir(f"/{name}")
        assert [e.name for e in directories.list_directory("/")] == [
            "alpha",
            "mid",
            "zeta",
        ]

    def test_relative_components_rejected(self, directories):
        with pytest.raises(NamingError):
            directories.resolve("/a/../b")


class TestFiles:
    def test_create_resolve_roundtrip(self, cluster, directories):
        target = directories.create_file("/data.bin")
        cluster.file_servers[target.volume_id].write(target, 0, b"payload")
        resolved = directories.resolve("/data.bin")
        assert resolved == target
        assert cluster.file_servers[0].read(resolved, 0, 7) == b"payload"

    def test_create_on_chosen_volume(self, directories):
        target = directories.create_file("/on-one", volume_id=1)
        assert target.volume_id == 1

    def test_file_is_not_a_directory(self, directories):
        directories.create_file("/plain")
        assert not directories.is_directory("/plain")
        with pytest.raises(NamingError):
            directories.list_directory("/plain")
        with pytest.raises(NamingError):
            directories.resolve("/plain/child")

    def test_link_existing_file(self, cluster, directories):
        target = cluster.file_servers[0].create()
        cluster.file_servers[0].write(target, 0, b"shared")
        directories.mkdir("/a")
        directories.link("/a/one", target)
        directories.link("/a/two", target)  # hard-link style
        assert directories.resolve("/a/one") == directories.resolve("/a/two")

    def test_unlink_deletes_by_default(self, cluster, directories):
        target = directories.create_file("/victim")
        directories.unlink("/victim")
        assert not directories.exists("/victim")
        assert not cluster.file_servers[0].exists(target)

    def test_unlink_can_keep_the_file(self, cluster, directories):
        target = directories.create_file("/kept")
        returned = directories.unlink("/kept", delete_file=False)
        assert returned == target
        assert cluster.file_servers[0].exists(target)

    def test_unlink_directory_rejected(self, directories):
        directories.mkdir("/d")
        with pytest.raises(NamingError):
            directories.unlink("/d")


class TestRmdirRename:
    def test_rmdir_empty(self, directories):
        directories.mkdir("/gone")
        directories.rmdir("/gone")
        assert not directories.exists("/gone")

    def test_rmdir_nonempty_rejected(self, directories):
        directories.mkdir("/full")
        directories.create_file("/full/x")
        with pytest.raises(NamingError):
            directories.rmdir("/full")

    def test_rename_file(self, directories):
        directories.create_file("/old-name")
        directories.mkdir("/sub")
        directories.rename("/old-name", "/sub/new-name")
        assert not directories.exists("/old-name")
        assert directories.exists("/sub/new-name")

    def test_rename_directory_moves_subtree(self, directories):
        directories.mkdir("/src")
        directories.create_file("/src/inner")
        directories.rename("/src", "/dst")
        assert directories.exists("/dst/inner")
        assert not directories.exists("/src")

    def test_walk(self, directories):
        directories.mkdir("/a")
        directories.mkdir("/a/b")
        directories.create_file("/a/b/leaf")
        visited = {path: [e.name for e in entries] for path, entries in directories.walk("/")}
        assert visited["/"] == ["a"]
        assert visited["/a"] == ["b"]
        assert visited["/a/b"] == ["leaf"]


class TestDurability:
    def test_tree_survives_crash_and_new_service_instance(self, cluster, directories):
        directories.mkdir("/projects")
        target = directories.create_file("/projects/paper.tex")
        cluster.file_servers[0].write(target, 0, b"\\documentclass{article}")
        cluster.flush_all()
        cluster.crash_volume(0)
        cluster.recover_volume(0)
        fresh = DirectoryService(cluster.naming, cluster.router, cluster.metrics)
        resolved = fresh.resolve("/projects/paper.tex")
        assert cluster.file_servers[0].read(resolved, 0, 14) == b"\\documentclass"

    def test_directory_shrink_leaves_valid_encoding(self, directories):
        """Removing entries shrinks the JSON; stale tail bytes must not
        corrupt later reads."""
        for index in range(10):
            directories.mkdir(f"/d{index:02d}")
        for index in range(10):
            directories.rmdir(f"/d{index:02d}")
        assert directories.list_directory("/") == []
        directories.mkdir("/fresh")
        assert [e.name for e in directories.list_directory("/")] == ["fresh"]
