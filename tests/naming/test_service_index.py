"""Satellite: the inverted attribute index against a linear-scan oracle.

``NamingService.resolve``/``lookup`` historically scanned every binding
per query.  PR 10 replaced the scan with a per-attribute inverted index
(posting lists keyed by ``(type, key, value)``).  This defeated-lane
test proves the optimisation invisible: a shadow implementation of the
original full scan answers every query identically — same matches,
same order, same errors — over random bind/unbind/query scripts.
"""

from hypothesis import given, settings, strategies as st

from repro.common.errors import NameNotFoundError, NamingError
from repro.common.ids import SystemName
from repro.naming.attributed import AttributedName, ObjectType
from repro.naming.service import NamingService

KEYS = ["path", "owner", "kind", "room"]
VALUES = ["a", "b", "c"]


def linear_scan_matches(service, query):
    """The defeated lane: the pre-index algorithm, verbatim semantics."""
    return [
        (name, target)
        for name, target in service._bindings.items()
        if name.matches(query)
    ]


def linear_scan_resolve(service, query):
    matches = linear_scan_matches(service, query)
    for name, target in matches:
        if name == query:
            return target
    if not matches:
        raise NameNotFoundError(f"nothing matches {query}")
    if len(matches) > 1:
        raise NamingError(f"{query} is ambiguous")
    return matches[0][1]


@st.composite
def naming_scripts(draw):
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for index in range(n_ops):
        kind = draw(st.sampled_from(["bind", "unbind", "rebind", "query"]))
        n_attrs = draw(st.integers(min_value=1, max_value=3))
        attrs = {}
        for _ in range(n_attrs):
            key = draw(st.sampled_from(KEYS))
            attrs[key] = draw(st.sampled_from(VALUES))
        ops.append((kind, attrs, index))
    return ops


@given(naming_scripts())
@settings(max_examples=120, deadline=None)
def test_index_matches_linear_scan(script):
    service = NamingService()
    for kind, attrs, index in script:
        name = AttributedName(ObjectType.FILE, attrs)
        target = SystemName(0, index, 1)
        if kind == "bind":
            try:
                service.bind(name, target)
            except Exception:
                pass
        elif kind == "rebind":
            service.rebind(name, target)
        elif kind == "unbind":
            try:
                service.unbind(name)
            except NameNotFoundError:
                pass
        else:
            # The query: indexed lookup == full scan, order included.
            assert service.lookup(name) == linear_scan_matches(service, name)
            try:
                expected = linear_scan_resolve(service, name)
            except NamingError as exc:
                try:
                    service.resolve(name)
                except NamingError as got:
                    assert type(got) is type(exc)
                else:
                    raise AssertionError("index resolve missed an error")
            else:
                assert service.resolve(name) == expected
    # Closing sweep: every subset query, single- and multi-attribute.
    for key in KEYS:
        for value in VALUES:
            query = AttributedName(ObjectType.FILE, {key: value})
            assert service.lookup(query) == linear_scan_matches(service, query)


@given(naming_scripts())
@settings(max_examples=60, deadline=None)
def test_index_survives_codec_round_trip(script):
    service = NamingService()
    for kind, attrs, index in script:
        name = AttributedName(ObjectType.FILE, attrs)
        if kind in ("bind", "rebind"):
            service.rebind(name, SystemName(0, index, 1))
        elif kind == "unbind":
            try:
                service.unbind(name)
            except NameNotFoundError:
                pass
    restored = NamingService.from_bytes(service.to_bytes())
    for key in KEYS:
        for value in VALUES:
            query = AttributedName(ObjectType.FILE, {key: value})
            assert restored.lookup(query) == service.lookup(query)
