"""Satellite: the naming codec round-trips under partition.

Over random bind/unbind scripts, dump the sharded namespace per shard
and prove three partition invariants against the unsharded oracle:

1. each shard's blob round-trips through the flat codec unchanged;
2. the shards' binding sets are pairwise disjoint;
3. their union equals the oracle's binding set, target for target.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import NameNotFoundError, NamingError
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.naming.attributed import AttributedName, ObjectType
from repro.naming.service import NamingService
from repro.naming.shard import NamingShard, ShardedNamespace, ShardManager
from repro.agents.shard_routing import direct_shard_caller

PATHS = [f"/d{d}/f{f}" for d in range(3) for f in range(4)]
OWNERS = ["alice", "bob"]


def make_namespace(n_shards=3):
    clock = SimClock()
    metrics = Metrics()
    shards = {
        shard_id: NamingShard(shard_id, clock, metrics)
        for shard_id in range(n_shards)
    }
    manager = ShardManager(shards, metrics=metrics)
    namespace = ShardedNamespace(
        {sid: direct_shard_caller(shard) for sid, shard in shards.items()},
        manager.get_map,
        peer_of=manager.peer_id_of,
        metrics=metrics,
    )
    return namespace, shards


@st.composite
def binding_scripts(draw):
    n_ops = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for index in range(n_ops):
        kind = draw(st.sampled_from(["bind", "bind", "rebind", "unbind"]))
        path = draw(st.sampled_from(PATHS))
        owner = draw(st.sampled_from(OWNERS))
        ops.append((kind, path, owner, index))
    return ops


def apply_script(target_service, script):
    for kind, path, owner, index in script:
        name = AttributedName.file(path, owner=owner)
        sys = SystemName(0, index, 1)
        if kind == "bind":
            try:
                target_service.bind(name, sys)
            except Exception:
                pass
        elif kind == "rebind":
            target_service.rebind(name, sys)
        else:
            try:
                target_service.unbind(name)
            except NameNotFoundError:
                pass


def bindings_of(service):
    return {name: service.resolve(name) for name in service}


@given(binding_scripts(), st.integers(min_value=1, max_value=5))
@settings(max_examples=80, deadline=None)
def test_partition_round_trips_against_the_flat_oracle(script, n_shards):
    namespace, shards = make_namespace(n_shards)
    oracle = NamingService()
    apply_script(namespace, script)
    apply_script(oracle, script)

    restored_union = {}
    seen_keys = set()
    for shard_id, blob in sorted(namespace.shard_dumps().items()):
        part = NamingService.from_bytes(blob)
        # (1) each fragment round-trips bit-exactly through the codec
        assert part.to_bytes() == blob
        local = bindings_of(part)
        assert local == bindings_of(shards[shard_id].service)
        # (2) pairwise disjoint: no name lives on two shards
        assert seen_keys.isdisjoint(local)
        seen_keys.update(local)
        restored_union.update(local)

    # (3) union == the unsharded oracle, targets included
    assert restored_union == bindings_of(oracle)
    # and the router's merged codec view equals the oracle's own blob
    assert NamingService.from_bytes(namespace.to_bytes())._bindings == dict(
        oracle._bindings
    )


@given(binding_scripts())
@settings(max_examples=40, deadline=None)
def test_whole_namespace_codec_is_flat_compatible(script):
    namespace, _ = make_namespace(3)
    oracle = NamingService()
    apply_script(namespace, script)
    apply_script(oracle, script)
    restored = NamingService.from_bytes(namespace.to_bytes())
    assert bindings_of(restored) == bindings_of(oracle)
    for path in PATHS:
        try:
            expected = oracle.resolve_path(path)
        except NamingError as exc:  # not-found or ambiguous alike
            with pytest.raises(type(exc)):
                restored.resolve_path(path)
            continue
        assert restored.resolve_path(path) == expected
