"""Transactional directories: atomic multi-entry namespace updates."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.errors import (
    DiskCrashedError,
    NameExistsError,
    NameNotFoundError,
)
from repro.naming.tdirectory import TransactionalDirectory
from repro.simdisk.geometry import DiskGeometry


@pytest.fixture
def cluster():
    return RhodosCluster(ClusterConfig(geometry=DiskGeometry.medium()))


@pytest.fixture
def tdir(cluster):
    return TransactionalDirectory(
        cluster.directories, cluster.machine.transactions
    )


class TestBasics:
    def test_mkdir_and_create(self, cluster, tdir):
        tdir.mkdir("/projects")
        target = tdir.create_file("/projects/paper")
        assert cluster.directories.resolve("/projects/paper") == target

    def test_plain_service_sees_committed_changes(self, cluster, tdir):
        tdir.mkdir("/a")
        entries = cluster.directories.list_directory("/")
        assert [e.name for e in entries] == ["a"]

    def test_unlink_and_rmdir(self, cluster, tdir):
        tdir.mkdir("/d")
        tdir.create_file("/d/f")
        tdir.unlink("/d/f")
        tdir.rmdir("/d")
        assert cluster.directories.list_directory("/") == []

    def test_rename_across_directories(self, cluster, tdir):
        tdir.mkdir("/src")
        tdir.mkdir("/dst")
        tdir.create_file("/src/f")
        tdir.rename("/src/f", "/dst/g")
        assert not cluster.directories.exists("/src/f")
        assert cluster.directories.exists("/dst/g")

    def test_rename_within_directory(self, cluster, tdir):
        tdir.create_file("/old")
        tdir.rename("/old", "/new")
        assert cluster.directories.exists("/new")
        assert not cluster.directories.exists("/old")

    def test_duplicate_rejected(self, tdir):
        tdir.create_file("/f")
        with pytest.raises(NameExistsError):
            tdir.create_file("/f")

    def test_missing_rejected(self, tdir):
        with pytest.raises(NameNotFoundError):
            tdir.unlink("/ghost")


class TestAtomicity:
    def test_failed_batch_leaves_no_trace(self, cluster, tdir):
        """An exception inside the batch aborts everything."""
        tdir.mkdir("/a")
        with pytest.raises(RuntimeError):
            with tdir.transaction() as view:
                view.create_file("/a/one")
                view.create_file("/a/two")
                raise RuntimeError("business logic failed")
        assert cluster.directories.list_directory("/a") == []

    def test_batch_commits_together(self, cluster, tdir):
        with tdir.transaction() as view:
            view.mkdir("/batch")
            view.create_file("/batch/x")
            view.write_file("/batch/x", 0, b"payload")
            view.rename("/batch/x", "/batch/y")
            # Inside the transaction the view sees its own state...
            assert [e.name for e in view.list_directory("/batch")] == ["y"]
            # ...while the outside world sees nothing yet.
            assert not cluster.directories.exists("/batch")
        resolved = cluster.directories.resolve("/batch/y")
        assert cluster.file_servers[0].read(resolved, 0, 7) == b"payload"

    @pytest.mark.parametrize("crash_at_write", range(1, 10))
    def test_rename_is_crash_atomic(self, crash_at_write):
        """Crash at every commit write position during a cross-directory
        rename: afterwards the entry exists in exactly one place."""
        cluster = RhodosCluster(ClusterConfig(geometry=DiskGeometry.medium()))
        tdir = TransactionalDirectory(
            cluster.directories, cluster.machine.transactions
        )
        tdir.mkdir("/src")
        tdir.mkdir("/dst")
        tdir.create_file("/src/f")
        cluster.disks[0].faults.crash_after_writes(crash_at_write)
        try:
            tdir.rename("/src/f", "/dst/f")
        except DiskCrashedError:
            pass
        cluster.disks[0].repair()
        cluster.coordinator.recover_volume(0)
        in_src = cluster.directories.exists("/src/f")
        in_dst = cluster.directories.exists("/dst/f")
        assert in_src != in_dst, (
            f"crash at write {crash_at_write}: entry in src={in_src}, "
            f"dst={in_dst} — rename was not atomic"
        )

    def test_concurrent_mutators_serialise(self, cluster, tdir):
        """A second transaction touching the same directory blocks."""
        from repro.simkernel.runner import LockWaitPending

        host = cluster.machine.transactions
        tdir.mkdir("/shared")
        tid = host.tbegin()
        from repro.naming.tdirectory import _TxnView

        view = _TxnView(tdir, tid)
        view.create_file("/shared/first")
        other = host.tbegin()
        other_view = _TxnView(tdir, other)
        with pytest.raises(LockWaitPending):
            other_view.create_file("/shared/second")
        host.tend(tid)
        host.tabort(other)
