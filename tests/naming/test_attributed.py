"""Attributed names: structure, matching, immutability."""

import pytest

from repro.naming.attributed import AttributedName, ObjectType


class TestConstruction:
    def test_file_builder(self):
        name = AttributedName.file("/docs/a.txt", owner="raj")
        assert name.object_type is ObjectType.FILE
        assert name.get("path") == "/docs/a.txt"
        assert name.get("owner") == "raj"

    def test_tty_builder(self):
        name = AttributedName.tty("console0")
        assert name.object_type is ObjectType.TTY
        assert name.get("device") == "console0"

    def test_needs_at_least_one_attribute(self):
        with pytest.raises(ValueError):
            AttributedName(ObjectType.FILE, {})

    def test_attribute_types_enforced(self):
        with pytest.raises(TypeError):
            AttributedName(ObjectType.FILE, {"size": 42})  # type: ignore[dict-item]

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            AttributedName(ObjectType.FILE, {"": "x"})


class TestEquality:
    def test_order_independent(self):
        a = AttributedName(ObjectType.FILE, {"x": "1", "y": "2"})
        b = AttributedName(ObjectType.FILE, {"y": "2", "x": "1"})
        assert a == b
        assert hash(a) == hash(b)

    def test_type_distinguishes(self):
        a = AttributedName(ObjectType.FILE, {"name": "n"})
        b = AttributedName(ObjectType.TTY, {"name": "n"})
        assert a != b

    def test_usable_as_dict_key(self):
        table = {AttributedName.file("/a"): 1}
        assert table[AttributedName.file("/a")] == 1


class TestMatching:
    def test_subset_matches(self):
        binding = AttributedName.file("/a", owner="raj", project="dff")
        query = AttributedName.file(owner="raj")
        assert binding.matches(query)

    def test_superset_does_not_match(self):
        binding = AttributedName.file(owner="raj")
        query = AttributedName.file(owner="raj", project="dff")
        assert not binding.matches(query)

    def test_value_mismatch(self):
        binding = AttributedName.file(owner="raj")
        assert not binding.matches(AttributedName.file(owner="ann"))

    def test_type_mismatch_never_matches(self):
        binding = AttributedName.file(name="x")
        query = AttributedName(ObjectType.TTY, {"name": "x"})
        assert not binding.matches(query)

    def test_with_attributes_extends(self):
        base = AttributedName.file("/a")
        extended = base.with_attributes(replica="2")
        assert extended.get("replica") == "2"
        assert extended.get("path") == "/a"
        assert base.get("replica") is None  # original untouched

    def test_iteration_sorted(self):
        name = AttributedName.file(z="1", a="2")
        assert list(name) == [("a", "2"), ("z", "1")]
