"""The naming service: binding, resolution, search, persistence."""

import pytest

from repro.common.errors import NameExistsError, NameNotFoundError, NamingError
from repro.common.ids import SystemName
from repro.naming.attributed import AttributedName, ObjectType
from repro.naming.service import NamingService


@pytest.fixture
def service():
    return NamingService()


SYS = SystemName(0, 100, 1)
SYS2 = SystemName(1, 200, 1)


class TestBinding:
    def test_bind_resolve(self, service):
        name = AttributedName.file("/a")
        service.bind(name, SYS)
        assert service.resolve(name) == SYS

    def test_duplicate_bind_rejected(self, service):
        name = AttributedName.file("/a")
        service.bind(name, SYS)
        with pytest.raises(NameExistsError):
            service.bind(name, SYS2)

    def test_rebind_replaces(self, service):
        name = AttributedName.file("/a")
        service.bind(name, SYS)
        service.rebind(name, SYS2)
        assert service.resolve(name) == SYS2

    def test_unbind(self, service):
        name = AttributedName.file("/a")
        service.bind(name, SYS)
        assert service.unbind(name) == SYS
        with pytest.raises(NameNotFoundError):
            service.resolve(name)

    def test_unbind_missing(self, service):
        with pytest.raises(NameNotFoundError):
            service.unbind(AttributedName.file("/missing"))

    def test_file_names_must_bind_system_names(self, service):
        with pytest.raises(NamingError):
            service.bind(AttributedName.file("/a"), "a-device")

    def test_tty_names_must_bind_device_strings(self, service):
        with pytest.raises(NamingError):
            service.bind(AttributedName.tty("kbd"), SYS)

    def test_container_protocol(self, service):
        name = AttributedName.file("/a")
        assert name not in service
        service.bind(name, SYS)
        assert name in service
        assert len(service) == 1


class TestResolution:
    def test_subset_resolution(self, service):
        """The point of attributed naming: partial queries resolve."""
        service.bind(AttributedName.file("/a", owner="raj", lang="en"), SYS)
        assert service.resolve(AttributedName.file(owner="raj")) == SYS

    def test_ambiguous_subset_is_an_error(self, service):
        service.bind(AttributedName.file("/a", owner="raj"), SYS)
        service.bind(AttributedName.file("/b", owner="raj"), SYS2)
        with pytest.raises(NamingError, match="ambiguous"):
            service.resolve(AttributedName.file(owner="raj"))

    def test_exact_match_beats_ambiguity(self, service):
        exact = AttributedName.file(owner="raj")
        service.bind(exact, SYS)
        service.bind(AttributedName.file("/b", owner="raj"), SYS2)
        assert service.resolve(exact) == SYS

    def test_resolve_file_type_checks(self, service):
        service.bind(AttributedName.tty("kbd"), "m0:kbd")
        with pytest.raises(NamingError):
            service.resolve_file(AttributedName.tty("kbd"))

    def test_lookup_returns_all_matches(self, service):
        service.bind(AttributedName.file("/a", owner="raj"), SYS)
        service.bind(AttributedName.file("/b", owner="raj"), SYS2)
        matches = service.lookup(AttributedName.file(owner="raj"))
        assert len(matches) == 2


class TestPathHelpers:
    def test_bind_and_resolve_path(self, service):
        service.bind_path("/docs/readme.md", SYS)
        assert service.resolve_path("/docs/readme.md") == SYS

    def test_path_normalisation(self, service):
        service.bind_path("docs//x", SYS)
        assert service.resolve_path("/docs/x") == SYS

    def test_unbind_path(self, service):
        service.bind_path("/a/b", SYS, owner="raj")
        assert service.unbind_path("/a/b") == SYS

    def test_list_directory(self, service):
        service.bind_path("/docs/a.txt", SYS)
        service.bind_path("/docs/sub/b.txt", SYS2)
        service.bind_path("/other/c.txt", SystemName(0, 300, 1))
        assert service.list_directory("/docs") == ["a.txt", "sub"]


class TestPersistence:
    def test_round_trip(self, service):
        service.bind(AttributedName.file("/a", owner="raj"), SYS)
        service.bind(AttributedName.tty("kbd"), "m0:kbd")
        restored = NamingService.from_bytes(service.to_bytes())
        assert restored.resolve(AttributedName.file("/a", owner="raj")) == SYS
        assert restored.resolve(AttributedName.tty("kbd")) == "m0:kbd"
        assert len(restored) == 2
