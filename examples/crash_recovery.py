#!/usr/bin/env python
"""Crash in the middle of a commit — and walk away unharmed.

The reliability half of the paper: tentative data items, the
intentions list, the intention flag on mirrored stable storage, and
idempotent redo.  The disk is crashed at *every* write position inside
a committing transaction; after each crash the volume recovers and the
file is verified to hold entirely-old or entirely-new data, never a
mixture.

Run:  python examples/crash_recovery.py
"""

from repro import AttributedName, ClusterConfig, LockingLevel, RhodosCluster
from repro.common.errors import DiskCrashedError
from repro.common.units import BLOCK_SIZE

FILE = AttributedName.file("/db/table")
OLD = b"O" * (2 * BLOCK_SIZE)
NEW = b"N" * (2 * BLOCK_SIZE)


def one_crash_run(crash_at_write: int) -> str:
    cluster = RhodosCluster(ClusterConfig())
    host = cluster.machine.transactions
    server = cluster.file_servers[0]

    tid = host.tbegin()
    fd = host.tcreate(tid, FILE, locking_level=LockingLevel.PAGE)
    host.twrite(tid, fd, OLD)
    host.tend(tid)
    name = cluster.naming.resolve_file(FILE)

    tid = host.tbegin()
    fd = host.topen(tid, FILE)
    host.tpwrite(tid, fd, NEW, 0)
    cluster.disks[0].faults.crash_after_writes(crash_at_write)
    crashed = "no crash reached"
    try:
        host.tend(tid)
    except DiskCrashedError:
        crashed = f"crashed at write #{crash_at_write}"

    cluster.disks[0].repair()
    redone, discarded = cluster.coordinator.recover_volume(0)
    content = server.read(name, 0, len(OLD))
    if content == OLD:
        state = "OLD  (transaction aborted cleanly)"
    elif content == NEW:
        state = "NEW  (intentions redone from stable storage)"
    else:
        state = "CORRUPT — atomicity violated!"
    return f"{crashed:28s} redo={redone} discard={discarded}  -> {state}"


def main() -> None:
    print("Crashing the data disk at every write position inside a commit:\n")
    for crash_at in range(1, 13):
        print(f"  k={crash_at:2d}: {one_crash_run(crash_at)}")
    print(
        "\nEvery run ends entirely-old or entirely-new: the intention\n"
        "flag on stable storage is the commit point, and both the WAL\n"
        "and shadow-page redo paths are idempotent."
    )


if __name__ == "__main__":
    main()
