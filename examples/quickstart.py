#!/usr/bin/env python
"""Quickstart: a complete RHODOS system in a few lines.

Builds a one-machine, one-disk cluster, creates a file under an
attributed name, writes and reads it through the file agent, inspects
its attributes, and shows the disk-reference accounting behind the
paper's headline claim (files <= 512 KB read cold in two references).

Run:  python examples/quickstart.py
"""

from repro import AttributedName, ClusterConfig, RhodosCluster


def main() -> None:
    cluster = RhodosCluster(ClusterConfig(n_machines=1, n_disks=1))
    agent = cluster.machine.file_agent

    # Files are named by attributes, not just paths; the naming service
    # resolves any unambiguous subset of them.
    name = AttributedName.file("/docs/hello.txt", owner="raj", project="dff")
    fd = agent.create(name)
    print(f"created {name} -> object descriptor {fd} (> 100000: a file)")

    agent.write(fd, b"Hello from the RHODOS distributed file facility!\n")
    agent.write(fd, b"Fragments are 2 KB, blocks are 8 KB.\n")
    agent.lseek(fd, 0)
    print(agent.read(fd, 4096).decode(), end="")

    attrs = agent.get_attribute(fd)
    print(f"size={attrs.file_size}B  opens={attrs.open_count_total}")
    agent.close(fd)

    # Resolve by attribute subset: owner alone is unambiguous here.
    fd = agent.open(AttributedName.file(owner="raj"))
    print("reopened by {owner=raj}:", agent.read(fd, 5).decode(), "...")
    agent.close(fd)

    # The two-disk-references claim, measured live.
    big = agent.create(AttributedName.file("/docs/big.bin"))
    agent.write(big, b"\x42" * (512 * 1024))
    agent.close(big)
    cluster.flush_all()
    cluster.file_servers[0].recover()  # cold caches
    before = cluster.total_disk_references()
    fd = agent.open(AttributedName.file("/docs/big.bin"))
    data = cluster.file_servers[0].read(agent.system_name(fd), 0, 512 * 1024)
    print(
        f"cold read of a {len(data) // 1024} KB file took "
        f"{cluster.total_disk_references() - before} disk references "
        "(1 FIT + 1 contiguous data run)"
    )
    agent.close(fd)
    print(f"simulated time elapsed: {cluster.clock.now_ms:.1f} ms")


if __name__ == "__main__":
    main()
