#!/usr/bin/env python
"""Idempotent file operations over a hostile network.

Section 3 of the paper: duplicated or re-executed operations "do not
produce any uncertain effect" because every message between the agents
and the servers is idempotent.  This example runs the same workload
over a clean bus and over one that loses and duplicates messages, and
shows the final file bytes are identical — while the metrics prove the
faults really happened.

Run:  python examples/lossy_network.py
"""

from repro import AttributedName, ClusterConfig, FaultProfile, RhodosCluster
from repro.simdisk.geometry import DiskGeometry

TARGET = AttributedName.file("/inbox/mail.spool")


def run(profile: FaultProfile, seed: int = 7) -> tuple[bytes, dict]:
    cluster = RhodosCluster(
        ClusterConfig(
            geometry=DiskGeometry.small(),
            fault_profile=profile,
            seed=seed,
            client_cache_blocks=0,  # force every operation onto the wire
        )
    )
    agent = cluster.machine.file_agent
    fd = agent.create(TARGET)
    for index in range(25):
        agent.pwrite(fd, f"message {index:02d}\n".encode(), index * 11)
    agent.close(fd)
    fd = agent.open(TARGET)
    state = agent.read(fd, 25 * 11)
    agent.close(fd)
    stats = {
        "messages": cluster.metrics.get("rpc.messages"),
        "retransmissions": cluster.metrics.get("rpc.retransmissions"),
        "duplicate executions": cluster.metrics.get("rpc.duplicated_executions"),
        "simulated ms": round(cluster.clock.now_ms),
    }
    return state, stats


def main() -> None:
    clean_state, clean_stats = run(FaultProfile.reliable())
    print("clean network:   ", clean_stats)

    hostile = FaultProfile(request_loss=0.2, reply_loss=0.2, duplication=0.2)
    faulty_state, faulty_stats = run(hostile)
    print("hostile network: ", faulty_stats)

    print(
        "\nfinal file state identical:",
        faulty_state == clean_state,
    )
    print(
        f"({faulty_stats['retransmissions']} retransmissions and "
        f"{faulty_stats['duplicate executions']} duplicate executions "
        "later, the bytes are the same — idempotency at work)"
    )


if __name__ == "__main__":
    main()
