#!/usr/bin/env python
"""Concurrent bank transfers under the RHODOS transaction service.

Demonstrates the workload the paper's transaction machinery exists
for: many clients transferring money between accounts of one file,
with record-level two-phase locking, deliberate deadlocks resolved by
the LT/N timeout policy, and the money-conservation invariant checked
at the end.

Run:  python examples/bank_transactions.py
"""

from repro import (
    AttributedName,
    ClusterConfig,
    InterleavedRunner,
    RhodosCluster,
    TimeoutPolicy,
)
from repro.workloads.transactions import (
    deadlock_pair_scripts,
    make_accounts_file,
    random_transfer_mix,
    total_balance,
)

N_ACCOUNTS = 200
INITIAL = 1000
N_CLIENTS = 8
TRANSFERS_EACH = 5

ACCOUNTS = AttributedName.file("/bank/accounts")


def make_runner(cluster):
    """Wire the interleaved runner to the lock-timeout machinery."""

    def on_stall(now):
        next_expiry = cluster.coordinator.next_expiry_us()
        if next_expiry is None:
            return False
        cluster.clock.advance_to(next_expiry)
        cluster.coordinator.expire_locks(cluster.clock.now_us)
        return True

    return InterleavedRunner(
        cluster.clock,
        think_time_us=150,
        on_stall=on_stall,
        on_step=lambda now: cluster.coordinator.expire_locks(now),
    )


def main() -> None:
    cluster = RhodosCluster(
        ClusterConfig(timeout_policy=TimeoutPolicy(lt_us=400_000, max_renewals=4))
    )
    host = cluster.machine.transactions
    print("transaction agent exists before first tbegin:", host.agent_exists)
    make_accounts_file(host, ACCOUNTS, N_ACCOUNTS, initial_balance=INITIAL)
    print("transaction agent exists after last tend:   ", host.agent_exists)
    print(f"seeded {N_ACCOUNTS} accounts x {INITIAL}")

    # Part 1: a genuine deadlock — two transfers locking the same pair
    # in opposite orders — broken by the timeout policy.
    runner = make_runner(cluster)
    forward, backward = deadlock_pair_scripts(host, ACCOUNTS, 1, 2)
    runner.add_client(forward, repeats=2)
    runner.add_client(backward, repeats=2)
    report = runner.run()
    print(
        f"\ndeadlock pair: {report.total_commits} commits, "
        f"{report.total_aborts} timeout abort(s), "
        f"{report.total_lock_waits} lock waits"
    )

    # Part 2: a contended mix over a small hot set.
    runner = make_runner(cluster)
    for script in random_transfer_mix(
        host, ACCOUNTS, N_ACCOUNTS, N_CLIENTS, hot_accounts=10, seed=42
    ):
        runner.add_client(script, repeats=TRANSFERS_EACH)
    report = runner.run()
    print(
        f"hot-set mix:  {report.total_commits} commits, "
        f"{report.total_aborts} aborts, throughput "
        f"{report.throughput_per_s():.1f} txn/s (simulated)"
    )

    final = total_balance(host, ACCOUNTS, N_ACCOUNTS)
    print(f"\ninvariant: total balance = {final} "
          f"({'CONSERVED' if final == N_ACCOUNTS * INITIAL else 'VIOLATED!'})")
    timeouts = cluster.metrics.total("lock_manager.0.timeout_aborts")
    print(f"lock timeouts fired: {timeouts}")
    print(f"simulated time: {cluster.clock.now_ms / 1000:.2f} s")


if __name__ == "__main__":
    main()
