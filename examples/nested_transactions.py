#!/usr/bin/env python
"""Nested transactions and the transactional namespace.

Section 6.4 of the paper acknowledges that "a transaction can also
take a long time if it is nested" — so RHODOS anticipated nesting.
This example shows a travel-booking pattern: a parent transaction
books a trip; each leg is attempted in a nested child, so a failed leg
aborts alone while successful legs ride the parent's commit.  The
second half shows the transactional directory layer: a batch of
namespace changes that lands atomically or not at all.

Run:  python examples/nested_transactions.py
"""

from repro import (
    AttributedName,
    ClusterConfig,
    LockingLevel,
    RhodosCluster,
    TransactionalDirectory,
)

LEDGER = AttributedName.file("/bookings/ledger")


def main() -> None:
    cluster = RhodosCluster(ClusterConfig())
    host = cluster.machine.transactions

    # Seed a bookings ledger.
    tid = host.tbegin()
    fd = host.tcreate(tid, LEDGER, locking_level=LockingLevel.RECORD)
    host.twrite(tid, fd, b"# bookings ledger\n")
    host.tend(tid)

    # --- nested transactions: book a trip leg by leg ------------------
    trip = host.tbegin()
    trip_fd = host.topen(trip, LEDGER)

    def book_leg(description: bytes, *, fails: bool) -> bool:
        leg = host.tbegin(parent=trip)
        leg_fd = host.topen(leg, LEDGER)
        end = host.tlseek(leg, leg_fd, 0, 2)  # SEEK_END within the family
        host.tpwrite(leg, leg_fd, description, end)
        if fails:
            host.tabort(leg)  # only this leg's writes are discarded
            return False
        host.tend(leg)  # merged into the parent, not yet durable
        return True

    print("booking flight:", book_leg(b"flight OOL->MEL  $120\n", fails=False))
    print("booking hotel: ", book_leg(b"hotel Geelong    $480\n", fails=True))
    print("booking train: ", book_leg(b"train MEL->GEE   $12\n", fails=False))

    # The parent sees the two successful legs; the hotel is gone.
    size = host.tlseek(trip, trip_fd, 0, 2)
    preview = host.tpread(trip, trip_fd, size, 0)
    print("\nparent's view before commit:")
    print(preview.decode(), end="")
    host.tend(trip)  # one durable commit for the whole trip

    agent = cluster.machine.file_agent
    fd = agent.open(LEDGER)
    print("durable ledger after commit:")
    print(agent.read(fd, 4096).decode(), end="")
    agent.close(fd)

    # --- transactional namespace batch --------------------------------
    tdir = cluster.transactional_directories()
    tdir.mkdir("/inbox")
    tdir.mkdir("/archive")
    tdir.create_file("/inbox/msg1")
    tdir.create_file("/inbox/msg2")
    try:
        with tdir.transaction() as view:
            view.rename("/inbox/msg1", "/archive/msg1")
            view.rename("/inbox/msg2", "/archive/msg2")
            raise RuntimeError("operator hit Ctrl-C mid-batch!")
    except RuntimeError:
        pass
    print("\nafter the aborted batch, nothing moved:")
    print("  /inbox  :", [e.name for e in cluster.directories.list_directory("/inbox")])
    print("  /archive:", [e.name for e in cluster.directories.list_directory("/archive")])

    with tdir.transaction() as view:
        view.rename("/inbox/msg1", "/archive/msg1")
        view.rename("/inbox/msg2", "/archive/msg2")
    print("after the committed batch, both moved atomically:")
    print("  /inbox  :", [e.name for e in cluster.directories.list_directory("/inbox")])
    print("  /archive:", [e.name for e in cluster.directories.list_directory("/archive")])


if __name__ == "__main__":
    main()
