#!/usr/bin/env python
"""Processes, devices, redirection, and mediumweight children.

The client-side machinery of section 3: object descriptors below
100 000 for devices and above for files, the three standard streams,
redirection (stdout := 100001 when redirected to a file), and
``process_twin`` — forbidden while transactions are live because the
child would inherit transaction descriptors and break serializability.

Run:  python examples/processes_and_devices.py
"""

from repro import AttributedName, ClusterConfig, RhodosCluster
from repro.agents.devices import SimTTY
from repro.common.errors import ProcessError


def main() -> None:
    cluster = RhodosCluster(ClusterConfig())
    machine = cluster.machine
    process = machine.spawn_process()
    print(f"process {process.pid} env: {process.env}")

    # --- standard streams to the console ----------------------------
    process.stdout_write(b"booting...\n")
    machine.device_agent.console.feed_input(b"yes\n")
    answer = process.stdin_read(4)
    print(f"console holds {bytes(machine.device_agent.console.output)!r}; "
          f"stdin gave {answer!r}")

    # --- a second device, opened by attributed name ------------------
    printer = SimTTY("m0:lineprinter")
    machine.device_agent.register_device(
        printer, AttributedName.tty("lineprinter")
    )
    lp = machine.device_agent.open(AttributedName.tty("lineprinter"))
    print(f"opened TTY 'lineprinter' -> descriptor {lp} (< 100000: a device)")
    machine.device_agent.write(lp, b"PAYROLL RUN 1994-06-30\n")

    # --- stdout redirection to a file --------------------------------
    log_fd = process.create(AttributedName.file("/var/log/run.log"))
    process.redirect_stdout(log_fd)
    print(f"after redirect_stdout: env[stdout] = {process.env['stdout']}")
    process.stdout_write(b"this line lands in the log file\n")
    machine.file_agent.flush()
    machine.file_agent.lseek(log_fd, 0)
    print("log file contains:", machine.file_agent.read(log_fd, 100))

    # --- mediumweight children ---------------------------------------
    child = process.process_twin()
    print(f"\nprocess_twin -> child pid {child.pid}; child inherits the "
          f"log descriptor and can keep writing:")
    child.write(log_fd, b"appended by the mediumweight child\n")
    machine.file_agent.flush()
    machine.file_agent.lseek(log_fd, 0)
    print(machine.file_agent.read(log_fd, 200).decode(), end="")

    # But not while a transaction is live.
    tid = machine.transactions.tbegin()
    process.note_transaction_started(tid)
    try:
        process.process_twin()
    except ProcessError as error:
        print(f"\nprocess_twin during a transaction is refused:\n  {error}")
    machine.transactions.tabort(tid)
    process.note_transaction_finished(tid)
    print("after tabort the twin is allowed again:",
          process.process_twin().pid)


if __name__ == "__main__":
    main()
