#!/usr/bin/env python
"""The directory service and inter-machine communication ports.

Figure 1's top layer is "NAMING / DIRECTORY SERVICE": this example
builds a directory tree whose directories are themselves RHODOS files
(so the hierarchy survives a disk crash via the facility's own
recovery), then wires a serial-style communication port between two
machines — the other device class section 3 mentions — and ships a
file's contents across it.

Run:  python examples/directories_and_ports.py
"""

from repro import AttributedName, ClusterConfig, RhodosCluster
from repro.agents.ports import connect_machines


def main() -> None:
    cluster = RhodosCluster(ClusterConfig(n_machines=2, n_disks=2))
    directories = cluster.directories

    # --- a directory tree, stored in files ---------------------------
    directories.mkdir("/home")
    directories.mkdir("/home/raj")
    directories.mkdir("/etc")
    paper = directories.create_file("/home/raj/icdcs94.tex")
    cluster.file_servers[paper.volume_id].write(
        paper, 0, b"\\title{A High Performance and Reliable DFF}\n"
    )
    directories.create_file("/etc/rhodos.conf", volume_id=1)
    print("directory tree:")
    for path, entries in directories.walk("/"):
        for entry in entries:
            marker = "/" if entry.is_directory else ""
            print(f"  {path.rstrip('/')}/{entry.name}{marker}"
                  f"   (volume {entry.target.volume_id})")

    # Crash volume 0 — the tree lives in files, so it recovers.
    cluster.flush_all()
    cluster.crash_volume(0)
    cluster.recover_volume(0)
    resolved = directories.resolve("/home/raj/icdcs94.tex")
    line = cluster.file_servers[resolved.volume_id].read(resolved, 0, 7)
    print(f"\nafter crash + recovery, /home/raj/icdcs94.tex starts: {line!r}")

    # --- a communication port between the machines -------------------
    fd_a, fd_b = connect_machines(
        "serial0",
        cluster.machines[0].device_agent,
        cluster.machines[1].device_agent,
        cluster.clock,
        cluster.metrics,
    )
    print(f"\nport descriptors: m0 -> {fd_a}, m1 -> {fd_b} (devices: < 100000)")

    # Machine 0 reads the paper and streams it to machine 1.
    content = cluster.file_servers[resolved.volume_id].read(resolved, 0, 4096)
    sender = cluster.machines[0].device_agent
    receiver = cluster.machines[1].device_agent
    before_us = cluster.clock.now_us
    sender.write(fd_a, content)
    received = receiver.read(fd_b, 4096)
    elapsed_ms = (cluster.clock.now_us - before_us) / 1000
    print(
        f"streamed {len(received)} bytes over the serial port in "
        f"{elapsed_ms:.2f} simulated ms "
        f"(intact: {received == content})"
    )


if __name__ == "__main__":
    main()
