#!/usr/bin/env python
"""Files bigger than any disk, and files that survive disk crashes.

Section 7 of the paper: "a file can be partitioned and therefore its
contents can reside on more than one disk.  Thus, the size of a file
can be as large as the total space available on all the disks."  Plus
the replication service from Figure 1: read-one/write-all with
failover and resynchronisation.

Run:  python examples/multi_disk_striping.py
"""

from repro import AttributedName, ClusterConfig, RhodosCluster, StripedFile
from repro.common.units import BLOCK_SIZE, MIB
from repro.simdisk.geometry import DiskGeometry

BIG = AttributedName.file("/data/huge.bin")
IMPORTANT = AttributedName.file("/data/important.cfg")


def main() -> None:
    # Four deliberately small disks (1.5 MB each).
    tiny = DiskGeometry(cylinders=24, heads=2, sectors_per_track=32)
    cluster = RhodosCluster(ClusterConfig(n_disks=4, geometry=tiny))
    per_disk = tiny.capacity_bytes // MIB
    print(f"4 disks of ~{tiny.capacity_bytes / MIB:.1f} MB each")

    # --- striping: a 2 MB file no single disk could hold -------------
    striped = StripedFile.create(
        cluster.naming, cluster.file_servers, BIG, stripe_bytes=8 * BLOCK_SIZE
    )
    payload = bytes(range(256)) * (2 * MIB // 256)
    striped.write(0, payload)
    assert striped.read(0, len(payload)) == payload
    print(f"wrote + verified a {len(payload) / MIB:.0f} MB striped file")
    for segment in striped.segments:
        size = cluster.file_servers[segment.volume_id].get_attribute(
            segment
        ).file_size
        print(f"  volume {segment.volume_id}: segment of {size // 1024} KB")

    busiest = max(
        cluster.metrics.get(f"disk.{volume}.busy_us") for volume in range(4)
    )
    print(f"busiest disk was busy {busiest / 1000:.0f} ms "
          "(disks work in parallel: that is the scan's makespan)")

    # --- replication: surviving a disk crash -------------------------
    replication = cluster.replication
    replication.create(IMPORTANT, degree=3)
    replication.write(IMPORTANT, 0, b"threshold=42\n")
    print("\nreplicated /data/important.cfg on 3 volumes")

    cluster.file_servers[0].crash()
    print("volume 0 crashed!")
    data = replication.read(IMPORTANT, 0, 13)
    print(f"read still succeeds via a surviving replica: {data!r}")
    print(f"live replicas: {replication.live_replicas(IMPORTANT)} / 3")

    replication.write(IMPORTANT, 0, b"threshold=97\n")
    cluster.disks[0].repair()
    cluster.file_servers[0].recover()
    repaired = replication.resync(IMPORTANT)
    print(
        f"volume 0 repaired; resync copied the newer data to "
        f"{repaired} stale replica(s); live replicas: "
        f"{replication.live_replicas(IMPORTANT)} / 3"
    )


if __name__ == "__main__":
    main()
