"""E12 — idempotent operations under message faults (section 3).

Paper claim: "Certain errors caused by computer failures and
communication delays may lead to repeated execution of some operations.
However, their repetition in RHODOS does not produce any uncertain
effect" — because every exchanged operation is idempotent and the file
agent tracks per-request state, leaving the file service "nearly"
stateless.

The same write/read workload runs over fault-free and increasingly
lossy/duplicating/**reordering** message buses.  Reordered requests are
parked in a delayed-delivery queue and execute only after later
operations' handlers — true out-of-order execution, the strongest case
the positional-idempotency argument must absorb.  Expected shape:
byte-identical final file state at every fault rate, with overhead
(retransmissions, duplicate and reordered executions) growing with the
rate.
"""

from _helpers import print_table
from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.rpc.bus import FaultProfile
from repro.simdisk.geometry import DiskGeometry

RATES = [0.0, 0.05, 0.15, 0.30]
N_WRITES = 30


def run_rate(rate: float, seed: int = 1):
    cluster = RhodosCluster(
        ClusterConfig(
            geometry=DiskGeometry.small(),
            fault_profile=FaultProfile(
                request_loss=rate, reply_loss=rate, duplication=rate,
                reorder=rate / 2,
            ),
            seed=seed,
            client_cache_blocks=0,  # every operation really crosses the bus
        )
    )
    agent = cluster.machine.file_agent
    descriptor = agent.create(AttributedName.file("/target"))
    for index in range(N_WRITES):
        agent.pwrite(descriptor, bytes([index + 1]) * 211, index * 307)
    agent.close(descriptor)
    cluster.bus.drain_delayed()  # no write may stay parked forever
    descriptor = agent.open(AttributedName.file("/target"))
    state = agent.read(descriptor, N_WRITES * 307 + 211)
    agent.close(descriptor)
    return {
        "state": state,
        "messages": cluster.metrics.get("rpc.messages"),
        "retransmissions": cluster.metrics.get("rpc.retransmissions"),
        "duplicates": cluster.metrics.get("rpc.duplicated_executions"),
        "reordered": cluster.metrics.get("rpc.reordered_executions"),
        "sim_ms": cluster.clock.now_ms,
    }


def run_all():
    return [(rate, run_rate(rate)) for rate in RATES]


def test_e12_idempotency(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference_state = results[0][1]["state"]
    print_table(
        f"E12  {N_WRITES}-write workload under loss + duplication + reordering",
        [
            "fault rate",
            "messages",
            "retransmissions",
            "duplicate executions",
            "reordered executions",
            "sim time (ms)",
            "final state",
        ],
        [
            (
                f"{rate:.0%}",
                row["messages"],
                row["retransmissions"],
                row["duplicates"],
                row["reordered"],
                f"{row['sim_ms']:.0f}",
                "identical" if row["state"] == reference_state else "DIVERGED",
            )
            for rate, row in results
        ],
    )
    # The claim: repetition never produces an uncertain effect.
    for rate, row in results:
        assert row["state"] == reference_state, f"state diverged at {rate:.0%}"
    # Overhead grows with the fault rate; the faulty runs really did
    # retransmit and re-execute.
    retransmissions = [row["retransmissions"] for _, row in results]
    assert retransmissions[0] == 0
    assert retransmissions[-1] > retransmissions[1] > 0
    assert results[-1][1]["duplicates"] > 0
    # Reordered (delayed, then re-executed out of program order)
    # requests really happened — and still left the state identical.
    assert results[0][1]["reordered"] == 0
    assert results[-1][1]["reordered"] > 0
