"""E19 — the RAID tier: striping, parity, and degraded service (PR 9).

The paper's disk service runs one server per spindle; PR 9 slides a
:class:`~repro.simdisk.raid.StripedVolume` underneath it, so one
logical disk is striped (raid0), mirrored (raid1), or parity-protected
(raid5) over N member drives while the pipeline, scheduler, and cache
stack stay byte-for-byte unchanged.  This experiment measures what the
tier costs and buys:

* **Striping overlaps members.**  The E16 contention load (8 request
  streams hammering alternating ends of the platter) against single /
  raid0 / raid1 / raid5 arrays under FCFS and SCAN+coalesce: raid0
  spreads the same offered load over four arms and beats the single
  spindle on aggregate throughput under both policies.
* **Stripe width and chunk size are real knobs.**  A raid5 sweep over
  3/4/6 members x 4/16/64-sector chunks shows wider arrays overlapping
  more and bigger chunks referencing less.
* **Degraded service costs, rebuild costs more, bytes stay exact.**
  One identical primed read/write load in OPTIMAL, DEGRADED, and
  REBUILDING modes: every read is verified byte-exact against its
  primed pattern (reconstruction included), and elapsed time ranks
  optimal <= degraded <= rebuilding.
* **The RAID-5 small-write penalty.**  Scattered single-sector writes
  at the array surface: raid0 pays one member reference, raid1 mirrors
  to all four, raid5 pays the full read-modify-write (old data + old
  parity in, new data + new parity out) — while full-row writes
  compute parity from the payload alone and never read a platter.
"""

from _helpers import pattern, print_table
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.disk_service.addresses import Extent
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import make_scheduler
from repro.disk_service.server import DiskServer
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.raid import RaidRebuilder, StripedVolume
from repro.simdisk.stable import StableStore
from repro.simkernel.loop import EventLoop

#: (label, level, members, chunk_sectors) — the contention grid rows.
LAYOUTS = (
    ("single", None, 1, 16),
    ("raid0/4", "raid0", 4, 16),
    ("raid1/4", "raid1", 4, 16),
    ("raid5/4", "raid5", 4, 16),
)
POLICIES = ("fcfs", "scan+coalesce")
WIDTHS = (3, 4, 6)
CHUNKS = (4, 16, 64)
N_CLIENTS = 8
OPS_PER_CLIENT = 8
FRAGMENT_BYTES = Extent(0, 1).byte_size
#: Fragments per contention op: 32 sectors, so a transfer spans 2-8
#: member chunks depending on chunk size — the span striping overlaps.
OP_FRAGMENTS = 8
#: One fixed working-set size for every layout, so seek spans are
#: comparable whether the logical disk is 1x or 4x a member.
REGION_FRAGMENTS = 4096


def _build_stack(level, members, chunk_sectors, policy, clock, metrics, loop):
    """A DiskServer + pipeline over a single drive or an array."""
    tag = f"{level or 'single'}.{members}.{chunk_sectors}"
    if level is None:
        disk = SimDisk(tag, DiskGeometry.small(), clock, metrics)
        member_ids = [disk.disk_id]
    else:
        drives = [
            SimDisk(f"{tag}.m{index}", DiskGeometry.small(), clock, metrics)
            for index in range(members)
        ]
        disk = StripedVolume(
            tag, drives, level=level, chunk_sectors=chunk_sectors, metrics=metrics
        )
        member_ids = [drive.disk_id for drive in drives]
    stable = StableStore(
        SimDisk(f"{tag}.sa", DiskGeometry.small(), clock, metrics),
        SimDisk(f"{tag}.sb", DiskGeometry.small(), clock, metrics),
    )
    server = DiskServer(disk, stable, clock, metrics)
    DiskPipeline(server, loop, make_scheduler(policy))
    return server, disk, member_ids


def _member_totals(metrics, member_ids, name):
    return sum(metrics.get(f"disk.{member}.{name}") for member in member_ids)


def run_contention_point(level, members, chunk_sectors, policy):
    """The E16 contention shape against one (possibly striped) volume.

    Eight streams alternate between the low and high ends of one
    fixed-size region; two ops in three are 32-sector reads spanning
    multiple stripe chunks, the third a 32-sector write — partial-row
    updates for raid5, mirror fan-out for raid1.
    """
    clock, metrics = SimClock(), Metrics()
    loop = EventLoop(clock)
    server, _, member_ids = _build_stack(
        level, members, chunk_sectors, policy, clock, metrics, loop
    )
    region = server.allocate(REGION_FRAGMENTS)
    half = (region.length - OP_FRAGMENTS) // 2
    completions = []
    for op_index in range(OPS_PER_CLIENT):
        for client in range(N_CLIENTS):
            index = op_index * N_CLIENTS + client
            if index % 2 == 0:
                slot = (index * 17) % half
            else:
                slot = region.length - OP_FRAGMENTS - ((index * 23) % half)
            extent = Extent(region.start + slot, OP_FRAGMENTS)
            if index % 3 == 2:
                completions.append(
                    server.submit_put(
                        extent, pattern(extent.byte_size, seed=index)
                    )
                )
            else:
                completions.append(server.submit_get(extent, use_cache=False))
    loop.run_until(lambda: all(completion.done for completion in completions))
    waits = metrics.histogram_samples("disk_service.queue_wait_us")
    elapsed_us = clock.now_us
    return {
        "ops": len(completions),
        "elapsed_us": elapsed_us,
        "throughput_ops_per_s": len(completions) * 1_000_000 / elapsed_us,
        "mean_wait_us": sum(waits) / len(waits),
        "member_references": _member_totals(metrics, member_ids, "references"),
        "member_sectors_written": _member_totals(
            metrics, member_ids, "sectors_written"
        ),
    }


def run_layout_grid():
    return {
        (label, policy): run_contention_point(level, members, chunk, policy)
        for label, level, members, chunk in LAYOUTS
        for policy in POLICIES
    }


def run_width_grid():
    return {
        (width, chunk): run_contention_point("raid5", width, chunk, "scan+coalesce")
        for width in WIDTHS
        for chunk in CHUNKS
    }


# ------------------------------------------------- service modes


def run_mode_point(mode):
    """One primed read/write load in optimal / degraded / rebuilding mode.

    The same 64 slots are primed with per-slot patterns, then re-read
    and partially rewritten while the array is healthy, missing member
    1, or rebuilding member 1 with the rebuilder force-stepped between
    operations.  Every read is verified byte-exact — a degraded read of
    the lost column must reconstruct the primed bytes through parity.
    """
    clock, metrics = SimClock(), Metrics()
    loop = EventLoop(clock)
    server, array, member_ids = _build_stack(
        "raid5", 4, 16, "scan+coalesce", clock, metrics, loop
    )
    region = server.allocate(server.n_fragments // 2)
    slots = sorted({(index * 37) % (region.length - 1) for index in range(64)})
    primed = [
        server.submit_put(
            Extent(region.start + slot, 1), pattern(FRAGMENT_BYTES, seed=slot)
        )
        for slot in slots
    ]
    loop.run_until(lambda: all(completion.done for completion in primed))

    rebuilder = None
    if mode != "optimal":
        array.fail_member(1)
    if mode == "rebuilding":
        array.replace_member(1)
        rebuilder = RaidRebuilder(array, chunks_per_step=8)
    started_us = clock.now_us
    base_references = _member_totals(metrics, member_ids, "references")
    verified = 0
    for op_index, slot in enumerate(slots):
        extent = Extent(region.start + slot, 1)
        if op_index % 4 == 3:
            completion = server.submit_put(
                extent, pattern(FRAGMENT_BYTES, seed=slot)
            )
        else:
            completion = server.submit_get(extent, use_cache=False)
        loop.run_until(lambda: completion.done)
        if op_index % 4 != 3:
            assert completion.result() == pattern(FRAGMENT_BYTES, seed=slot)
            verified += 1
        if rebuilder is not None and not rebuilder.done:
            rebuilder.step(force=True)
    elapsed_us = clock.now_us - started_us
    return {
        "state": array.state.name,
        "ops": len(slots),
        "reads_verified": verified,
        "elapsed_us": elapsed_us,
        "member_references": (
            _member_totals(metrics, member_ids, "references") - base_references
        ),
        "degraded_reads": metrics.get(f"raid.{array.array_id}.degraded_reads"),
        "segments_reconstructed": metrics.get(
            f"raid.{array.array_id}.segments_reconstructed"
        ),
        "rebuild_chunks": metrics.get(f"raid.{array.array_id}.rebuild.chunks"),
    }


MODES = ("optimal", "degraded", "rebuilding")


def run_modes():
    return {mode: run_mode_point(mode) for mode in MODES}


# ------------------------------------------------- small-write penalty


def _small_write_array(level, chunk_sectors=16):
    clock, metrics = SimClock(), Metrics()
    drives = [
        SimDisk(f"w.{level}.m{index}", DiskGeometry.small(), clock, metrics)
        for index in range(4)
    ]
    array = StripedVolume(
        f"w.{level}", drives, level=level, chunk_sectors=chunk_sectors,
        metrics=metrics,
    )
    return array, drives, metrics, clock


def run_small_write_point(level):
    """32 scattered single-sector writes straight at the array surface."""
    array, drives, metrics, clock = _small_write_array(level)
    member_ids = [drive.disk_id for drive in drives]
    size = array.geometry.sector_size
    total = array.geometry.total_sectors
    snapshot = lambda name: _member_totals(metrics, member_ids, name)
    base = (snapshot("references"), snapshot("sectors_read"),
            snapshot("sectors_written"))
    started_us = clock.now_us
    n_ops = 32
    for op_index in range(n_ops):
        array.write_sectors((op_index * 131) % (total - 1), pattern(size, seed=op_index))
    return {
        "ops": n_ops,
        "references_per_op": (snapshot("references") - base[0]) / n_ops,
        "sectors_read_per_op": (snapshot("sectors_read") - base[1]) / n_ops,
        "sectors_written_per_op": (snapshot("sectors_written") - base[2]) / n_ops,
        "elapsed_us": clock.now_us - started_us,
    }


def run_full_row_point():
    """Row-aligned full-stripe raid5 writes: reconstruct-write, no reads."""
    array, drives, metrics, clock = _small_write_array("raid5")
    member_ids = [drive.disk_id for drive in drives]
    size = array.geometry.sector_size
    row_sectors = array.chunk_sectors * 3
    snapshot = lambda name: _member_totals(metrics, member_ids, name)
    base = (snapshot("references"), snapshot("sectors_read"),
            snapshot("sectors_written"))
    started_us = clock.now_us
    n_ops = 8
    for row in range(n_ops):
        array.write_sectors(row * row_sectors, pattern(row_sectors * size, seed=row))
    return {
        "ops": n_ops,
        "references_per_op": (snapshot("references") - base[0]) / n_ops,
        "sectors_read_per_op": (snapshot("sectors_read") - base[1]) / n_ops,
        "sectors_written_per_op": (snapshot("sectors_written") - base[2]) / n_ops,
        "elapsed_us": clock.now_us - started_us,
    }


SMALL_WRITE_LEVELS = ("raid0", "raid1", "raid5")


def run_small_writes():
    points = {level: run_small_write_point(level) for level in SMALL_WRITE_LEVELS}
    points["raid5 full-row"] = run_full_row_point()
    return points


# ------------------------------------------------- the experiment


def test_e19_raid(benchmark):
    def run_all():
        return {
            "layouts": run_layout_grid(),
            "widths": run_width_grid(),
            "modes": run_modes(),
            "small_writes": run_small_writes(),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    layouts, widths = results["layouts"], results["widths"]
    modes, small = results["modes"], results["small_writes"]

    print_table(
        "E19  Contention throughput (ops/s) by layout and policy, 8 clients",
        ["layout"]
        + [f"{policy} ops/s" for policy in POLICIES]
        + ["member refs (scan+coalesce)"],
        [
            (
                label,
                *(
                    f"{layouts[(label, policy)]['throughput_ops_per_s']:.0f}"
                    for policy in POLICIES
                ),
                layouts[(label, "scan+coalesce")]["member_references"],
            )
            for label, _, _, _ in LAYOUTS
        ],
    )
    print_table(
        "E19  raid5 stripe width x chunk size (scan+coalesce)",
        ["members", "chunk", "ops/s", "member refs", "mean wait (us)"],
        [
            (
                width,
                chunk,
                f"{widths[(width, chunk)]['throughput_ops_per_s']:.0f}",
                widths[(width, chunk)]["member_references"],
                f"{widths[(width, chunk)]['mean_wait_us']:.0f}",
            )
            for width in WIDTHS
            for chunk in CHUNKS
        ],
    )
    print_table(
        "E19  Service modes (raid5/4, chunk 16): identical primed load",
        ["mode", "state after", "elapsed (ms)", "member refs",
         "degraded reads", "reconstructed", "rebuild chunks"],
        [
            (
                mode,
                modes[mode]["state"],
                f"{modes[mode]['elapsed_us'] / 1000.0:.1f}",
                modes[mode]["member_references"],
                modes[mode]["degraded_reads"],
                modes[mode]["segments_reconstructed"],
                modes[mode]["rebuild_chunks"],
            )
            for mode in MODES
        ],
    )
    print_table(
        "E19  Small-write penalty (4 members, chunk 16, per logical write)",
        ["workload", "member refs", "sectors read", "sectors written"],
        [
            (
                label,
                f"{small[label]['references_per_op']:.1f}",
                f"{small[label]['sectors_read_per_op']:.1f}",
                f"{small[label]['sectors_written_per_op']:.1f}",
            )
            for label in (*SMALL_WRITE_LEVELS, "raid5 full-row")
        ],
    )

    # Striping overlaps members: raid0 beats the single spindle on the
    # same offered load under both policies.
    for policy in POLICIES:
        assert (
            layouts[("raid0/4", policy)]["throughput_ops_per_s"]
            > layouts[("single", policy)]["throughput_ops_per_s"]
        )
    # The scheduler still earns its keep on every layout.
    for label, _, _, _ in LAYOUTS:
        assert (
            layouts[(label, "scan+coalesce")]["throughput_ops_per_s"]
            >= layouts[(label, "fcfs")]["throughput_ops_per_s"]
        )
    # Redundancy costs member traffic: the mirror lands every logical
    # sector on all four platters (reads, by contrast, are served from
    # one mirror — fewer references than striping's multi-member
    # spans), and parity's read-modify-write both references and
    # writes more than pure striping.
    assert (
        layouts[("raid1/4", "scan+coalesce")]["member_sectors_written"]
        > 3 * layouts[("raid0/4", "scan+coalesce")]["member_sectors_written"]
    )
    assert (
        layouts[("raid5/4", "scan+coalesce")]["member_references"]
        > layouts[("raid0/4", "scan+coalesce")]["member_references"]
    )
    assert (
        layouts[("raid5/4", "scan+coalesce")]["member_sectors_written"]
        > layouts[("raid0/4", "scan+coalesce")]["member_sectors_written"]
    )
    # Bigger chunks reference fewer platters per op at every width.
    for width in WIDTHS:
        assert (
            widths[(width, 64)]["member_references"]
            <= widths[(width, 4)]["member_references"]
        )

    # Mode ranking: degraded service is slower than optimal (lost-column
    # reads fan out to every survivor), rebuilding slower still (the
    # rebuilder's reconstruction traffic shares the spindles).
    assert modes["optimal"]["state"] == "OPTIMAL"
    assert modes["degraded"]["state"] == "DEGRADED"
    assert modes["optimal"]["degraded_reads"] == 0
    assert modes["degraded"]["degraded_reads"] > 0
    assert modes["degraded"]["segments_reconstructed"] > 0
    assert modes["rebuilding"]["rebuild_chunks"] > 0
    assert (
        modes["degraded"]["elapsed_us"] > modes["optimal"]["elapsed_us"]
    )
    assert (
        modes["rebuilding"]["elapsed_us"] > modes["degraded"]["elapsed_us"]
    )
    # Every read in every mode verified byte-exact against its primed
    # pattern — reconstruction included.
    for mode in MODES:
        assert modes[mode]["reads_verified"] > 0

    # The small-write penalty, in member references per logical write:
    # raid0 pays one, the 4-way mirror pays four (all writes, no
    # reads), raid5 pays the read-modify-write (two reads + two writes)
    # — unless the write covers a whole row, where parity comes from
    # the payload and nothing is read back.
    assert small["raid0"]["references_per_op"] == 1.0
    assert small["raid0"]["sectors_read_per_op"] == 0.0
    assert small["raid1"]["references_per_op"] == 4.0
    assert small["raid1"]["sectors_read_per_op"] == 0.0
    assert small["raid5"]["references_per_op"] == 4.0
    assert small["raid5"]["sectors_read_per_op"] == 2.0
    assert small["raid5 full-row"]["sectors_read_per_op"] == 0.0
    assert small["raid5 full-row"]["references_per_op"] == 4.0
