"""E13 — the replication service (sections 2.1, 2.2).

The paper names replication as a design goal ("must have the provision
to support the concept of file replication") and a layer of Figure 1
without evaluating it; we price our primary-copy read-one/write-all
implementation.  Expected shape: write cost grows linearly with the
replication degree, read cost stays flat, and degree k survives k-1
volume crashes.
"""

from _helpers import print_table
from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry

NAME = AttributedName.file("/replicated")
N_OPS = 25
PAYLOAD = b"\x77" * 4096


def run_degree(degree: int):
    cluster = RhodosCluster(
        ClusterConfig(n_disks=4, geometry=DiskGeometry.small())
    )
    service = cluster.replication
    service.create(NAME, degree=degree)
    before_us = cluster.clock.now_us
    before = cluster.metrics.snapshot()
    for index in range(N_OPS):
        service.write(NAME, index * len(PAYLOAD), PAYLOAD)
    write_us = cluster.clock.now_us - before_us
    before_us = cluster.clock.now_us
    for index in range(N_OPS):
        service.read(NAME, index * len(PAYLOAD), len(PAYLOAD))
    read_us = cluster.clock.now_us - before_us
    diff = cluster.metrics.diff(before)
    # Availability: crash k-1 volumes hosting replicas, keep reading.
    survived = True
    for volume in range(degree - 1):
        cluster.file_servers[volume].crash()
        try:
            service.read(NAME, 0, len(PAYLOAD))
        except Exception:
            survived = False
    return {
        "replica_writes": diff.get("replication.replica_writes", 0),
        "write_ms_per_op": write_us / N_OPS / 1000.0,
        "read_ms_per_op": read_us / N_OPS / 1000.0,
        "survives_k_minus_1": survived,
    }


def run_all():
    return [(degree, run_degree(degree)) for degree in (1, 2, 3, 4)]


def test_e13_replication(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E13  {N_OPS} writes + {N_OPS} reads per replication degree",
        [
            "degree",
            "replica writes",
            "write ms/op",
            "read ms/op",
            "survives k-1 crashes",
        ],
        [
            (
                degree,
                row["replica_writes"],
                f"{row['write_ms_per_op']:.1f}",
                f"{row['read_ms_per_op']:.2f}",
                "yes" if row["survives_k_minus_1"] else "NO",
            )
            for degree, row in results
        ],
    )
    by_degree = dict(results)
    # Write-all: physical writes scale linearly with degree.
    for degree in (1, 2, 3, 4):
        assert by_degree[degree]["replica_writes"] == degree * N_OPS
    assert (
        by_degree[4]["write_ms_per_op"] > 2 * by_degree[1]["write_ms_per_op"]
    )
    # Read-one: reads do not get more expensive with degree.
    assert (
        by_degree[4]["read_ms_per_op"] <= by_degree[1]["read_ms_per_op"] * 1.5
    )
    # Availability: every degree survives k-1 crashes.
    for degree, row in results:
        assert row["survives_k_minus_1"]
