"""E11 — files across disks (section 7).

Paper claims: "there is practically no limitation on the number of
disks ... a file can be partitioned and therefore its contents can
reside on more than one disk.  Thus, the size of a file can be as
large as the total space available on all the disks."

A 4 MB file is written and scanned striped over 1, 2, 4 and 8 disks.
Disks are independent devices, so the honest parallel cost is the
*makespan*: the busiest disk's busy time.  Expected shape: makespan
falls as disks are added (near-linearly while stripes balance), and
capacity grows with the set.
"""

from _helpers import print_table
from repro.cluster.config import ClusterConfig
from repro.cluster.striping import StripedFile
from repro.cluster.system import RhodosCluster
from repro.common.units import BLOCK_SIZE, MIB
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry

NAME = AttributedName.file("/big")
FILE_BYTES = 4 * MIB


def run_point(n_disks: int):
    cluster = RhodosCluster(
        ClusterConfig(n_disks=n_disks, geometry=DiskGeometry.medium())
    )
    striped = StripedFile.create(
        cluster.naming,
        cluster.file_servers,
        NAME,
        stripe_bytes=8 * BLOCK_SIZE,
    )
    payload = b"\x3c" * FILE_BYTES
    striped.write(0, payload)
    for server in cluster.file_servers.values():
        server.flush()
        server.recover()
    before = cluster.metrics.snapshot()
    assert striped.read(0, FILE_BYTES) == payload
    diff = cluster.metrics.diff(before)
    busy = [
        diff.get(f"disk.{volume}.busy_us", 0) for volume in range(n_disks)
    ]
    refs = sum(diff.get(f"disk.{volume}.references", 0) for volume in range(n_disks))
    makespan_ms = max(busy) / 1000.0
    return {
        "makespan_ms": makespan_ms,
        "references": refs,
        "bandwidth_mb_s": (FILE_BYTES / MIB) / (makespan_ms / 1000.0),
    }


def run_all():
    return [(n, run_point(n)) for n in (1, 2, 4, 8)]


def test_e11_multi_disk(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E11  Cold scan of a {FILE_BYTES // MIB} MB file striped over N disks",
        ["disks", "disk refs", "busiest-disk time (ms)", "parallel bandwidth (MB/s)"],
        [
            (
                n,
                row["references"],
                f"{row['makespan_ms']:.1f}",
                f"{row['bandwidth_mb_s']:.1f}",
            )
            for n, row in results
        ],
    )
    makespans = [row["makespan_ms"] for _, row in results]
    # Adding disks shrinks the busiest disk's share of the scan.
    assert makespans[0] > makespans[1] > makespans[2] > makespans[3]
    # Rough proportionality: 8 disks cut the makespan at least 4x.
    assert makespans[0] / makespans[3] >= 4
