"""M1 — simulator fast-path throughput (PR 8 meta-benchmark).

Unlike E1..E18, which regenerate the *paper's* tables in simulated
time, M1 measures the *simulator itself*: how many disk references per
host-second the hot path sustains.  Million-reference campaigns (the
chaos sweep, the scheduling grids) are bounded by this number, so PR 8
tracks it the same way the repo tracks every other claim — as a
benchmark with an asserted floor.

Three loads:

* **sequential** — one disk, alternating extent writes and reads
  sweeping the platter.  Run twice: once on today's :class:`SimDisk`
  (chunked :class:`~repro.simdisk.store.SectorStore`, pre-bound metric
  handles, guarded spans) and once on an in-file *legacy lane* that
  reproduces the pre-PR-8 hot path statement for statement
  (per-sector dict store, f-string metric names on every reference,
  span kwargs built even while tracing is disabled, unconditional
  media scans, property-recomputed geometry sizes, and the old
  per-sector-validating timing walk).  Both lanes execute the identical operation sequence,
  so their simulated counters agree exactly; only the host cost
  differs.  The PR's acceptance floor — the new lane is **>= 5x**
  faster — is asserted here.
* **overlapped** — the 4-disk pipelined request grid (submit, drain,
  settle), the shape the scheduling experiments stress.
* **chaos-shaped** — small writes through an armed fault injector with
  scheduled crashes, repairs, and rewrites, the shape the crash sweep
  generates.

Wall-clock results are recorded as gauges whose final name segment
starts with ``wall_`` — ``python -m repro.tools.bench --strip-wall``
removes exactly those, which is how the committed ``BENCH_pr10.json``
and the CI determinism diff stay byte-identical across machines.
Everything else in this file is simulated time and fully deterministic.
"""

from __future__ import annotations

import time
from typing import Dict

from _helpers import print_table
from repro.common.clock import SimClock
from repro.common.errors import (
    BadAddressError,
    BadSectorError,
    DiskCrashedError,
    MediaError,
)
from repro.common.metrics import Metrics
from repro.common.trace import NULL_TRACER
from repro.disk_service.addresses import Extent
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import make_scheduler
from repro.disk_service.server import DiskServer
from repro.simdisk.disk import SimDisk
from repro.simdisk.faults import FaultInjector
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore
from repro.simdisk.timeline import DiskTimeline
from repro.simdisk.timing import DiskTimingModel
from repro.simkernel.loop import EventLoop

#: References per lane in the sequential load.  Large enough that
#: per-call overhead dominates interpreter warm-up and that the sweep
#: wraps the platter several times — campaign steady state, where the
#: service-time memo actually earns its keep — while the slow (legacy)
#: lane stays under a few seconds on any host.
SEQUENTIAL_REFERENCES = 180_000

#: Extent size of the sequential load, in sectors (one 4 KB fragment
#: run on the small geometry).
SEQUENTIAL_EXTENT_SECTORS = 8

OVERLAPPED_DISKS = 4
OVERLAPPED_OPS = 2_000

CHAOS_WRITES = 20_000
CHAOS_CRASH_PERIOD = 997  # prime, so crashes drift across the region


class _LegacyGeometry:
    """The pre-PR-8 geometry surface: derived sizes as properties.

    Before PR 8 ``DiskGeometry`` recomputed ``sectors_per_cylinder``
    and ``total_sectors`` on every property read, and every mapping
    helper re-validated its sector.  The legacy lane pins that cost.
    """

    def __init__(self, base: DiskGeometry) -> None:
        self.cylinders = base.cylinders
        self.heads = base.heads
        self.sectors_per_track = base.sectors_per_track
        self.sector_size = base.sector_size

    @property
    def sectors_per_cylinder(self) -> int:
        return self.heads * self.sectors_per_track

    @property
    def total_sectors(self) -> int:
        return self.cylinders * self.sectors_per_cylinder

    @property
    def total_tracks(self) -> int:
        return self.cylinders * self.heads

    def check_sector(self, sector: int) -> None:
        if not 0 <= sector < self.total_sectors:
            raise BadAddressError(
                f"sector {sector} outside disk of {self.total_sectors} sectors"
            )

    def cylinder_of(self, sector: int) -> int:
        self.check_sector(sector)
        return sector // self.sectors_per_cylinder

    def track_of(self, sector: int) -> int:
        self.check_sector(sector)
        return sector // self.sectors_per_track

    def track_bounds(self, track: int) -> tuple:
        first = track * self.sectors_per_track
        return first, first + self.sectors_per_track

    def rotational_position(self, sector: int) -> int:
        self.check_sector(sector)
        return sector % self.sectors_per_track


def _legacy_service_time_us(
    timing: DiskTimingModel,
    geometry: _LegacyGeometry,
    current_cylinder: int,
    angular_now: float,
    start_sector: int,
    n_sectors: int,
):
    """The pre-PR-8 ``DiskTimingModel.service_time_us`` walk, verbatim.

    Same floating-point terms in the same order as today's fast walk,
    so both lanes model bit-equal service times — but every step goes
    through the old re-validating geometry helpers.
    """
    geometry.check_sector(start_sector)
    geometry.check_sector(start_sector + n_sectors - 1)
    total = timing.controller_overhead_us
    cylinder = geometry.cylinder_of(start_sector)
    total += timing.seek_time_us(current_cylinder, cylinder)
    target_slot = geometry.rotational_position(start_sector)
    total += timing.rotational_latency_us(geometry, angular_now, target_slot)
    slot = timing.slot_time_us(geometry)
    remaining = n_sectors
    sector = start_sector
    angular = float(target_slot)
    while remaining > 0:
        track = geometry.track_of(sector)
        _, track_end = geometry.track_bounds(track)
        in_track = min(remaining, track_end - sector)
        total += in_track * slot
        angular = (angular + in_track) % geometry.sectors_per_track
        sector += in_track
        remaining -= in_track
        if remaining > 0:
            next_cylinder = geometry.cylinder_of(sector)
            if next_cylinder != cylinder:
                total += timing.seek_time_us(cylinder, next_cylinder)
                cylinder = next_cylinder
            else:
                total += timing.head_switch_us
    return total, cylinder, angular


class _LegacyDisk:
    """The pre-PR-8 ``SimDisk`` hot path, kept as the baseline lane.

    A statement-for-statement reproduction of the old ``read_sectors``
    / ``write_sectors``: a per-sector ``Dict[int, bytes]`` store, an
    f-string metric name formatted on every counter touch, span kwargs
    built before the disabled tracer discards them, and an
    unconditional per-sector media scan.  Same timing model, same
    timeline, same fault injector — identical simulated behaviour,
    legacy host cost.
    """

    def __init__(
        self,
        disk_id: str,
        geometry: DiskGeometry,
        clock: SimClock,
        metrics: Metrics,
    ) -> None:
        self.disk_id = disk_id
        self.geometry = geometry
        self.clock = clock
        self.metrics = metrics
        self.tracer = NULL_TRACER
        self.timing = DiskTimingModel()
        self.faults = FaultInjector()
        self.timeline = DiskTimeline(clock)
        self._legacy_geometry = _LegacyGeometry(geometry)
        self._by_sector: Dict[int, bytes] = {}
        self._head_cylinder = 0
        self._head_angular = 0.0
        self._prefix = f"disk.{disk_id}"
        self._zero = bytes(geometry.sector_size)

    def read_sectors(self, start: int, n_sectors: int) -> bytes:
        with self.tracer.span(
            "simdisk", "read", disk=self.disk_id, sector=start, n_sectors=n_sectors
        ):
            self._check_alive()
            self._check_range(start, n_sectors)
            self._check_media(start, n_sectors)
            self._charge(start, n_sectors)
            self.metrics.add(f"{self._prefix}.reads")
            self.metrics.add(f"{self._prefix}.references")
            self.metrics.add(f"{self._prefix}.sectors_read", n_sectors)
            return b"".join(
                self._by_sector.get(sector, self._zero)
                for sector in range(start, start + n_sectors)
            )

    def write_sectors(self, start: int, data: bytes) -> None:
        with self.tracer.span("simdisk", "write", disk=self.disk_id, sector=start):
            self._check_alive()
            size = self.geometry.sector_size
            n_sectors = len(data) // size
            self._check_range(start, n_sectors)
            torn_at = self.faults.note_write(
                n_sectors, disk_id=self.disk_id, start=start
            )
            written = n_sectors if torn_at is None else torn_at
            for index in range(written):
                offset = index * size
                self._by_sector[start + index] = bytes(data[offset : offset + size])
            self.faults.heal_range(start, written)
            self._charge(start, n_sectors)
            self.metrics.add(f"{self._prefix}.writes")
            self.metrics.add(f"{self._prefix}.references")
            self.metrics.add(f"{self._prefix}.sectors_written", written)
            if torn_at is not None:
                raise DiskCrashedError(f"{self.disk_id}: crashed during write")

    def _check_alive(self) -> None:
        if self.faults.crashed:
            raise DiskCrashedError(f"{self.disk_id}: disk is crashed")

    def _check_range(self, start: int, n_sectors: int) -> None:
        if n_sectors <= 0:
            raise BadAddressError("request must cover at least one sector")
        self._legacy_geometry.check_sector(start)
        self._legacy_geometry.check_sector(start + n_sectors - 1)

    def _check_media(self, start: int, n_sectors: int) -> None:
        faults = self.faults
        for sector in range(start, start + n_sectors):
            if faults.is_bad(sector):
                raise BadSectorError(f"{self.disk_id}: sector {sector} unreadable")
        if faults.latent_media_errors:
            for sector in range(start, start + n_sectors):
                if faults.media_failing(sector):
                    self.metrics.add(f"{self._prefix}.media_errors")
                    raise MediaError(
                        f"{self.disk_id}: latent media error at sector {sector}"
                    )

    def _charge(self, start: int, n_sectors: int) -> None:
        elapsed, cylinder, angular = _legacy_service_time_us(
            self.timing,
            self._legacy_geometry,
            self._head_cylinder,
            self._head_angular,
            start,
            n_sectors,
        )
        self._head_cylinder = cylinder
        self._head_angular = angular
        self.timeline.charge(elapsed)
        self.metrics.add(f"{self._prefix}.busy_us", int(elapsed))
        self.metrics.observe(f"{self._prefix}.service_us", int(elapsed))
        self.metrics.gauge(
            f"{self._prefix}.utilization", self.timeline.utilization_percent()
        )


def _drive_sequential(disk, geometry: DiskGeometry) -> None:
    """The identical operation sequence both lanes execute."""
    extent = SEQUENTIAL_EXTENT_SECTORS
    slots = geometry.total_sectors // extent
    payload = bytes(range(256)) * (extent * geometry.sector_size // 256)
    for index in range(SEQUENTIAL_REFERENCES // 2):
        start = (index % slots) * extent
        disk.write_sectors(start, payload)
        disk.read_sectors(start, extent)


def run_sequential():
    geometry = DiskGeometry.small()
    results = {}
    for lane in ("legacy", "new"):
        clock, metrics = SimClock(), Metrics()
        if lane == "legacy":
            disk = _LegacyDisk("l0", geometry, clock, metrics)
        else:
            disk = SimDisk("n0", geometry, clock, metrics)
        started = time.perf_counter_ns()
        _drive_sequential(disk, geometry)
        wall_ns = time.perf_counter_ns() - started
        prefix = f"disk.{disk.disk_id}"
        results[lane] = {
            "references": metrics.get(f"{prefix}.references"),
            "sim_busy_us": metrics.get(f"{prefix}.busy_us"),
            "wall_us": max(1, wall_ns // 1000),
            "metrics": metrics,
        }
    # The two lanes must have simulated *exactly* the same campaign —
    # otherwise the wall-clock ratio compares different work.
    assert results["new"]["references"] == results["legacy"]["references"]
    assert results["new"]["sim_busy_us"] == results["legacy"]["sim_busy_us"]
    metrics = results["new"]["metrics"]
    metrics.gauge("bench.m1_sequential.wall_us_new", results["new"]["wall_us"])
    metrics.gauge("bench.m1_sequential.wall_us_legacy", results["legacy"]["wall_us"])
    speedup_pct = results["legacy"]["wall_us"] * 100 // results["new"]["wall_us"]
    metrics.gauge("bench.m1_sequential.wall_speedup_pct", speedup_pct)
    return results


def run_overlapped():
    clock, metrics = SimClock(), Metrics()
    loop = EventLoop(clock)
    servers = []
    for volume in range(OVERLAPPED_DISKS):
        disk = SimDisk(str(volume), DiskGeometry.small(), clock, metrics)
        stable = StableStore(
            SimDisk(f"{volume}.sa", DiskGeometry.small(), clock, metrics),
            SimDisk(f"{volume}.sb", DiskGeometry.small(), clock, metrics),
        )
        server = DiskServer(disk, stable, clock, metrics)
        DiskPipeline(server, loop, make_scheduler("scan+coalesce"))
        servers.append((server, server.allocate(server.n_fragments // 2)))
    payload = b"\x5a" * Extent(0, 1).byte_size
    started = time.perf_counter_ns()
    completions = []
    for index in range(OVERLAPPED_OPS):
        server, region = servers[index % OVERLAPPED_DISKS]
        slot = (index * 17) % region.length
        extent = Extent(region.start + slot, 1)
        if index % 3 == 0:
            completions.append(server.submit_put(extent, payload))
        else:
            completions.append(server.submit_get(extent))
    loop.run_until_idle()
    wall_ns = time.perf_counter_ns() - started
    assert all(completion.done for completion in completions)
    metrics.gauge("bench.m1_overlapped.wall_us", max(1, wall_ns // 1000))
    references = sum(
        metrics.get(f"disk.{volume}.references")
        for volume in range(OVERLAPPED_DISKS)
    )
    return {"references": references, "wall_us": max(1, wall_ns // 1000)}


def run_chaos_shaped():
    clock, metrics = SimClock(), Metrics()
    faults = FaultInjector(seed=7)
    geometry = DiskGeometry.small()
    disk = SimDisk("c0", geometry, clock, metrics, faults=faults)
    payload = b"\xa5" * geometry.sector_size
    crashes = 0
    started = time.perf_counter_ns()
    faults.crash_after_writes(CHAOS_CRASH_PERIOD)
    for index in range(CHAOS_WRITES):
        sector = (index * 13) % geometry.total_sectors
        try:
            disk.write_sectors(sector, payload)
        except DiskCrashedError:
            crashes += 1
            disk.repair()
            faults.crash_after_writes(CHAOS_CRASH_PERIOD)
            disk.write_sectors(sector, payload)  # the sweep's re-run
    wall_ns = time.perf_counter_ns() - started
    metrics.gauge("bench.m1_chaos.wall_us", max(1, wall_ns // 1000))
    return {
        "references": metrics.get("disk.c0.references"),
        "crashes": crashes,
        "wall_us": max(1, wall_ns // 1000),
    }


def _rate(references: int, wall_us: int) -> str:
    return f"{references * 1_000_000 // wall_us:,}/s"


def test_m1_sequential_throughput(benchmark):
    results = benchmark.pedantic(run_sequential, rounds=1, iterations=1)
    new, legacy = results["new"], results["legacy"]
    speedup = legacy["wall_us"] / new["wall_us"]
    print_table(
        f"M1  Sequential load: {SEQUENTIAL_REFERENCES:,} disk references",
        ["lane", "references", "host time (ms)", "refs/host-second"],
        [
            ("legacy (pre-PR8)", f"{legacy['references']:,}",
             f"{legacy['wall_us'] / 1000:.0f}",
             _rate(legacy["references"], legacy["wall_us"])),
            ("new", f"{new['references']:,}",
             f"{new['wall_us'] / 1000:.0f}",
             _rate(new["references"], new["wall_us"])),
            ("speedup", "", "", f"{speedup:.1f}x"),
        ],
    )
    # PR 8's acceptance floor.  Measured headroom is well above 5x, so
    # a noisy CI host does not flap this assertion.
    assert speedup >= 5.0, f"fast path is only {speedup:.1f}x the legacy lane"


def test_m1_overlapped_throughput(benchmark):
    result = benchmark.pedantic(run_overlapped, rounds=1, iterations=1)
    print_table(
        f"M1  Overlapped load: {OVERLAPPED_OPS:,} ops over {OVERLAPPED_DISKS} disks",
        ["references", "host time (ms)", "refs/host-second"],
        [(f"{result['references']:,}", f"{result['wall_us'] / 1000:.0f}",
          _rate(result["references"], result["wall_us"]))],
    )
    # Coalescing merges adjacent singles, so references < ops; but every
    # op was served: the grid settled and referenced every spindle.
    assert result["references"] > 0


def test_m1_chaos_shaped_throughput(benchmark):
    result = benchmark.pedantic(run_chaos_shaped, rounds=1, iterations=1)
    print_table(
        f"M1  Chaos-shaped load: {CHAOS_WRITES:,} armed writes",
        ["references", "crashes survived", "host time (ms)", "refs/host-second"],
        [(f"{result['references']:,}", result["crashes"],
          f"{result['wall_us'] / 1000:.0f}",
          _rate(result["references"], result["wall_us"]))],
    )
    assert result["crashes"] == CHAOS_WRITES // CHAOS_CRASH_PERIOD
