"""E8 — timeout-based deadlock resolution (section 6.4).

Paper claims to reproduce:
1. deadlocks are resolved — a cycle of opposed transfers always
   completes;
2. "the number of transactions timing out will increase as the load on
   the RHODOS system increases";
3. the choice of LT trades abort rate against resolution latency
   ("computing a value for the timeout period is not a simple matter").
"""

from _helpers import build_cluster, make_txn_runner, print_table
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.transactions.lock_manager import TimeoutPolicy
from repro.workloads.transactions import (
    make_accounts_file,
    random_transfer_mix,
    total_balance,
)

NAME = AttributedName.file("/bank")
N_ACCOUNTS = 64
HOT = 4  # all load concentrates on four accounts: deadlock-prone
REPEATS = 3


def run_point(n_clients: int, lt_us: int):
    cluster = build_cluster(
        geometry=DiskGeometry.medium(),
        timeout_policy=TimeoutPolicy(lt_us=lt_us, max_renewals=4),
    )
    host = cluster.machine.transactions
    make_accounts_file(host, NAME, N_ACCOUNTS)
    runner = make_txn_runner(cluster)
    for script in random_transfer_mix(
        host, NAME, N_ACCOUNTS, n_clients, hot_accounts=HOT, seed=13
    ):
        runner.add_client(script, repeats=REPEATS)
    report = runner.run()
    assert total_balance(host, NAME, N_ACCOUNTS) == N_ACCOUNTS * 1000
    return {
        "commits": report.total_commits,
        "timeouts": cluster.metrics.total("lock_manager.0.timeout_aborts"),
        "elapsed_s": report.elapsed_us / 1e6,
    }


def run_all():
    load_sweep = [
        (n_clients, run_point(n_clients, lt_us=400_000))
        for n_clients in (2, 4, 8)
    ]
    lt_sweep = [
        (lt_us, run_point(6, lt_us=lt_us))
        for lt_us in (100_000, 400_000, 1_600_000)
    ]
    return load_sweep, lt_sweep


def test_e8_timeout_deadlock(benchmark):
    load_sweep, lt_sweep = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E8a  Load sweep (LT = 400 ms, {HOT} hot accounts)",
        ["clients", "commits", "timeout aborts", "sim elapsed (s)"],
        [
            (n, row["commits"], row["timeouts"], f"{row['elapsed_s']:.2f}")
            for n, row in load_sweep
        ],
    )
    print_table(
        "E8b  LT sweep (6 clients)",
        ["LT (ms)", "commits", "timeout aborts", "sim elapsed (s)"],
        [
            (lt // 1000, row["commits"], row["timeouts"], f"{row['elapsed_s']:.2f}")
            for lt, row in lt_sweep
        ],
    )
    # Claim 1: every transaction eventually commits at every point.
    for n, row in load_sweep:
        assert row["commits"] == n * REPEATS
    for _, row in lt_sweep:
        assert row["commits"] == 6 * REPEATS
    # Claim 2: timeouts increase with load.
    timeouts = [row["timeouts"] for _, row in load_sweep]
    assert timeouts[0] <= timeouts[1] <= timeouts[2]
    assert timeouts[2] > timeouts[0]
    # Claim 3: longer LT means slower deadlock resolution (elapsed time
    # grows with LT under the same contention).
    elapsed = [row["elapsed_s"] for _, row in lt_sweep]
    assert elapsed[0] < elapsed[-1]
