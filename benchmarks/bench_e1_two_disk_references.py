"""E1 — "for files up to half a megabyte, the maximum number of disk
references is two: one for the file index table and the other for file
data" (section 7).

Cold-cache whole-file reads across a size sweep.  Expected shape: flat
at 2 references up to 512 KB (the FIT's direct coverage), growing only
slowly past it (indirect blocks).
"""

from _helpers import build_file_server, pattern, print_table
from repro.common.units import KIB, MIB
from repro.simdisk.geometry import DiskGeometry

SIZES = [
    ("2 KB", 2 * KIB),
    ("8 KB", 8 * KIB),
    ("64 KB", 64 * KIB),
    ("256 KB", 256 * KIB),
    ("512 KB", 512 * KIB),
    ("1 MB", 1 * MIB),
    ("2 MB", 2 * MIB),
]


def cold_read_references(size: int):
    server = build_file_server(geometry=DiskGeometry.medium())
    name = server.create()
    server.write(name, 0, pattern(size))
    server.flush()
    server.recover()  # drop every cache: a genuinely cold read
    before_refs = server.metrics.get("disk.0.references")
    before_us = server.clock.now_us
    data = server.read(name, 0, size)
    assert len(data) == size
    return (
        server.metrics.get("disk.0.references") - before_refs,
        (server.clock.now_us - before_us) / 1000.0,
    )


def sweep():
    return [(label, *cold_read_references(size)) for label, size in SIZES]


def test_e1_two_disk_references(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E1  Cold whole-file read: disk references vs file size",
        ["file size", "disk references", "sim time (ms)"],
        [(label, refs, f"{ms:.1f}") for label, refs, ms in rows],
    )
    by_label = {label: refs for label, refs, _ in rows}
    # The paper's claim, asserted exactly: <= 2 references through 512 KB.
    for label, size in SIZES:
        if size <= 512 * KIB:
            assert by_label[label] <= 2, f"{label}: {by_label[label]} refs"
    # Beyond the direct area the cost grows, but only by the indirect
    # block(s): still a handful, never per-block.
    assert by_label["1 MB"] > 2
    assert by_label["2 MB"] <= 8
