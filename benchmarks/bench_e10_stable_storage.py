"""E10 — stable storage (sections 2.1, 4, 6.6).

Paper claims: "Provision of stable storage ensures that all the
important data structures used for file management in the distributed
file facility are recoverable", and put-block lets the caller choose
original-only / stable-only / both placement with the call returning
before or after the stable save.

Part (a) prices the stability modes.  Part (b) crashes the data disk at
every write position inside a commit and checks recovery is atomic at
all of them — the recoverability claim, exhaustively.
"""

from _helpers import build_cluster, build_disk_server, print_table
from repro.common.errors import DiskCrashedError
from repro.common.units import BLOCK_SIZE
from repro.disk_service.server import Stability, SyncMode
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry

NAME = AttributedName.file("/f")
CRASH_POINTS = 14


def price_stability_modes():
    rows = []
    for label, stability, sync in (
        ("original only", Stability.ORIGINAL_ONLY, SyncMode.AFTER_STABLE),
        ("both, sync after", Stability.BOTH, SyncMode.AFTER_STABLE),
        ("both, return first", Stability.BOTH, SyncMode.BEFORE_STABLE),
        ("stable only (shadow)", Stability.STABLE_ONLY, SyncMode.AFTER_STABLE),
    ):
        server = build_disk_server(geometry=DiskGeometry.small())
        extent = server.allocate_block(1)
        payload = b"\x5a" * extent.byte_size
        before_us = server.clock.now_us
        for _ in range(20):
            server.put(extent, payload, stability=stability, sync=sync)
        rows.append((label, (server.clock.now_us - before_us) / 20 / 1000.0))
    return rows


def crash_sweep():
    outcomes = []
    for crash_at in range(1, CRASH_POINTS + 1):
        cluster = build_cluster(geometry=DiskGeometry.medium())
        host = cluster.machine.transactions
        tid = host.tbegin()
        descriptor = host.tcreate(tid, NAME, locking_level=LockingLevel.PAGE)
        host.twrite(tid, descriptor, b"O" * (2 * BLOCK_SIZE))
        host.tend(tid)
        system_name = cluster.naming.resolve_file(NAME)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(tid, descriptor, b"N" * (2 * BLOCK_SIZE), 0)
        cluster.disks[0].faults.crash_after_writes(crash_at)
        crashed = False
        try:
            host.tend(tid)
        except DiskCrashedError:
            crashed = True
        cluster.disks[0].repair()
        cluster.coordinator.recover_volume(0)
        content = cluster.file_servers[0].read(system_name, 0, 2 * BLOCK_SIZE)
        if content == b"O" * (2 * BLOCK_SIZE):
            outcome = "old (aborted)"
        elif content == b"N" * (2 * BLOCK_SIZE):
            outcome = "new (redone)"
        else:
            outcome = "CORRUPT"
        outcomes.append((crash_at, crashed, outcome))
    return outcomes


def run_all():
    return price_stability_modes(), crash_sweep()


def test_e10_stable_storage(benchmark):
    prices, outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "E10a  put-block stability modes: simulated cost per 8 KB put",
        ["mode", "sim ms / put"],
        [(label, f"{ms:.2f}") for label, ms in prices],
    )
    print_table(
        "E10b  Crash at every k-th disk write inside a commit",
        ["crash point", "crashed mid-commit", "state after recovery"],
        outcomes,
    )
    by_label = dict(prices)
    # Stability costs what it should: both > original alone; the
    # deferred-sync variant hides the stable write from the caller.
    assert by_label["both, sync after"] > by_label["original only"]
    assert by_label["both, return first"] < by_label["both, sync after"]
    # The recoverability claim: every crash point is all-or-nothing.
    assert all(outcome != "CORRUPT" for _, _, outcome in outcomes)
    # And both sides of the commit point are actually exercised.
    states = {outcome for _, _, outcome in outcomes}
    assert "new (redone)" in states
