"""E5 — caching at the transaction/file/disk levels vs the Bullet server.

Paper claim (section 1): "Either the absence of caching in the client
machine as in the case of the 'Bullet server' of Amoeba or poor
implementation of caching could prove a major bottleneck ... a
significant gain in the performance due to the caching system alone can
be easily realised, provided it is made available at [every] level."

A locality-bearing re-read workload runs against five configurations.
Expected shape: every added level cuts disk references and mean
latency; the client cache (the level Bullet lacks) is the biggest
single step because it also eliminates file-server round trips.
"""

from _helpers import print_table
from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.rpc.bus import FaultProfile
from repro.simdisk.geometry import DiskGeometry
from repro.workloads.access import read_plan

#: Agents talk to the file service over the message bus: a server round
#: trip costs two one-way latencies, which is precisely the cost the
#: client cache exists to avoid (the Bullet server pays it always).
_LATENCY_US = 1000

N_FILES = 12
FILE_SIZE = 32 * 1024
N_REQUESTS = 300
REQUEST_BYTES = 2048

CONFIGS = [
    ("no caching at all", dict(client_cache_blocks=0, server_cache_blocks=0, disk_cache_tracks=0, disk_readahead=False)),
    ("disk cache only", dict(client_cache_blocks=0, server_cache_blocks=0, disk_cache_tracks=96)),
    ("disk + file server", dict(client_cache_blocks=0, server_cache_blocks=48, disk_cache_tracks=96)),
    ("Bullet-style (no client)", dict(client_cache_blocks=0, server_cache_blocks=48, disk_cache_tracks=96)),
    ("all three levels", dict(client_cache_blocks=96, server_cache_blocks=48, disk_cache_tracks=96)),
]


def run_config(options):
    cluster = RhodosCluster(
        ClusterConfig(
            geometry=DiskGeometry.medium(),
            fault_profile=FaultProfile.reliable(latency_us=_LATENCY_US),
            **options,
        )
    )
    agent = cluster.machine.file_agent
    descriptors = []
    for index in range(N_FILES):
        descriptor = agent.create(AttributedName.file(f"/f{index}"))
        agent.write(descriptor, bytes([index + 1]) * FILE_SIZE)
        descriptors.append(descriptor)
    cluster.flush_all()
    for server in cluster.file_servers.values():
        server.recover()  # cold start for the measured phase
    before = cluster.metrics.snapshot()
    start_us = cluster.clock.now_us
    for file_index, offset in read_plan(
        N_FILES, FILE_SIZE, REQUEST_BYTES, N_REQUESTS, seed=23
    ):
        agent.pread(descriptors[file_index], REQUEST_BYTES, offset)
    diff = cluster.metrics.diff(before)
    return {
        "disk_refs": diff.get("disk.0.references", 0),
        "server_reads": diff.get("file_server.0.reads", 0),
        "mean_us": (cluster.clock.now_us - start_us) / N_REQUESTS,
    }


def run_all():
    return [(label, run_config(options)) for label, options in CONFIGS]


def test_e5_cache_levels(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E5  {N_REQUESTS} locality reads: cache levels on/off",
        ["configuration", "disk refs", "file-server reads", "mean us/request"],
        [
            (label, row["disk_refs"], row["server_reads"], f"{row['mean_us']:.0f}")
            for label, row in results
        ],
    )
    by_label = dict(results)
    none = by_label["no caching at all"]
    disk_only = by_label["disk cache only"]
    two = by_label["disk + file server"]
    bullet = by_label["Bullet-style (no client)"]
    full = by_label["all three levels"]
    # Monotone improvement as levels are added.
    assert disk_only["mean_us"] < none["mean_us"]
    assert two["mean_us"] <= disk_only["mean_us"]
    assert full["mean_us"] < two["mean_us"]
    # The client cache eliminates file-server round trips entirely for
    # cached data — the step Bullet cannot take.
    assert full["server_reads"] < bullet["server_reads"] / 2
    # Block-granular client misses may touch a few more disk blocks than
    # request-granular server reads would; the tolerance reflects that.
    assert full["disk_refs"] <= bullet["disk_refs"] + 6
