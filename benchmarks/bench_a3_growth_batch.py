"""A3 — ablation: the contiguous-growth batch size.

A design choice of this implementation that the paper leaves implicit:
when a file grows, how many blocks ahead of its last block should the
allocator try to claim contiguously?  Interleaved appenders are the
stress case — two files growing in lockstep steal each other's next
block unless growth reserves ahead.  Expected shape: batch size 1
shreds both files into many runs; larger batches restore contiguity
(fewer cold-scan references) at no allocation-failure cost.
"""

from _helpers import build_file_server, contiguity_runs, pattern, print_table
from repro.common.units import BLOCK_SIZE
from repro.simdisk.geometry import DiskGeometry

N_APPENDS = 24  # per file, one block each, interleaved
BATCHES = [1, 2, 4, 8, 16]


def run_batch(batch: int):
    server = build_file_server(
        geometry=DiskGeometry.medium(), growth_batch_blocks=batch
    )
    file_a = server.create()
    file_b = server.create()
    for index in range(N_APPENDS):
        server.write(file_a, index * BLOCK_SIZE, pattern(BLOCK_SIZE, seed=index))
        server.write(file_b, index * BLOCK_SIZE, pattern(BLOCK_SIZE, seed=~index))
    server.flush()
    server.recover()
    runs = contiguity_runs(server, file_a) + contiguity_runs(server, file_b)
    before = server.metrics.get("disk.0.references")
    server.read(file_a, 0, N_APPENDS * BLOCK_SIZE)
    server.read(file_b, 0, N_APPENDS * BLOCK_SIZE)
    scan_refs = server.metrics.get("disk.0.references") - before
    return {"runs": runs, "scan_refs": scan_refs}


def run_all():
    return [(batch, run_batch(batch)) for batch in BATCHES]


def test_a3_growth_batch(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"A3  Two files, {N_APPENDS} interleaved one-block appends each",
        ["growth batch (blocks)", "contiguous runs (both files)", "cold-scan disk refs"],
        [
            (batch, row["runs"], row["scan_refs"])
            for batch, row in results
        ],
    )
    by_batch = dict(results)
    # Batch 1: every append lands after the *other* file's last block —
    # maximal shredding.
    assert by_batch[1]["runs"] >= N_APPENDS
    # Contiguity improves monotonically (weakly) with the batch size...
    runs = [row["runs"] for _, row in results]
    assert all(a >= b for a, b in zip(runs, runs[1:]))
    # ...and the default (8) already collapses the run count several-fold.
    assert by_batch[8]["runs"] * 3 <= by_batch[1]["runs"]
    # The payoff is visible where it matters: the cold scan.
    assert by_batch[8]["scan_refs"] < by_batch[1]["scan_refs"]
