"""T1 — Table 1: lock compatibility, regenerated from the lock manager.

The paper's only table.  For every (held, requested) pair we run the
actual lock manager with two transactions and record whether the second
request is granted ("ok") or queued ("wait"); the same-transaction
conversion column reproduces the footnote "changed to Iwrite by the
same transaction".
"""

import pytest

from _helpers import print_table
from repro.common.clock import SimClock
from repro.common.ids import SystemName
from repro.common.metrics import Metrics
from repro.transactions.lock_manager import AcquireResult, LockManager
from repro.transactions.locks import LockMode, record_item
from repro.transactions.transaction import Transaction

ITEM = record_item(SystemName(0, 1, 1), 0, 100)


def outcome(held: LockMode | None, requested: LockMode, *, same_txn: bool = False) -> str:
    manager = LockManager(SimClock(), Metrics())
    holder = Transaction(tid=1, machine_id="m", process_id=0)
    requester = holder if same_txn else Transaction(tid=2, machine_id="m", process_id=0)
    if held is not None:
        assert manager.acquire(holder, ITEM, held) is AcquireResult.GRANTED
    result = manager.acquire(requester, ITEM, requested)
    return "ok" if result is AcquireResult.GRANTED else "wait"


def regenerate():
    rows = []
    for held in (None, LockMode.RO, LockMode.IR, LockMode.IW):
        row = ["None" if held is None else held.value]
        for requested in (LockMode.RO, LockMode.IR, LockMode.IW):
            row.append(outcome(held, requested))
        row.append(
            outcome(held, LockMode.IW, same_txn=True) if held is not None else "ok"
        )
        rows.append(row)
    return rows


def test_t1_lock_compatibility(benchmark):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_table(
        "T1  Table 1: lock compatibility (measured from the lock manager)",
        ["held \\ requested", "read-only", "Iread", "Iwrite", "IW by same txn"],
        rows,
    )
    table = {row[0]: row[1:] for row in rows}
    # Row 'None': everything grants.
    assert table["None"] == ["ok", "ok", "ok", "ok"]
    # Row RO: RO ok, IR ok, IW waits; same-txn RO->IW converts when alone.
    assert table[LockMode.RO.value] == ["ok", "ok", "wait", "ok"]
    # Row IR: nothing new grants (incl. the anti-starvation RO rule),
    # but the same transaction converts IR->IW.
    assert table[LockMode.IR.value] == ["wait", "wait", "wait", "ok"]
    # Row IW: exclusive; reacquisition by the holder is a no-op grant.
    assert table[LockMode.IW.value] == ["wait", "wait", "wait", "ok"]
