"""E16 — request scheduling under contention (PR 5).

The paper's facility keeps "a queue of requests for each disk" and
services them "in an order which minimizes the arm movement" (section
4).  This experiment measures what that buys once many clients contend
for the same spindle: the request pipeline is driven by 1/2/4/8
concurrent request streams over 1 and 4 disks under each service-order
policy — FCFS, SCAN (elevator with an aging bound), and SCAN with
adjacent-extent coalescing.

Two shapes are asserted:

* **Scheduling wins under contention.**  With 8 streams hammering one
  disk from alternating ends of the platter, SCAN's sweep beats FCFS's
  full-stroke seeking on both mean queue wait and aggregate
  throughput, and coalescing strictly reduces disk references.
* **Overlap wins across spindles.**  The same offered load spread over
  4 disks completes in near-quarter time (pipeline grid), and the
  closed-loop cluster driver shows 4 clients on 4 disks beating one
  client doing the same per-client work by at least the PR's 1.5x
  acceptance floor.
"""

from _helpers import print_table
from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.common.units import BLOCK_SIZE
from repro.disk_service.addresses import Extent
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import make_scheduler
from repro.disk_service.server import DiskServer
from repro.naming.attributed import AttributedName
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore
from repro.simkernel.loop import EventLoop

POLICIES = ("fcfs", "scan", "scan+coalesce")
CLIENT_COUNTS = (1, 2, 4, 8)
DISK_COUNTS = (1, 4)
OPS_PER_CLIENT = 8


def _build_volume(disk_id: str, clock, metrics) -> DiskServer:
    disk = SimDisk(disk_id, DiskGeometry.small(), clock, metrics)
    stable = StableStore(
        SimDisk(f"{disk_id}.sa", DiskGeometry.small(), clock, metrics),
        SimDisk(f"{disk_id}.sb", DiskGeometry.small(), clock, metrics),
    )
    return DiskServer(disk, stable, clock, metrics)


def run_pipeline_point(policy: str, n_clients: int, n_disks: int):
    """Drive n_clients request streams at n_disks pipelined servers.

    Every stream alternates between the low and high ends of its
    disk's allocated region (full-stroke seeks for FCFS, one sweep per
    pass for SCAN), and each operation reads two adjacent fragments as
    separate requests — exactly the pattern adjacent-extent coalescing
    merges into one reference.
    """
    clock, metrics = SimClock(), Metrics()
    loop = EventLoop(clock)
    servers = []
    for volume in range(n_disks):
        server = _build_volume(str(volume), clock, metrics)
        DiskPipeline(server, loop, make_scheduler(policy))
        servers.append((server, server.allocate(server.n_fragments // 2)))
    completions = []
    for op_index in range(OPS_PER_CLIENT):
        for client in range(n_clients):
            server, region = servers[client % n_disks]
            index = op_index * n_clients + client
            half = (region.length - 1) // 2
            if index % 2 == 0:
                slot = (index * 17) % half
            else:
                slot = region.length - 2 - ((index * 23) % half)
            for step in range(2):
                completions.append(
                    server.submit_get(
                        Extent(region.start + slot + step, 1), use_cache=False
                    )
                )
    loop.run_until(lambda: all(completion.done for completion in completions))
    waits = metrics.histogram_samples("disk_service.queue_wait_us")
    references = sum(
        metrics.get(f"disk.{volume}.references") for volume in range(n_disks)
    )
    elapsed_us = clock.now_us
    return {
        "ops": len(completions),
        "elapsed_us": elapsed_us,
        "throughput_ops_per_s": len(completions) * 1_000_000 / elapsed_us,
        "mean_wait_us": sum(waits) / len(waits),
        "p95_wait_us": sorted(waits)[(len(waits) * 95 - 1) // 100],
        "references": references,
        "utilization": [
            metrics.get_gauge(f"disk.{volume}.utilization")
            for volume in range(n_disks)
        ],
    }


def run_grid():
    return {
        (policy, n_clients, n_disks): run_pipeline_point(
            policy, n_clients, n_disks
        )
        for policy in POLICIES
        for n_clients in CLIENT_COUNTS
        for n_disks in DISK_COUNTS
    }


# ----------------------------------------------------- closed loop


def _client_op(cluster: RhodosCluster, client: int, op_index: int) -> None:
    volume = client % cluster.config.n_disks
    agent = cluster.machines[client % cluster.config.n_machines].file_agent
    descriptor = agent.create(
        AttributedName.file(f"/c{client}/f{op_index}", volume=str(volume))
    )
    agent.write(descriptor, bytes([client + 1]) * BLOCK_SIZE)
    agent.close(descriptor)
    agent.flush()
    cluster.file_servers[volume].flush()


def run_closed_loop(n_clients: int, n_disks: int):
    cluster = RhodosCluster(
        ClusterConfig(
            n_machines=n_clients,
            n_disks=n_disks,
            disk_scheduler="scan+coalesce",
        )
    )
    report = cluster.run_concurrent(
        _client_op, n_clients=n_clients, ops_per_client=4
    )
    return report


def test_e16_scheduling(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    print_table(
        "E16  Pipeline throughput (ops/s) by policy, clients x disks",
        ["disks", "clients"] + [f"{policy} ops/s" for policy in POLICIES],
        [
            (
                n_disks,
                n_clients,
                *(
                    f"{grid[(policy, n_clients, n_disks)]['throughput_ops_per_s']:.0f}"
                    for policy in POLICIES
                ),
            )
            for n_disks in DISK_COUNTS
            for n_clients in CLIENT_COUNTS
        ],
    )
    print_table(
        "E16  8 clients on one disk: queue waits and disk references",
        ["policy", "mean wait (us)", "p95 wait (us)", "disk refs", "elapsed (ms)"],
        [
            (
                policy,
                f"{grid[(policy, 8, 1)]['mean_wait_us']:.0f}",
                grid[(policy, 8, 1)]["p95_wait_us"],
                grid[(policy, 8, 1)]["references"],
                f"{grid[(policy, 8, 1)]['elapsed_us'] / 1000.0:.1f}",
            )
            for policy in POLICIES
        ],
    )

    contended = {policy: grid[(policy, 8, 1)] for policy in POLICIES}
    # SCAN's sweep beats FCFS's full-stroke seeking under contention.
    assert (
        contended["scan"]["throughput_ops_per_s"]
        >= contended["fcfs"]["throughput_ops_per_s"]
    )
    assert contended["scan"]["mean_wait_us"] < contended["fcfs"]["mean_wait_us"]
    # Coalescing merges the adjacent-fragment pairs: strictly fewer
    # references, and no slower than plain SCAN.
    assert (
        contended["scan+coalesce"]["references"] < contended["scan"]["references"]
    )
    assert (
        contended["scan+coalesce"]["throughput_ops_per_s"]
        >= contended["scan"]["throughput_ops_per_s"]
    )
    # Spindle overlap: the same 8-client load over 4 disks at least
    # doubles aggregate throughput for every policy.
    for policy in POLICIES:
        assert (
            grid[(policy, 8, 4)]["throughput_ops_per_s"]
            >= 2 * grid[(policy, 8, 1)]["throughput_ops_per_s"]
        )


def test_e16_closed_loop_overlap(benchmark):
    serial = run_closed_loop(1, 4)
    overlapped = benchmark.pedantic(
        run_closed_loop, args=(4, 4), rounds=1, iterations=1
    )
    speedup = (
        overlapped.throughput_ops_per_s / serial.throughput_ops_per_s
    )
    print_table(
        "E16  Closed-loop cluster driver on 4 disks (scan+coalesce)",
        ["clients", "ops", "elapsed (ms)", "ops/s", "mean latency (ms)"],
        [
            (
                report.n_clients,
                report.ops_completed,
                f"{report.elapsed_us / 1000.0:.1f}",
                f"{report.throughput_ops_per_s:.0f}",
                f"{report.mean_latency_us / 1000.0:.1f}",
            )
            for report in (serial, overlapped)
        ],
    )
    # The PR's acceptance floor: 4 clients on 4 disks beat one client
    # doing the same per-client work by at least 1.5x aggregate.
    assert speedup >= 1.5, f"aggregate speedup only {speedup:.2f}x"
