"""E2 — the contiguity count: "all successive blocks, which are
contiguous, can be cached using one single invocation of get-block,
instead of count number of invocations" (section 5).

The same 32-block file is laid out contiguously (the allocator's normal
work) and deliberately scattered (each block allocated with a spacer in
between); a cold whole-file read is measured.  Expected shape: one data
reference for the contiguous layout vs one per block for the scattered
one, with simulated time to match.
"""

from _helpers import build_file_server, pattern, print_table
from repro.common.units import BLOCK_SIZE
from repro.simdisk.geometry import DiskGeometry

N_BLOCKS = 32


def _server(growth_batch_blocks=8):
    # The disk-level track cache is disabled so the measurement isolates
    # the contiguity-count effect (E14 measures the track cache itself).
    return build_file_server(
        geometry=DiskGeometry.medium(),
        disk_kwargs=dict(cache_tracks=0),
        growth_batch_blocks=growth_batch_blocks,
    )


def build_contiguous():
    server = _server()
    name = server.create()
    server.write(name, 0, pattern(N_BLOCKS * BLOCK_SIZE))
    return server, name


def build_scattered():
    # Growth batching off: each block lands wherever the spacer pattern
    # forces it, which is the worst case the count field rescues us from.
    server = _server(growth_batch_blocks=1)
    name = server.create()
    # Force one-at-a-time growth with a spacer allocation between blocks
    # so no two file blocks are adjacent.
    spacers = []
    for block in range(N_BLOCKS):
        server.write(
            name, block * BLOCK_SIZE, pattern(BLOCK_SIZE, seed=block)
        )
        spacers.append(server.disk.allocate_block(1))
    return server, name


def cold_read(server, name):
    server.flush()
    server.recover()
    before_refs = server.metrics.get("disk.0.references")
    before_us = server.clock.now_us
    server.read(name, 0, N_BLOCKS * BLOCK_SIZE)
    return (
        server.metrics.get("disk.0.references") - before_refs,
        (server.clock.now_us - before_us) / 1000.0,
    )


def run():
    results = {}
    for label, builder in (("contiguous", build_contiguous), ("scattered", build_scattered)):
        server, name = builder()
        refs, ms = cold_read(server, name)
        fit = server.load_fit(name)
        results[label] = (fit.direct[0].count, refs, ms)
    return results


def test_e2_contiguity_count(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"E2  Cold read of a {N_BLOCKS}-block file: contiguity counts at work",
        ["layout", "count field of block 0", "disk references", "sim time (ms)"],
        [
            (label, count, refs, f"{ms:.1f}")
            for label, (count, refs, ms) in results.items()
        ],
    )
    contiguous = results["contiguous"]
    scattered = results["scattered"]
    # The count field records the whole run (>= the written blocks;
    # growth preallocation may extend it)...
    assert contiguous[0] >= N_BLOCKS
    assert scattered[0] == 1
    # ...so the contiguous read is 2 references (FIT + one data run)
    # while the scattered one pays roughly one per block.
    assert contiguous[1] <= 2
    assert scattered[1] >= N_BLOCKS
    # And the per-reference latency savings show up in simulated time
    # (the scattered blocks are still near each other, so the gap is
    # rotational latency + overhead per extra reference, not full seeks).
    assert contiguous[2] < scattered[2]
