"""E9 — WAL vs shadow-page commit (section 6.7).

Paper claims: "The shadow page technique requires lesser I/O overhead
than the wal technique, because there is no need to copy blocks in the
commit phase ... [but] if the data blocks are contiguous before the
beginning of the transaction then they are no longer contiguous after
the transaction commits.  Thus, this technique destroys the contiguity
of data blocks."  RHODOS therefore uses WAL when blocks are contiguous
and shadow when they are not.

Thirty single-page update transactions hit a 16-block contiguous file
under each forced technique and under the paper's auto rule.  Expected
shape: WAL keeps the file one contiguous run (fast subsequent scans) at
the cost of an in-place copy per commit; shadow saves the copy but
shatters the layout; auto behaves like WAL on a contiguous file.
"""

import random

from _helpers import build_cluster, contiguity_runs, print_table
from repro.common.units import BLOCK_SIZE
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.workloads.transactions import make_accounts_file

NAME = AttributedName.file("/data")
N_BLOCKS = 16
N_TRANSACTIONS = 30


def run_technique(technique: str):
    cluster = build_cluster(
        geometry=DiskGeometry.medium(), commit_technique=technique
    )
    host = cluster.machine.transactions
    server = cluster.file_servers[0]
    tid = host.tbegin()
    descriptor = host.tcreate(tid, NAME, locking_level=LockingLevel.PAGE)
    host.twrite(tid, descriptor, b"\x42" * (N_BLOCKS * BLOCK_SIZE))
    host.tend(tid)
    system_name = cluster.naming.resolve_file(NAME)
    runs_before = contiguity_runs(server, system_name)
    rng = random.Random(3)
    before = cluster.metrics.snapshot()
    for index in range(N_TRANSACTIONS):
        block = rng.randrange(N_BLOCKS)
        tid = host.tbegin()
        descriptor = host.topen(tid, NAME)
        host.tpwrite(
            tid, descriptor, bytes([index % 256]) * BLOCK_SIZE, block * BLOCK_SIZE
        )
        host.tend(tid)
    diff = cluster.metrics.diff(before)
    runs_after = contiguity_runs(server, system_name)
    # The payoff of contiguity: a cold scan of the whole file.
    server.flush()
    server.recover()
    scan_before = cluster.metrics.get("disk.0.references")
    server.read(system_name, 0, N_BLOCKS * BLOCK_SIZE)
    scan_refs = cluster.metrics.get("disk.0.references") - scan_before
    return {
        "runs_before": runs_before,
        "runs_after": runs_after,
        "wal_applies": diff.get("transactions.wal_applies", 0),
        "shadow_applies": diff.get("transactions.shadow_applies", 0),
        "commit_writes": diff.get("disk.0.writes", 0),
        "scan_refs": scan_refs,
    }


def run_all():
    return [(technique, run_technique(technique)) for technique in ("wal", "shadow", "auto")]


def test_e9_wal_vs_shadow(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E9  {N_TRANSACTIONS} single-page update transactions on a "
        f"{N_BLOCKS}-block contiguous file",
        [
            "technique",
            "contiguous runs before",
            "runs after",
            "WAL applies",
            "shadow applies",
            "disk writes",
            "cold-scan refs after",
        ],
        [
            (
                label,
                row["runs_before"],
                row["runs_after"],
                row["wal_applies"],
                row["shadow_applies"],
                row["commit_writes"],
                row["scan_refs"],
            )
            for label, row in results
        ],
    )
    by_label = dict(results)
    wal = by_label["wal"]
    shadow = by_label["shadow"]
    auto = by_label["auto"]
    # WAL preserves contiguity: the file stays one run, scans stay 2 refs.
    assert wal["runs_before"] == 1 and wal["runs_after"] == 1
    assert wal["scan_refs"] <= 2
    # Shadow destroys it: many runs, scans pay per run.
    assert shadow["runs_after"] > 4
    assert shadow["scan_refs"] > 4
    # Shadow's commit-phase I/O is lighter (no in-place copy).
    assert shadow["commit_writes"] < wal["commit_writes"]
    # The paper's auto rule keeps a contiguous file on the WAL path.
    assert auto["shadow_applies"] == 0
    assert auto["runs_after"] == 1
