"""E7 — locking granularity: concurrency vs lock overhead (section 6.1).

Paper claims: record locking "is the most suitable where the updates
are small and the probability that a data item is subject to two
simultaneous updates is remote" (maximum concurrency, more lock
overhead); file locking "incurs low overhead due to locking, since
there are fewer locks to manage ... however [it] reduces concurrency,
since operations are more likely to conflict"; page locking sits in
between.

Eight clients run disjoint small transfers (the record-locking sweet
spot) at each level.  Expected shape: lock waits rise monotonically
record -> page -> file; locks managed falls file < record; simulated
completion time follows concurrency.
"""

from _helpers import build_cluster, make_txn_runner, print_table
from repro.file_service.attributes import LockingLevel
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.transactions.lock_manager import TimeoutPolicy
from repro.workloads.transactions import (
    make_accounts_file,
    total_balance,
    transfer_script,
)

NAME = AttributedName.file("/bank")
N_ACCOUNTS = 4096  # spans 4 pages, so page locking can conflict
N_CLIENTS = 8
REPEATS = 4


def run_level(level: LockingLevel):
    cluster = build_cluster(
        geometry=DiskGeometry.medium(),
        timeout_policy=TimeoutPolicy(lt_us=5_000_000, max_renewals=4),
    )
    host = cluster.machine.transactions
    make_accounts_file(host, NAME, N_ACCOUNTS, locking_level=level)
    runner = make_txn_runner(cluster)
    start_us = cluster.clock.now_us
    for client in range(N_CLIENTS):
        # Same-page neighbours for page-locking conflicts, but disjoint
        # records: the workload records would never collide.
        runner.add_client(
            transfer_script(host, NAME, client * 4, client * 4 + 2),
            repeats=REPEATS,
        )
    report = runner.run()
    assert total_balance(host, NAME, N_ACCOUNTS) == N_ACCOUNTS * 1000
    return {
        "commits": report.total_commits,
        "waits": report.total_lock_waits,
        "aborts": report.total_aborts,
        "locks": cluster.metrics.total("lock_manager.0.grants"),
        "elapsed_ms": (cluster.clock.now_us - start_us) / 1000.0,
    }


def run_all():
    return [
        (level.name.lower(), run_level(level))
        for level in (LockingLevel.RECORD, LockingLevel.PAGE, LockingLevel.FILE)
    ]


def test_e7_lock_granularity(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E7  {N_CLIENTS} clients x {REPEATS} disjoint small transfers, per locking level",
        ["level", "commits", "lock waits", "aborts", "locks granted", "sim elapsed (ms)"],
        [
            (
                label,
                row["commits"],
                row["waits"],
                row["aborts"],
                row["locks"],
                f"{row['elapsed_ms']:.0f}",
            )
            for label, row in results
        ],
    )
    by_label = dict(results)
    record = by_label["record"]
    page = by_label["page"]
    file_level = by_label["file"]
    expected_commits = N_CLIENTS * REPEATS
    for row in (record, page, file_level):
        assert row["commits"] == expected_commits
    # Concurrency: record locking never waits on this workload; coarser
    # levels conflict more and more.
    assert record["waits"] == 0
    assert record["waits"] <= page["waits"] <= file_level["waits"]
    assert file_level["waits"] > 0
    # Lock-management overhead ranks the other way.
    assert file_level["locks"] <= page["locks"] <= record["locks"]
