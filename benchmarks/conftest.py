"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one artifact of the paper (Figure 1,
Table 1) or one stated performance claim (experiments E1–E15, ablations
A1–A2); see DESIGN.md section 4 for the index.  Every benchmark prints
the table the paper's claim corresponds to and asserts the claim's
*shape* — winners, orderings, crossovers — not absolute numbers.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
