"""A1 — ablation: sizing the free-extent array.

The paper fixes the array at "the order of 64 rows and 64 columns"
without justifying the dimensions.  We first fragment the disk heavily
(fill it with single fragments, free every other one), then run an
allocation churn.  A small table cannot index the thousands of free
runs (column overflow) and keeps running dry, forcing full bitmap
rescans; around the paper's 64x64 the rescans collapse and further
growth buys little — 64x64 sits at the knee.
"""

import random

from _helpers import build_disk_server, print_table
from repro.common.errors import DiskFullError
from repro.disk_service.addresses import Extent
from repro.simdisk.geometry import DiskGeometry

N_OPS = 1200
SHAPES = [(4, 4), (8, 8), (16, 16), (64, 64), (128, 128)]
_TINY = DiskGeometry(cylinders=64, heads=4, sectors_per_track=32)  # 4 MB


def run_shape(rows: int, columns: int):
    server = build_disk_server(
        geometry=_TINY, extent_rows=rows, extent_columns=columns
    )
    # Fragment the free space: fill the disk solid, then free every
    # other fragment -> n/2 one-fragment runs, far beyond small tables.
    whole = server.allocate(server.n_fragments)
    for fragment in range(0, server.n_fragments, 2):
        server.free(Extent(fragment, 1))
    rng = random.Random(17)
    live = []
    allocations = failures = 0
    for _ in range(N_OPS):
        if rng.random() < 0.6:
            try:
                live.append(server.allocate(1))
                allocations += 1
            except DiskFullError:
                failures += 1
        elif live:
            server.free(live.pop(rng.randrange(len(live))))
    return {
        "allocations": allocations,
        "failures": failures,
        "refills": server.metrics.get("disk_server.0.table_refills"),
    }


def run_all():
    return [(f"{rows}x{columns}", run_shape(rows, columns)) for rows, columns in SHAPES]


def test_a1_extent_array_sizing(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"A1  Free-extent array shape, fragmented disk, {N_OPS} churn ops",
        ["shape", "allocations satisfied", "failures", "full bitmap rescans"],
        [
            (label, row["allocations"], row["failures"], row["refills"])
            for label, row in results
        ],
    )
    by_label = dict(results)
    # Everyone satisfies the same demand (the bitmap is authoritative).
    assert len({row["allocations"] for _, row in results}) == 1
    assert all(row["failures"] == 0 for _, row in results)
    # Rescans fall (weakly) with table size, with a real gap between the
    # small shapes and the paper's 64x64, and nothing gained past it.
    refills = [row["refills"] for _, row in results]
    assert all(a >= b for a, b in zip(refills, refills[1:]))
    assert by_label["4x4"]["refills"] > by_label["64x64"]["refills"]
    assert by_label["64x64"]["refills"] - by_label["128x128"]["refills"] <= 4
