"""E3 — fragments for structural data: "for the storage of structural
information of fairly small size the use of fragments can substantially
reduce communication overheads and thereby improve performance"
(section 4), without the disproportionate I/O that sub-block
*fragments-for-data* would cost.

200 control structures (FIT-sized, < 2 KB) are stored once in
fragments (2 KB units) and once in blocks (8 KB units).  Expected
shape: identical disk-reference counts, ~4x better space utilisation
for fragments, and fewer sectors moved.
"""

from _helpers import build_disk_server, print_table
from repro.common.units import BLOCK_SIZE, FRAGMENT_SIZE
from repro.simdisk.geometry import DiskGeometry

N_STRUCTURES = 200
STRUCTURE_BYTES = 1800  # a realistic FIT payload


def run_variant(*, use_fragments: bool):
    server = build_disk_server(geometry=DiskGeometry.medium())
    unit = 1 if use_fragments else 4  # fragments per allocation
    unit_bytes = unit * FRAGMENT_SIZE
    payload = b"\xcd" * STRUCTURE_BYTES + bytes(unit_bytes - STRUCTURE_BYTES)
    extents = []
    for _ in range(N_STRUCTURES):
        extent = server.allocate(unit)
        server.put(extent, payload)
        extents.append(extent)
    # Cold re-read of every structure.
    if server.cache is not None:
        server.cache.invalidate()
    before_refs = server.metrics.get("disk.0.references")
    before_sectors = server.metrics.get("disk.0.sectors_read")
    before_us = server.clock.now_us
    for extent in extents:
        server.get(extent, use_cache=False)
    return {
        "allocated_bytes": N_STRUCTURES * unit_bytes,
        "used_bytes": N_STRUCTURES * STRUCTURE_BYTES,
        "references": server.metrics.get("disk.0.references") - before_refs,
        "sectors": server.metrics.get("disk.0.sectors_read") - before_sectors,
        "ms": (server.clock.now_us - before_us) / 1000.0,
    }


def run():
    return {
        "fragments (2 KB)": run_variant(use_fragments=True),
        "blocks (8 KB)": run_variant(use_fragments=False),
    }


def test_e3_fragments_vs_blocks(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"E3  {N_STRUCTURES} control structures of {STRUCTURE_BYTES} B: "
        "fragment vs block storage",
        ["unit", "space allocated", "utilisation", "disk refs", "sectors read", "sim ms"],
        [
            (
                label,
                f"{row['allocated_bytes'] // 1024} KB",
                f"{100 * row['used_bytes'] / row['allocated_bytes']:.0f}%",
                row["references"],
                row["sectors"],
                f"{row['ms']:.1f}",
            )
            for label, row in results.items()
        ],
    )
    fragments = results["fragments (2 KB)"]
    blocks = results["blocks (8 KB)"]
    # Same number of disk references either way: fragments do NOT cost
    # extra I/O operations for structure-sized data...
    assert fragments["references"] == blocks["references"]
    # ...while quartering the allocated space...
    assert fragments["allocated_bytes"] * 4 == blocks["allocated_bytes"]
    # ...and moving a quarter of the sectors (less transfer time).
    assert fragments["sectors"] * 4 == blocks["sectors"]
    assert fragments["ms"] <= blocks["ms"]
