"""F1 — Figure 1: the layered architecture and per-level caching.

Paper claim (section 2.2): the architecture "provides caching at each
level to avoid descending to a lower level to satisfy each request
from the client."  We replay the same locality-bearing read workload
against four configurations — every cache on, client cache off, client
and server caches off, everything off — and count how many requests
reach each layer.  Expected shape: each cache level absorbs traffic,
so requests reaching the disk shrink as levels are added.
"""

from _helpers import print_table
from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.workloads.access import read_plan

N_FILES = 8
FILE_SIZE = 64 * 1024
N_REQUESTS = 150
REQUEST_BYTES = 4096

CONFIGS = [
    ("all levels", dict(client_cache_blocks=128, server_cache_blocks=256, disk_cache_tracks=64)),
    ("no client cache", dict(client_cache_blocks=0, server_cache_blocks=256, disk_cache_tracks=64)),
    ("disk cache only", dict(client_cache_blocks=0, server_cache_blocks=0, disk_cache_tracks=64)),
    ("no caching", dict(client_cache_blocks=0, server_cache_blocks=0, disk_cache_tracks=0, disk_readahead=False)),
]


def run_config(options):
    cluster = RhodosCluster(
        ClusterConfig(geometry=DiskGeometry.medium(), **options)
    )
    agent = cluster.machine.file_agent
    descriptors = []
    for index in range(N_FILES):
        descriptor = agent.create(AttributedName.file(f"/f{index}"))
        agent.write(descriptor, bytes([index]) * FILE_SIZE)
        descriptors.append(descriptor)
    agent.flush()
    cluster.flush_all()
    before = cluster.metrics.snapshot()
    start_us = cluster.clock.now_us
    for file_index, offset in read_plan(
        N_FILES, FILE_SIZE, REQUEST_BYTES, N_REQUESTS, seed=11
    ):
        agent.pread(descriptors[file_index], REQUEST_BYTES, offset)
    diff = cluster.metrics.diff(before)
    return {
        "agent_requests": N_REQUESTS,
        "file_server_reads": diff.get("file_server.0.reads", 0),
        "disk_gets": diff.get("disk_server.0.gets", 0),
        "disk_references": diff.get("disk.0.references", 0),
        "mean_us": (cluster.clock.now_us - start_us) / N_REQUESTS,
    }


def run_all():
    return {label: run_config(options) for label, options in CONFIGS}


def test_f1_architecture_layers(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "F1  Figure 1: requests reaching each layer (150 client reads)",
        ["configuration", "agent", "file server", "disk server", "disk refs", "mean us/req"],
        [
            [
                label,
                row["agent_requests"],
                row["file_server_reads"],
                row["disk_gets"],
                row["disk_references"],
                f"{row['mean_us']:.0f}",
            ]
            for label, row in results.items()
        ],
    )
    full = results["all levels"]
    no_client = results["no client cache"]
    disk_only = results["disk cache only"]
    nothing = results["no caching"]
    # Each added cache level absorbs requests before the disk.
    assert full["disk_references"] <= no_client["disk_references"]
    assert no_client["disk_references"] <= nothing["disk_references"]
    # The client cache absorbs requests before they reach the file server.
    assert full["file_server_reads"] < no_client["file_server_reads"]
    # And the full stack is fastest end-to-end.
    assert full["mean_us"] < nothing["mean_us"]
