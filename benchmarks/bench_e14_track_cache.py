"""E14 — the disk service's rest-of-track readahead (section 4).

Paper claim: "This service retrieves only those blocks/fragments from
a disk track which are necessary to immediately fulfill the requirement
of a read request.  Then the disk service caches the rest of the data
from the same track ... to satisfy any subsequent requests to read
data from blocks/fragments pertaining to the same track."

Fragment-sized requests sweep a region sequentially, strided, and
randomly, with readahead on and off.  Expected shape: sequential
traffic collapses to one disk reference per track with readahead;
random traffic barely benefits (the readahead gamble pays only when
neighbours are wanted next).
"""

from _helpers import build_disk_server, print_table
from repro.disk_service.addresses import Extent
from repro.simdisk.geometry import DiskGeometry
from repro.workloads.access import AccessPattern, offsets

N_FRAGMENTS = 256  # the region swept
N_REQUESTS = 256


def run_point(pattern: AccessPattern, readahead: bool):
    server = build_disk_server(
        geometry=DiskGeometry.small(),
        cache_tracks=256,
        readahead=readahead,
    )
    region = server.allocate(N_FRAGMENTS)
    server.put(region, b"\x99" * region.byte_size)
    if server.cache is not None:
        server.cache.invalidate()
    before_refs = server.metrics.get("disk.0.references")
    before_us = server.clock.now_us
    for offset in offsets(
        pattern, N_FRAGMENTS * 2048, 2048, N_REQUESTS, stride=7, seed=2
    ):
        server.get(Extent(region.start + offset // 2048, 1))
    return {
        "references": server.metrics.get("disk.0.references") - before_refs,
        "ms": (server.clock.now_us - before_us) / 1000.0,
    }


def run_all():
    rows = []
    for pattern in (AccessPattern.SEQUENTIAL, AccessPattern.STRIDED, AccessPattern.RANDOM):
        with_ra = run_point(pattern, readahead=True)
        without = run_point(pattern, readahead=False)
        rows.append((pattern.value, with_ra, without))
    return rows


def test_e14_track_cache(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"E14  {N_REQUESTS} fragment reads: rest-of-track readahead on/off",
        [
            "pattern",
            "refs (readahead)",
            "refs (none)",
            "ms (readahead)",
            "ms (none)",
        ],
        [
            (
                pattern,
                with_ra["references"],
                without["references"],
                f"{with_ra['ms']:.1f}",
                f"{without['ms']:.1f}",
            )
            for pattern, with_ra, without in rows
        ],
    )
    by_pattern = {pattern: (with_ra, without) for pattern, with_ra, without in rows}
    sequential_ra, sequential_no = by_pattern["sequential"]
    random_ra, random_no = by_pattern["random"]
    # Sequential: one reference per track instead of one per fragment.
    # 256 fragments = 1024 sectors = 16 tracks of 64 sectors.
    assert sequential_ra["references"] <= 20
    assert sequential_no["references"] == N_REQUESTS
    assert sequential_ra["ms"] < sequential_no["ms"]
    # Random: readahead still helps once enough of the region is cached,
    # but far less than for sequential traffic.
    improvement_sequential = sequential_no["references"] / max(
        1, sequential_ra["references"]
    )
    improvement_random = random_no["references"] / max(1, random_ra["references"])
    assert improvement_sequential > improvement_random
