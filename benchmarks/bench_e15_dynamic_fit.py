"""E15 — dynamic FIT creation (sections 5, 7).

Paper claims: creating file index tables only on demand means "no
wastage of memory; the file index table and at least the first data
block are always contiguous thus eliminating the seek time to retrieve
the first data block; the file index tables are distributed throughout
the disk and hence the file facility does not run the risk of loosing
all of them together", and "creation of file index tables on a need
basis ensures that they do not accumulate in one place on the disk."

Fifty files are created dynamically and, as the counterfactual, with a
statically preallocated FIT region at the start of the disk.  Expected
shape: dynamic FITs sit one fragment from their data (zero seek) and
spread across the disk; static FITs cluster at the front and sit far
from their data.
"""

import statistics

from _helpers import build_disk_server, build_file_server, pattern, print_table
from repro.common.units import BLOCK_SIZE, FRAGMENTS_PER_BLOCK
from repro.simdisk.geometry import DiskGeometry

N_FILES = 50
FILE_BYTES = 2 * BLOCK_SIZE


def run_dynamic():
    server = build_file_server(geometry=DiskGeometry.medium())
    gaps = []
    fit_addresses = []
    read_ms = 0.0
    names = []
    for index in range(N_FILES):
        name = server.create()
        server.write(name, 0, pattern(FILE_BYTES, seed=index))
        first = server.block_descriptor(name, 0)
        gaps.append(abs(first.address - (name.fit_address + 1)))
        fit_addresses.append(name.fit_address)
        names.append(name)
    server.flush()
    server.recover()
    before_us = server.clock.now_us
    for name in names:
        server.read(name, 0, FILE_BYTES)
    read_ms = (server.clock.now_us - before_us) / 1000.0
    return gaps, fit_addresses, read_ms


def run_static():
    """Counterfactual: all FITs preallocated at the start of the disk."""
    server = build_file_server(geometry=DiskGeometry.medium())
    disk = server.disk
    fit_region = disk.allocate(N_FILES)  # fragment per FIT, up front
    gaps = []
    fit_addresses = []
    extents = []
    for index in range(N_FILES):
        fit_address = fit_region.start + index
        data = disk.allocate_block(FILE_BYTES // BLOCK_SIZE)
        gaps.append(abs(data.start - (fit_address + 1)))
        fit_addresses.append(fit_address)
        extents.append((fit_address, data))
        disk.put(data, pattern(FILE_BYTES, seed=index))
    if disk.cache is not None:
        disk.cache.invalidate()
    before_us = server.clock.now_us
    from repro.disk_service.addresses import Extent

    for fit_address, data in extents:
        disk.get(Extent(fit_address, 1), use_cache=False)  # the FIT read
        disk.get(data, use_cache=False)  # then seek to the data
    read_ms = (server.clock.now_us - before_us) / 1000.0
    return gaps, fit_addresses, read_ms


def run_all():
    return run_dynamic(), run_static()


def spread(addresses):
    return max(addresses) - min(addresses)


def test_e15_dynamic_fit(benchmark):
    (dyn_gaps, dyn_fits, dyn_ms), (st_gaps, st_fits, st_ms) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    print_table(
        f"E15  {N_FILES} file creations: dynamic vs preallocated FITs",
        [
            "strategy",
            "median FIT->data gap (frags)",
            "FIT spread (frags)",
            "cold FIT+data read (ms)",
        ],
        [
            (
                "dynamic (RHODOS)",
                statistics.median(dyn_gaps),
                spread(dyn_fits),
                f"{dyn_ms:.1f}",
            ),
            (
                "static FIT region",
                statistics.median(st_gaps),
                spread(st_fits),
                f"{st_ms:.1f}",
            ),
        ],
    )
    # Dynamic FITs are adjacent to their first data block: gap zero.
    assert statistics.median(dyn_gaps) == 0
    # Static FITs sit far from their data (the seek the paper eliminates).
    assert statistics.median(st_gaps) > N_FILES
    # Dynamic FITs spread across the disk instead of clustering: the
    # static region packs all FITs into N_FILES fragments.
    assert spread(st_fits) == N_FILES - 1
    assert spread(dyn_fits) > spread(st_fits) * 4
    # And the cold read pays for it: dynamic is faster.
    assert dyn_ms < st_ms
