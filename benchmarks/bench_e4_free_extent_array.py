"""E4 — the 64x64 free-extent array: "the use of this array not only
improves the performance but also improves the storage utilization"
(section 4).

An allocate/free churn workload runs against (a) the real disk server
(bitmap + extent array) and (b) a baseline allocator that scans the
bitmap first-fit on every request — what a server without the array
would do.  Expected shape: same allocation decisions availability-wise,
but the array answers requests without scanning, so bitmap-scan work
(measured in fragments examined) collapses.
"""

import random

import pytest

from _helpers import build_disk_server, print_table
from repro.common.errors import DiskFullError
from repro.disk_service.addresses import Extent
from repro.disk_service.bitmap import FragmentBitmap
from repro.simdisk.geometry import DiskGeometry

N_OPS = 3000


def churn_schedule(seed=0):
    rng = random.Random(seed)
    schedule = []
    for _ in range(N_OPS):
        if rng.random() < 0.55:
            schedule.append(("alloc", rng.randint(1, 32)))
        else:
            schedule.append(("free", rng.randint(0, 10**9)))
    return schedule


def run_with_extent_table():
    server = build_disk_server(geometry=DiskGeometry.small())
    live = []
    allocations = failures = 0
    for op, value in churn_schedule():
        if op == "alloc":
            try:
                live.append(server.allocate(value))
                allocations += 1
            except DiskFullError:
                failures += 1
        elif live:
            server.free(live.pop(value % len(live)))
    return {
        "allocations": allocations,
        "failures": failures,
        "refills": server.metrics.get("disk_server.0.table_refills"),
        "free_fragments": server.free_fragments,
    }


class _ScanOnlyAllocator:
    """Baseline: first-fit bitmap scan per request, no extent index."""

    def __init__(self, n_fragments):
        self.bitmap = FragmentBitmap(n_fragments)
        self.fragments_examined = 0

    def allocate(self, n):
        position = 0
        while position < self.bitmap.n_fragments:
            run_length = self.bitmap.run_length_at(position)
            self.fragments_examined += max(1, run_length)
            if run_length >= n:
                extent = Extent(position, n)
                self.bitmap.mark_allocated(extent)
                return extent
            position += max(1, run_length)
            while position < self.bitmap.n_fragments and not self.bitmap.is_free(
                position
            ):
                self.fragments_examined += 1
                position += 1
        raise DiskFullError(f"no run of {n}")

    def free(self, extent):
        self.bitmap.mark_free(extent)


def run_scan_baseline():
    geometry = DiskGeometry.small()
    allocator = _ScanOnlyAllocator(geometry.capacity_bytes // 2048)
    live = []
    allocations = failures = 0
    for op, value in churn_schedule():
        if op == "alloc":
            try:
                live.append(allocator.allocate(value))
                allocations += 1
            except DiskFullError:
                failures += 1
        elif live:
            allocator.free(live.pop(value % len(live)))
    return {
        "allocations": allocations,
        "failures": failures,
        "fragments_examined": allocator.fragments_examined,
    }


def test_e4_free_extent_array(benchmark):
    table_result = benchmark.pedantic(run_with_extent_table, rounds=1, iterations=1)
    scan_result = run_scan_baseline()
    print_table(
        f"E4  {N_OPS} alloc/free churn ops: 64x64 array vs bitmap scanning",
        ["allocator", "allocations", "failures", "full rescans", "fragments examined/op"],
        [
            (
                "bitmap + 64x64 array",
                table_result["allocations"],
                table_result["failures"],
                table_result["refills"],
                "n/a (indexed)",
            ),
            (
                "first-fit bitmap scan",
                scan_result["allocations"],
                scan_result["failures"],
                "every request",
                f"{scan_result['fragments_examined'] / max(1, scan_result['allocations']):.0f}",
            ),
        ],
    )
    # Same requests satisfied: the index does not hurt utilisation.
    assert table_result["allocations"] == scan_result["allocations"]
    assert table_result["failures"] == scan_result["failures"]
    # The array answers from its rows: full bitmap rescans are rare
    # events, not per-request work.
    assert table_result["refills"] < N_OPS / 50
