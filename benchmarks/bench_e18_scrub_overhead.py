"""E18 — scrub overhead vs foreground throughput (PR 6).

The background scrubber (DESIGN.md §11) must never become the paper's
own anti-goal: a reliability mechanism that costs the "high
performance" half of the title.  Its two defenses are the idle gate
(``step()`` refuses to start while the pipeline has foreground work)
and the two-class pipeline priority (scrub reads are ``low_priority``
and only served from idle slots).  This experiment measures what those
defenses buy by driving the same foreground read stream against one
pipelined volume under three scrub disciplines:

* **off** — no scrubbing at all: the foreground latency baseline.
* **background** — a real :class:`Scrubber` stepped once while each
  foreground batch is in flight (the idle gate must yield) and once
  after it drains (the step verifies a slice), finishing its first
  full cycle in the idle tail.
* **rude** — a control arm without PR 6's defenses: the same
  verification reads submitted at *normal* priority ahead of every
  foreground batch, the way a naive scrubber would issue them.

Shape asserted: the gated background scrubber completes a full
verification cycle while inflating mean foreground batch latency by
under 25%, and yields at least once to the busy pipeline; the rude
discipline — same work, no priority/gating — costs strictly more
foreground latency than the background discipline.
"""

from _helpers import print_table
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.disk_service.addresses import Extent
from repro.disk_service.pipeline import DiskPipeline
from repro.disk_service.scheduler import make_scheduler
from repro.disk_service.scrub import Scrubber
from repro.disk_service.server import DiskServer
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore
from repro.simkernel.loop import EventLoop

MODES = ("off", "background", "rude")
DATA_FRAGMENTS = 192
ROUNDS = 12
BATCH = 8
SCRUB_STEP = 16  # fragments per scrub step; covers the region in ROUNDS steps


def _build_volume(disk_id: str, clock, metrics) -> DiskServer:
    disk = SimDisk(disk_id, DiskGeometry.small(), clock, metrics)
    stable = StableStore(
        SimDisk(f"{disk_id}.sa", DiskGeometry.small(), clock, metrics),
        SimDisk(f"{disk_id}.sb", DiskGeometry.small(), clock, metrics),
    )
    return DiskServer(disk, stable, clock, metrics)


def _populate(server: DiskServer) -> Extent:
    """Allocate and fill the scrubbed region (checksums recorded)."""
    region = server.allocate(DATA_FRAGMENTS)
    chunk = 16
    for offset in range(0, region.length, chunk):
        extent = Extent(region.start + offset, chunk)
        payload = bytes(
            (offset * 31 + index * 7 + 5) % 251 + 1
            for index in range(extent.byte_size)
        )
        server.put(extent, payload)
    return region


def _foreground_slot(round_index: int, client: int, length: int) -> int:
    """Alternate platter ends, as in E16, for realistic seek pressure."""
    index = round_index * BATCH + client
    half = (length - 1) // 2
    if index % 2 == 0:
        return (index * 17) % half
    return length - 1 - ((index * 23) % half)


def run_scrub_point(mode: str):
    """One discipline: ROUNDS foreground batches with scrub interleaved."""
    clock, metrics = SimClock(), Metrics()
    loop = EventLoop(clock)
    server = _build_volume("0", clock, metrics)
    region = _populate(server)
    pipeline = DiskPipeline(server, loop, make_scheduler("scan+coalesce"))
    scrubber = Scrubber(server, fragments_per_step=SCRUB_STEP)
    latencies = []
    rude_cursor = 0
    rude_reads = []
    for round_index in range(ROUNDS):
        if mode == "rude":
            # The control arm: same verification reads, but at normal
            # priority and without consulting the idle gate.
            for _ in range(SCRUB_STEP):
                fragment = region.start + (rude_cursor % region.length)
                rude_cursor += 1
                rude_reads.append(
                    server.submit_get(Extent(fragment, 1), use_cache=False)
                )
        started_us = clock.now_us
        batch = [
            server.submit_get(
                Extent(
                    region.start
                    + _foreground_slot(round_index, client, region.length),
                    1,
                ),
                use_cache=False,
            )
            for client in range(BATCH)
        ]
        if mode == "background":
            # The pipeline is busy with the batch just submitted, so
            # the idle gate must make this a no-op (steps_yielded).
            scrubber.step()
        loop.run_until(lambda: all(completion.done for completion in batch))
        latencies.append(clock.now_us - started_us)
        if mode == "background":
            scrubber.step()  # idle now: verify one slice
    # Idle tail: finish the first full verification pass.
    if mode == "background":
        while scrubber.cycles_completed < 1:
            scrubber.step(force=True)
    if mode == "rude":
        while rude_cursor < region.length:
            rude_reads.append(
                server.submit_get(
                    Extent(region.start + rude_cursor, 1), use_cache=False
                )
            )
            rude_cursor += 1
        loop.run_until(lambda: all(completion.done for completion in rude_reads))
    ordered = sorted(latencies)
    return {
        "fg_ops": ROUNDS * BATCH,
        "mean_batch_us": sum(latencies) / len(latencies),
        "p95_batch_us": ordered[(len(ordered) * 95 - 1) // 100],
        "elapsed_us": clock.now_us,
        "fragments_verified": metrics.get("scrub.0.fragments_verified"),
        "steps_yielded": metrics.get("scrub.0.steps_yielded"),
        "cycles": metrics.get("scrub.0.cycles"),
        "checksum_failures": metrics.get("disk_server.0.checksum_failures"),
    }


def run_modes():
    return {mode: run_scrub_point(mode) for mode in MODES}


def test_e18_scrub_overhead(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    print_table(
        "E18  Foreground latency under three scrub disciplines",
        [
            "discipline",
            "mean batch (us)",
            "p95 batch (us)",
            "elapsed (ms)",
            "verified",
            "yielded",
            "cycles",
        ],
        [
            (
                mode,
                f"{results[mode]['mean_batch_us']:.0f}",
                results[mode]["p95_batch_us"],
                f"{results[mode]['elapsed_us'] / 1000.0:.1f}",
                results[mode]["fragments_verified"],
                results[mode]["steps_yielded"],
                results[mode]["cycles"],
            )
            for mode in MODES
        ],
    )

    off = results["off"]
    background = results["background"]
    rude = results["rude"]
    # Clean media: verification must find nothing in any discipline.
    for mode in MODES:
        assert results[mode]["checksum_failures"] == 0
    # The gated scrubber did real work: a full cycle, every data
    # fragment verified, and the idle gate exercised at least once.
    assert background["cycles"] >= 1
    assert background["fragments_verified"] >= DATA_FRAGMENTS
    assert background["steps_yielded"] >= 1
    # The PR's acceptance floor: background scrubbing costs foreground
    # batches under 25% mean latency against the no-scrub baseline.
    assert background["mean_batch_us"] <= 1.25 * off["mean_batch_us"], (
        f"background scrub inflated foreground latency "
        f"{background['mean_batch_us'] / off['mean_batch_us']:.2f}x"
    )
    # And the defenses are what buys it: the same verification reads
    # without gating/priority cost strictly more foreground latency.
    assert rude["mean_batch_us"] > background["mean_batch_us"]
