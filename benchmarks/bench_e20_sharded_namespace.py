"""E20 — the sharded namespace under a metadata storm (PR 10).

The paper partitions its global name space across directory servers so
that name resolution — the operation every file access starts with —
never funnels through one machine.  PR 10 reproduces that split:
``n_shards`` shard servers each own a set of hash slots of the binding
space, and the router fans client operations out by the canonical key
of the name (DESIGN.md §15).  This experiment prices the partition:

* **Metadata throughput scales with the shard count.**  A closed-loop
  storm of 1,200 clients — three operations each, three resolves to one
  data write — against 1/2/4/8 shards with a 350 µs modelled service
  time per metadata operation.  One shard serializes every resolve
  through a single busy-until timeline; eight spread the same offered
  load, and aggregate throughput at 8 shards is required to be at
  least 3x the 1-shard figure.
* **Per-class latency separates the planes.**  The driver's per-class
  histograms (PR 10 satellite) split resolve cost from data traffic:
  metadata mean latency falls as shards are added while the data plane
  — the same four volumes at every point — stays put.
* **The split is invisible to correctness.**  Every sweep point runs
  the identical workload; completed-operation counts and the
  metadata/data split must match across shard counts exactly.
"""

from _helpers import build_cluster, print_table
from repro.naming.attributed import AttributedName

SHARD_COUNTS = (1, 2, 4, 8)
N_CLIENTS = 1200
OPS_PER_CLIENT = 3
SHARD_SERVICE_US = 350
N_DISKS = 4
#: Pre-bound TTY names the metadata class resolves.
N_TTYS = 256
#: Shared files the data class writes at per-client offsets.
N_FILES = 32
PAYLOAD = b"\xa5" * 1024


def run_storm(n_shards):
    """One sweep point: the storm against ``n_shards`` shard servers."""
    cluster = build_cluster(
        n_shards=n_shards,
        shard_service_us=SHARD_SERVICE_US,
        n_disks=N_DISKS,
        placement_policy="least_loaded",
        client_cache_blocks=0,
        seed=20,
    )
    agent = cluster.machine.file_agent

    # Pre-bind the resolve targets and pre-create the data files so the
    # measured loop is pure steady-state traffic, no cold-start binds.
    # The names carry ``path`` — the attribute the router hashes — so
    # every resolve is single-shard (a path-less query must fan out to
    # all shards and would never scale; see ``routing_key``).
    tty_names = [
        AttributedName.tty(
            f"dev{index}", path=f"/dev/tty{index}", room=f"r{index % 8}"
        )
        for index in range(N_TTYS)
    ]
    for index, name in enumerate(tty_names):
        cluster.naming.bind(name, f"host{index % 4}:/dev/tty{index}")
    descriptors = [
        agent.create(AttributedName.file(f"/e20/f{index}"))
        for index in range(N_FILES)
    ]

    def client_op(cluster, client, op_index):
        sequence = client * OPS_PER_CLIENT + op_index
        if sequence % 4 == 3:  # one op in four is data traffic
            descriptor = descriptors[sequence % N_FILES]
            agent.pwrite(descriptor, PAYLOAD, (client % 16) * len(PAYLOAD))
            return "data"
        cluster.naming.resolve(tty_names[(sequence * 7) % N_TTYS])
        return "metadata"

    report = cluster.run_concurrent(
        client_op, n_clients=N_CLIENTS, ops_per_client=OPS_PER_CLIENT
    )
    for descriptor in descriptors:
        agent.close(descriptor)
    return {
        "ops": report.ops_completed,
        "elapsed_us": report.elapsed_us,
        "throughput_ops_per_s": report.throughput_ops_per_s,
        "metadata_ops": report.class_ops("metadata"),
        "data_ops": report.class_ops("data"),
        "metadata_mean_us": report.class_mean_latency_us("metadata"),
        "data_mean_us": report.class_mean_latency_us("data"),
        "shard_ops": sum(
            cluster.metrics.get(f"naming_shard.{shard_id}.ops")
            for shard_id in sorted(cluster.shards)
        ),
    }


def test_e20_sharded_namespace(benchmark):
    points = benchmark.pedantic(
        lambda: {count: run_storm(count) for count in SHARD_COUNTS},
        rounds=1,
        iterations=1,
    )

    print_table(
        "E20  Metadata storm: 1,200 clients x 3 ops, 3:1 resolve:write",
        [
            "shards",
            "ops",
            "elapsed (ms)",
            "ops/s",
            "meta mean (us)",
            "data mean (us)",
        ],
        [
            (
                count,
                points[count]["ops"],
                f"{points[count]['elapsed_us'] / 1000.0:.1f}",
                f"{points[count]['throughput_ops_per_s']:.0f}",
                f"{points[count]['metadata_mean_us']:.0f}",
                f"{points[count]['data_mean_us']:.0f}",
            )
            for count in SHARD_COUNTS
        ],
    )

    # The identical workload completed at every sweep point.
    expected_total = N_CLIENTS * OPS_PER_CLIENT
    for count in SHARD_COUNTS:
        point = points[count]
        assert point["ops"] == expected_total
        assert point["metadata_ops"] + point["data_ops"] == expected_total
        assert point["metadata_ops"] == points[SHARD_COUNTS[0]]["metadata_ops"]
        assert point["data_ops"] == points[SHARD_COUNTS[0]]["data_ops"]

    # The headline claim: partitioning the namespace over 8 shard
    # servers buys at least 3x the single-server metadata throughput.
    assert (
        points[8]["throughput_ops_per_s"]
        >= 3 * points[1]["throughput_ops_per_s"]
    )
    # More shards never hurt, point to point.
    for thinner, wider in zip(SHARD_COUNTS, SHARD_COUNTS[1:]):
        assert (
            points[wider]["throughput_ops_per_s"]
            >= points[thinner]["throughput_ops_per_s"]
        )
    # The win is the metadata plane's: resolve latency collapses as the
    # storm spreads across shard timelines.
    assert points[8]["metadata_mean_us"] < points[1]["metadata_mean_us"] / 2
