"""Shared plumbing for the benchmark suite."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.cluster.config import ClusterConfig
from repro.cluster.system import RhodosCluster
from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.disk_service.server import DiskServer
from repro.file_service.server import FileServer
from repro.simdisk.disk import SimDisk
from repro.simdisk.geometry import DiskGeometry
from repro.simdisk.stable import StableStore
from repro.simkernel.runner import InterleavedRunner


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one experiment table to stdout (captured by pytest -s)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def build_disk_server(
    *,
    geometry: DiskGeometry | None = None,
    disk_id: str = "0",
    **kwargs,
) -> DiskServer:
    clock, metrics = SimClock(), Metrics()
    disk = SimDisk(disk_id, geometry or DiskGeometry.small(), clock, metrics)
    stable = StableStore(
        SimDisk(f"{disk_id}.sa", DiskGeometry.small(), clock, metrics),
        SimDisk(f"{disk_id}.sb", DiskGeometry.small(), clock, metrics),
    )
    return DiskServer(disk, stable, clock, metrics, **kwargs)


def build_file_server(
    *,
    geometry: DiskGeometry | None = None,
    volume_id: int = 0,
    disk_kwargs: dict | None = None,
    **kwargs,
) -> FileServer:
    clock, metrics = SimClock(), Metrics()
    disk = SimDisk(str(volume_id), geometry or DiskGeometry.medium(), clock, metrics)
    stable = StableStore(
        SimDisk(f"{volume_id}.sa", DiskGeometry.small(), clock, metrics),
        SimDisk(f"{volume_id}.sb", DiskGeometry.small(), clock, metrics),
    )
    server = DiskServer(disk, stable, clock, metrics, **(disk_kwargs or {}))
    return FileServer(volume_id, server, clock, metrics, **kwargs)


def build_cluster(**overrides) -> RhodosCluster:
    return RhodosCluster(ClusterConfig(**overrides))


def make_txn_runner(cluster: RhodosCluster, *, think_time_us: int = 100) -> InterleavedRunner:
    """A runner wired to the cluster's lock-timeout machinery."""
    coordinator = cluster.coordinator
    clock = cluster.clock

    def on_stall(now):
        next_expiry = coordinator.next_expiry_us()
        if next_expiry is None:
            return False
        clock.advance_to(next_expiry)
        coordinator.expire_locks(clock.now_us)
        return True

    return InterleavedRunner(
        clock,
        think_time_us=think_time_us,
        on_stall=on_stall,
        on_step=lambda now: coordinator.expire_locks(now),
    )


def pattern(n_bytes: int, seed: int = 1) -> bytes:
    return bytes((seed * 131 + index) % 256 for index in range(n_bytes))


def data_disk_references(cluster: RhodosCluster) -> int:
    return cluster.total_disk_references()


def contiguity_runs(server: FileServer, name) -> int:
    """How many contiguous runs a file's blocks form (1 = perfect)."""
    from repro.file_service.fit import contiguous_runs

    fit = server.load_fit(name)
    mapped = [desc for desc in fit.direct if desc is not None]
    if not mapped:
        return 0
    runs = [
        run
        for run in contiguous_runs(fit.direct, 0, len(fit.direct) - 1)
        if run[2] >= 0
    ]
    return len(runs)
