"""E6 — modification policies: delayed-write vs write-through.

Paper claim (section 5): the delayed-write policy suits the basic file
service (absorbing overwrites in the cache), while the file service
additionally adapts write-through for transactional data.

A bursty overwrite workload (repeated small writes into a hot block
set) runs under both policies.  Expected shape: delayed-write collapses
many logical writes into few physical ones; write-through pays one disk
write per logical write but leaves nothing volatile.
"""

import random

from _helpers import build_file_server, print_table
from repro.common.units import BLOCK_SIZE
from repro.file_service.cache import WritePolicy
from repro.simdisk.geometry import DiskGeometry

N_WRITES = 400
HOT_BLOCKS = 4


def run_policy(policy: WritePolicy):
    server = build_file_server(
        geometry=DiskGeometry.medium(), write_policy=policy
    )
    name = server.create()
    server.write(name, 0, bytes(HOT_BLOCKS * BLOCK_SIZE))
    server.flush()
    rng = random.Random(5)
    before_writes = server.metrics.get("disk.0.writes")
    before_us = server.clock.now_us
    for index in range(N_WRITES):
        block = rng.randrange(HOT_BLOCKS)
        offset = block * BLOCK_SIZE + rng.randrange(BLOCK_SIZE - 64)
        server.write(name, offset, bytes([index % 256]) * 64)
    burst_writes = server.metrics.get("disk.0.writes") - before_writes
    burst_us = server.clock.now_us - before_us
    server.flush()
    total_writes = server.metrics.get("disk.0.writes") - before_writes
    return {
        "during_burst": burst_writes,
        "after_flush": total_writes,
        "mean_us": burst_us / N_WRITES,
    }


def run():
    return {
        "delayed-write": run_policy(WritePolicy.DELAYED),
        "write-through": run_policy(WritePolicy.WRITE_THROUGH),
    }


def test_e6_write_policies(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"E6  {N_WRITES} small overwrites into {HOT_BLOCKS} hot blocks",
        ["policy", "disk writes during burst", "disk writes incl. flush", "mean us/write"],
        [
            (
                label,
                row["during_burst"],
                row["after_flush"],
                f"{row['mean_us']:.0f}",
            )
            for label, row in results.items()
        ],
    )
    delayed = results["delayed-write"]
    through = results["write-through"]
    # Write-through pays one physical write per logical write.
    assert through["during_burst"] >= N_WRITES
    # Delayed-write absorbs overwrites: physical writes bounded by the
    # working set, not the write count — even after the final flush.
    assert delayed["after_flush"] <= HOT_BLOCKS * 4
    assert delayed["mean_us"] < through["mean_us"] / 5
