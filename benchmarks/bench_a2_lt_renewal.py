"""A2 — ablation: the renewal budget N of the timeout policy.

The paper bounds a lock's invulnerability at N*LT but leaves N (like
LT) to be "carefully chosen".  A mixed workload — one long uncontended
transaction plus short contended transfers — sweeps N.  Expected
shape: small N murders the long transaction over and over (it can
never finish inside N*LT); once N*LT exceeds the transaction's natural
length the aborts stop; very large N costs nothing on this workload
but would slow deadlock detection for genuinely wedged uncontended
lock holders.
"""

from _helpers import build_cluster, make_txn_runner, print_table
from repro.naming.attributed import AttributedName
from repro.simdisk.geometry import DiskGeometry
from repro.transactions.lock_manager import TimeoutPolicy
from repro.workloads.transactions import (
    long_transaction_script,
    make_accounts_file,
    total_balance,
    transfer_script,
)

NAME = AttributedName.file("/bank")
LT_US = 100_000
N_SWEEP = [1, 2, 4, 8, 16]
THINK_ROUNDS = 250  # long txn needs ~ THINK_ROUNDS * 2 ms >> LT


def run_point(max_renewals: int):
    cluster = build_cluster(
        geometry=DiskGeometry.medium(),
        timeout_policy=TimeoutPolicy(lt_us=LT_US, max_renewals=max_renewals),
    )
    host = cluster.machine.transactions
    make_accounts_file(host, NAME, 16)
    runner = make_txn_runner(cluster, think_time_us=2000)
    runner.max_restarts = 8
    runner.add_client(
        long_transaction_script(host, NAME, 8, think_rounds=THINK_ROUNDS)
    )
    runner.add_client(transfer_script(host, NAME, 0, 1), repeats=3)
    report = runner.run()
    long_outcome = report.clients[0]
    return {
        "long_commits": long_outcome.commits,
        "long_aborts": long_outcome.aborts,
        "short_commits": report.clients[1].commits,
        "renewals": cluster.metrics.total("lock_manager.0.renewals"),
    }


def run_all():
    return [(n, run_point(n)) for n in N_SWEEP]


def test_a2_lt_renewal(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        f"A2  Renewal budget N (LT = {LT_US // 1000} ms); long txn needs "
        f"~{THINK_ROUNDS * 2} ms",
        ["N", "long-txn commits", "long-txn aborts", "short commits", "renewals"],
        [
            (
                n,
                row["long_commits"],
                row["long_aborts"],
                row["short_commits"],
                row["renewals"],
            )
            for n, row in results
        ],
    )
    by_n = dict(results)
    # Too small a budget: the long transaction can never finish.
    assert by_n[1]["long_commits"] == 0
    assert by_n[1]["long_aborts"] > 0
    # A budget past the transaction's length lets it through.
    assert by_n[16]["long_commits"] == 1
    # Short transactions commit regardless of N.
    for _, row in results:
        assert row["short_commits"] == 3
    # Long-transaction aborts fall monotonically with N.
    aborts = [row["long_aborts"] for _, row in results]
    assert all(a >= b for a, b in zip(aborts, aborts[1:]))
